//! Offline stand-in for `serde_json`.
//!
//! Text encoding and decoding for the [`serde`] stand-in's [`Value`]
//! tree: [`to_vec`], [`to_vec_pretty`], [`from_slice`], [`to_value`],
//! and a [`json!`] macro covering the literal shapes the workspace
//! writes (flat objects/arrays with expression values).

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Value};

/// Renders `value` into the JSON value tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Decodes a `T` from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json_value(value)
}

/// Compact JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out.into_bytes())
}

/// Pretty-printed (2-space indent) JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    out.push('\n');
    Ok(out.into_bytes())
}

/// Compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Decodes a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("bad utf-8: {e}")))?;
    from_str(text)
}

/// Decodes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_json_value(&v)
}

/// Builds a [`Value`] from a JSON-shaped literal. Object and array
/// entries may be arbitrary expressions (serialized via [`to_value`]);
/// nest `json!` explicitly for literal sub-objects.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val).expect("json! value serializes")); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem).expect("json! value serializes")),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // match serde_json: floats always carry a fractional form
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("bad utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // surrogate pairs: only BMP escapes are produced
                            // by our writer; reject lone surrogates.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad integer {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (v, s) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::Int(-42), "-42"),
            (Value::Str("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            let bytes = to_vec(&v).unwrap();
            assert_eq!(std::str::from_utf8(&bytes).unwrap(), s);
            let back: Value = from_slice(&bytes).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "xs": vec![1u64, 2, 3],
            "name": "msgorder",
            "inner": json!({ "k": 7u64 }),
            "none": Option::<u64>::None,
        });
        let bytes = to_vec(&v).unwrap();
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
        let pretty = to_vec_pretty(&v).unwrap();
        let back2: Value = from_slice(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        m.insert(0, vec![9, 8]);
        m.insert(3, vec![]);
        let bytes = to_vec(&m).unwrap();
        let back: BTreeMap<usize, Vec<u64>> = from_slice(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn floats_keep_fractional_form() {
        let bytes = to_vec(&Value::Float(2.0)).unwrap();
        assert_eq!(std::str::from_utf8(&bytes).unwrap(), "2.0");
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API surface the workspace uses: a seeded
//! [`rngs::StdRng`] (xoshiro256++), [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`]/[`Rng::gen_ratio`], and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`. The stream differs from
//! upstream `rand`'s `StdRng`, but every generator in the workspace
//! only requires determinism-given-seed, which this provides.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler. Keeping the per-type logic here lets
/// [`SampleRange`] stay generic over `T`, which is what makes integer
/// literal inference (`gen_range(0..180)` used as a `u64`) work the way
/// it does with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`lo < hi`).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]` (`lo <= hi`).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // two's-complement wrap-around addition is exact for
                // every integer type of at most 64 bits
                (lo as u64).wrapping_add(uniform_u64(rng, span)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(uniform_u64(rng, span)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // 53 high bits give a uniform value in [0, 1)
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // the endpoint has measure zero; exclusive is fine
                Self::sample_exclusive(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the (non-empty) range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform sample from `0..span` (`span > 0`) without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // rejection sampling over the largest multiple of span
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard float-in-[0,1) trick
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64)) < p
    }

    /// `true` with probability `num / den`.
    fn gen_ratio(&mut self, num: u32, den: u32) -> bool
    where
        Self: Sized,
    {
        assert!(den > 0 && num <= den, "ratio out of range");
        num > 0 && uniform_u64(self, den as u64) < num as u64
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic given the seed, like upstream).
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn all_values_hit() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_ratio_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..50).all(|_| rng.gen_ratio(5, 5)));
        assert!(!(0..50).any(|_| rng.gen_ratio(0, 5)));
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((500..1_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v != (0..20).collect::<Vec<_>>(), "shuffle moved something");
        let items = [1, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

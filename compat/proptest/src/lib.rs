//! Offline stand-in for `proptest`.
//!
//! Provides deterministic, seeded random-case generation with the
//! `Strategy` surface the workspace's property tests use: integer
//! ranges, tuples, [`Just`], `prop_map`, `prop_flat_map`,
//! [`collection::vec`], `any::<bool>()`, and regex-ish string literals
//! (only the length suffix is honoured). There is **no shrinking**: a
//! failing case panics with its case index so it can be replayed — the
//! seed is a pure function of the test's module path, name, and index.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream defaults to 256; this environment is single-core, so
        // keep the default lean — tests that need more ask for it.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test identity and case index (FNV-1a over the name).
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits scaled into [start, end)
                let frac = (rand::RngCore::next_u64(rng.rng()) >> 11) as f64
                    / (1u64 << 53) as f64;
                self.start + (frac as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// String literals act as regex strategies upstream; the stand-in
/// honours only a trailing `{lo,hi}` length range (the workspace uses
/// them purely as printable-string fuzzers) and draws printable ASCII
/// plus occasional multibyte chars.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_suffix(self).unwrap_or((0, 32));
        let len = rng.rng().gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                let r = rng.rng().gen_range(0..20u32);
                match r {
                    0 => 'λ',
                    1 => '∀',
                    _ => char::from(rng.rng().gen_range(0x20..0x7fu8)),
                }
            })
            .collect()
    }
}

fn parse_len_suffix(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_suffix('}')?;
    let open = rest.rfind('{')?;
    let body = &rest[open + 1..];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// `any::<T>()` for the types the workspace asks for.
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    fn arbitrary() -> ArbStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbStrategy<T> {
    gen_fn: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> ArbStrategy<bool> {
        ArbStrategy {
            gen_fn: |rng| rng.rng().gen_bool(0.5),
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbStrategy<$t> {
                ArbStrategy {
                    gen_fn: |rng| rng.rng().gen_range(<$t>::MIN..=<$t>::MAX),
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A length specification: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The items a test file conventionally glob-imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Runs each declared test over many generated cases. Supports the
/// upstream surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn name(x in strategy, (a, b) in other) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __run = || -> Result<(), String> { $body Ok(()) };
                    if let Err(msg) = __run() {
                        panic!("proptest case {__case} of {} failed: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Skips the current case when its precondition fails (the stand-in
/// just returns success — there is no case resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = (2usize..10).prop_flat_map(|n| (Just(n), collection::vec(0usize..n, 0..20)));
        let mut r1 = TestRng::deterministic("t", 3);
        let mut r2 = TestRng::deterministic("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::deterministic("sizes", 0);
        let exact = collection::vec(0u64..50, 4).generate(&mut rng);
        assert_eq!(exact.len(), 4);
        for _ in 0..50 {
            let ranged = collection::vec(0usize..64, 0..20).generate(&mut rng);
            assert!(ranged.len() < 20);
            assert!(ranged.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::deterministic("strings", 1);
        for _ in 0..100 {
            let s = "\\PC{0,60}".generate(&mut rng);
            assert!(s.chars().count() <= 60);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((n, xs) in (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0usize..n, 0..8))), flag in any::<bool>()) {
            prop_assert!(n >= 1);
            prop_assert!(xs.iter().all(|&x| x < n), "element out of range");
            let _ = flag;
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` —
//! crates.io is unreachable in this build environment) and emits impls
//! of the workspace's value-tree `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what the workspace derives on:
//! named-field structs, tuple structs (newtypes serialize transparently,
//! wider tuples as arrays), unit structs, and enums with unit, tuple, or
//! struct variants (externally tagged, matching upstream serde_json).
//! Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let body = match &p.shape {
        Shape::NamedStruct { fields } => {
            let mut s = String::from("let mut m = serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            s.push_str("serde::Value::Object(m)");
            s
        }
        Shape::TupleStruct { arity: 1 } => "serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ty = &p.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_json_value(__f{i})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{ty}::{vn}({binds}) => {{\n\
                             let mut m = serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), {inner});\n\
                             serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("ref {f}")).collect();
                        let mut inner = String::from("let mut fm = serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\".to_string(), serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), serde::Value::Object(fm));\n\
                             serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match *self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n",
        name = p.name
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct { fields } => {
            let mut s = format!("Ok({name} {{\n");
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::Deserialize::from_json_value(\
                     v.get_object_key(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(serde::Deserialize::from_json_value(v)?))")
        }
        Shape::TupleStruct { arity } => {
            let mut s = format!("let a = v.as_array_checked({arity}, \"{name}\")?;\nOk({name}(\n");
            for i in 0..*arity {
                s.push_str(&format!("serde::Deserialize::from_json_value(&a[{i}])?,\n"));
            }
            s.push_str("))");
            s
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum { variants } => {
            // Unit variants arrive as a bare string; data variants as a
            // single-key object, externally tagged.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => return Ok({name}::{vn}(\
                                 serde::Deserialize::from_json_value(inner)?)),\n"
                            ));
                        } else {
                            let mut fields = String::new();
                            for i in 0..*n {
                                fields.push_str(&format!(
                                    "serde::Deserialize::from_json_value(&a[{i}])?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let a = inner.as_array_checked({n}, \"{name}::{vn}\")?;\n\
                                 return Ok({name}::{vn}({fields}));\n}}\n"
                            ));
                        }
                    }
                    VariantKind::Struct(fs) => {
                        let mut fields = String::new();
                        for f in fs {
                            fields.push_str(&format!(
                                "{f}: serde::Deserialize::from_json_value(\
                                 inner.get_object_key(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {fields} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let serde::Value::Str(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 other => return Err(serde::Error::new(\
                 format!(\"unknown variant {{other}} of {name}\"))),\n}}\n}}\n\
                 if let Some((tag, inner)) = v.as_single_key_object() {{\n\
                 match tag {{\n{data_arms}\
                 other => return Err(serde::Error::new(\
                 format!(\"unknown variant {{other}} of {name}\"))),\n}}\n}}\n\
                 Err(serde::Error::new(format!(\"expected {name} variant, got {{v:?}}\")))"
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}\n",
    );
    out.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// hand-rolled derive-input parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Parsed {
    let mut toks = input.into_iter().peekable();
    // skip attributes and visibility
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic types ({name})");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for {other} items"),
    };
    Parsed { name, shape }
}

/// Splits a brace-group stream into field names, skipping attributes,
/// visibility, and type tokens (types may contain `<...>` with commas).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // skip attrs + vis
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("expected field name, got {tok:?}");
        };
        fields.push(field.to_string());
        // expect ':' then consume the type up to a top-level comma
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {field}, got {other:?}"),
        }
        let mut angle_depth = 0usize;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts tuple-struct fields (top-level commas + 1, angle-aware).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // skip attrs
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("expected variant name, got {tok:?}");
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            kind,
        });
        // consume trailing comma if present
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
    }
    variants
}

//! Offline stand-in for `criterion`.
//!
//! Implements the measurement surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`], [`criterion_main!`], and [`black_box`] — with a
//! calibrated doubling loop instead of full statistical sampling. Each
//! benchmark reports mean ns/iter on stdout in a stable `name ... time:`
//! format. Set `CRITERION_MEASURE_MS` to change the per-benchmark
//! measurement budget (default 100 ms).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms.max(1))
}

/// Benchmark driver; one per `criterion_group!` invocation.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: measure_budget(),
        }
    }
}

impl Criterion {
    /// Opens a named group; benchmarks in it are reported as `name/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.budget, &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the doubling loop sizes itself
    /// from the time budget rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; ignored.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.budget = time;
        self
    }

    /// Benchmarks `f` against `input`, labelled `group-name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.criterion.budget, &mut |b| f(b, input));
        self
    }

    /// Ends the group. (Reporting is immediate, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` with a doubling calibration loop: the iteration count
    /// doubles until one batch exceeds the budget, then the final batch
    /// supplies the mean. Deterministic given a deterministic workload.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call outside measurement (page-in, caches).
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 40 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                self.iters = iters;
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

fn run_one(label: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{label:<50} time: {:>12} ns/iter  ({} iters)",
        format_ns(b.ns_per_iter),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut hits = 0u32;
        g.bench_with_input(BenchmarkId::new("inner", 7), &3u32, |b, &x| {
            b.iter(|| {
                hits += 1;
                black_box(x * 2)
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &4u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("width", 12).id, "width/12");
        assert_eq!(BenchmarkId::from_parameter("crown").id, "crown");
    }
}

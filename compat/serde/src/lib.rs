//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy serialization *framework*; this
//! workspace only ever drives it through `serde_json`, so the stand-in
//! collapses the framework to a JSON value tree: [`Serialize`] renders
//! a type into a [`Value`], [`Deserialize`] reads one back. The derive
//! macros (re-exported from the sibling `serde_derive` stand-in) target
//! the same encoding upstream `serde_json` uses — named structs become
//! objects, newtypes are transparent, enums are externally tagged — so
//! byte output stays compatible for the shapes the workspace serializes.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// An insertion-ordered string-keyed map (what `serde_json::Map` is
/// with `preserve_order`; iteration order is insertion order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value. Integers keep exact (i128) fidelity; floats are `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer written without fraction or exponent.
    Int(i128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Object field lookup (used by derived `Deserialize`).
    pub fn get_object_key(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The `(tag, inner)` of a single-key object (externally tagged
    /// enum encoding), if this is one.
    pub fn as_single_key_object(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(m) if m.len() == 1 => m.iter().next().map(|(k, v)| (k.as_str(), v)),
            _ => None,
        }
    }

    /// The elements of an array of exactly `n` items.
    pub fn as_array_checked(&self, n: usize, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Array(a) if a.len() == n => Ok(a),
            other => Err(Error::new(format!(
                "expected {n}-element array for {what}, got {other:?}"
            ))),
        }
    }

    /// The integer content, if any.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer content, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The float content (integers convert), if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array content, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

/// `v["key"]` object lookup; missing keys and non-objects yield `Null`,
/// matching upstream `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_object_key(key).unwrap_or(&NULL_VALUE)
    }
}

/// `v[i]` array lookup; out-of-bounds and non-arrays yield `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_value_int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_int_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Renders a value into the JSON value tree.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_json_value(&self) -> Value;
}

/// Reads a value back from the JSON value tree.
pub trait Deserialize: Sized {
    /// Decodes `v` into `Self`.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_json_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_json_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

/// Map keys serialize as JSON object keys (strings), like upstream.
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| {
                    Error::new(format!("bad {} object key: {s:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // deterministic output: sort by rendered key
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs.into_iter().collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let a = v.as_array_checked(N, "tuple")?;
                Ok(($($name::from_json_value(&a[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Int(1));
        m.insert("a", Value::Int(2));
        assert!(m.insert("b", Value::Int(3)).is_some());
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Int(3)));
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(some.to_json_value(), Value::Int(7));
        assert_eq!(none.to_json_value(), Value::Null);
        assert_eq!(Option::<u64>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_json_value(&Value::Int(7)).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn btreemap_uses_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3usize, vec![1u64, 2]);
        let v = m.to_json_value();
        assert_eq!(
            v.get_object_key("3"),
            Some(&Value::Array(vec![Value::Int(1), Value::Int(2)]))
        );
        let back: BTreeMap<usize, Vec<u64>> = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1usize, 2u64, Some("x".to_string()));
        let v = t.to_json_value();
        let back: (usize, u64, Option<String>) = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn int_range_checked() {
        let v = Value::Int(300);
        assert!(u8::from_json_value(&v).is_err());
        assert_eq!(u16::from_json_value(&v).unwrap(), 300);
    }
}

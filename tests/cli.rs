//! End-to-end tests of the `msgorder` CLI binary.

use std::process::Command;

fn msgorder(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_msgorder");
    let out = Command::new(exe).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = msgorder(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("classify"));
}

#[test]
fn classify_dsl_predicate() {
    let (ok, stdout, _) = msgorder(&["classify", "forbid x, y: x.s < y.s & y.r < x.r"]);
    assert!(ok);
    assert!(stdout.contains("tagging sufficient"));
    assert!(stdout.contains("min order : 1"));
}

#[test]
fn classify_catalog_name() {
    let (ok, stdout, _) = msgorder(&["classify", "handoff"]);
    assert!(ok);
    assert!(stdout.contains("control messages required"));
}

#[test]
fn classify_rejects_bad_dsl() {
    let (ok, _, stderr) = msgorder(&["classify", "forbid x: x.s <"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn catalog_lists_everything() {
    let (ok, stdout, _) = msgorder(&["catalog"]);
    assert!(ok);
    for name in ["fifo", "causal", "handoff", "receive-second-before-first"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn witness_for_tagless_spec_says_none_needed() {
    let (ok, stdout, _) = msgorder(&["witness", "mutual-send"]);
    assert!(ok);
    assert!(stdout.contains("no separation witness needed"));
}

#[test]
fn witness_for_causal_prints_run() {
    let (ok, stdout, _) = msgorder(&["witness", "causal"]);
    assert!(ok);
    assert!(stdout.contains("AsyncViolation"));
    assert!(stdout.contains("▷"));
}

#[test]
fn dot_outputs_graphviz() {
    let (ok, stdout, _) = msgorder(&["dot", "causal"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("β"));
}

#[test]
fn simulate_with_verification() {
    let (ok, stdout, _) = msgorder(&[
        "simulate",
        "--protocol",
        "causal-rst",
        "--processes",
        "3",
        "--messages",
        "10",
        "--seed",
        "2",
        "--spec",
        "causal",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("live          : true"));
    assert!(stdout.contains("spec          : satisfied"));
    assert!(stdout.contains("in X_co       : true"));
}

#[test]
fn simulate_timeline_renders() {
    let (ok, stdout, _) = msgorder(&[
        "simulate",
        "--protocol",
        "fifo",
        "--processes",
        "2",
        "--messages",
        "2",
        "--timeline",
    ]);
    assert!(ok);
    assert!(stdout.contains("time diagram:"));
    assert!(stdout.contains("P0 |"));
    assert!(stdout.contains("m0.s*"));
}

#[test]
fn simulate_synthesized_requires_spec() {
    let (ok, _, stderr) = msgorder(&["simulate", "--protocol", "synthesized"]);
    assert!(!ok);
    assert!(stderr.contains("requires --spec"));
}

#[test]
fn explain_renders_argument() {
    let (ok, stdout, _) = msgorder(&["explain", "causal"]);
    assert!(ok);
    assert!(stdout.contains("because"));
    assert!(stdout.contains("Theorems 3.2/4.3"));
    assert!(stdout.contains("[verified]"));
}

#[test]
fn file_command_classifies_spec_file() {
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("specs.mo");
    std::fs::write(
        &path,
        "a = forbid x, y: x.s < y.s & y.r < x.r\n\n\
         b = forbid x, y: x.s < y.r & y.s < x.r\n",
    )
    .unwrap();
    let (ok, stdout, _) = msgorder(&["file", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("tagging sufficient"));
    assert!(stdout.contains("control messages required"));
}

#[test]
fn file_command_missing_path_fails() {
    let (ok, _, stderr) = msgorder(&["file", "/nonexistent/specs.mo"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = msgorder(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unknown_protocol_fails() {
    let (ok, _, stderr) = msgorder(&["simulate", "--protocol", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown protocol"));
}

#[test]
fn simulate_record_then_replay_round_trips() {
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");
    let path = path.to_str().unwrap();
    let (ok, stdout, stderr) = msgorder(&[
        "simulate",
        "--protocol",
        "fifo",
        "--processes",
        "3",
        "--messages",
        "8",
        "--seed",
        "6",
        "--spec",
        "fifo",
        "--reliable",
        "--drop",
        "0.3",
        "--record",
        path,
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("trace         :"), "{stdout}");
    assert!(stdout.contains("fingerprint"), "{stdout}");

    let (ok, stdout, stderr) = msgorder(&["replay", path]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("fingerprint   : ok"), "{stdout}");
    assert!(stdout.contains("events identical"), "{stdout}");
    assert!(stdout.contains("REPLAY OK"), "{stdout}");
}

#[test]
fn replay_flags_a_tampered_trace() {
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tampered.jsonl");
    let (ok, _, _) = msgorder(&[
        "simulate",
        "--protocol",
        "fifo",
        "--processes",
        "3",
        "--messages",
        "5",
        "--seed",
        "8",
        "--record",
        path.to_str().unwrap(),
    ]);
    assert!(ok);
    // Corrupt one wire delay in place.
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("\"delay\":", "\"delay\":1", 1);
    assert_ne!(text, tampered, "tampering must change the file");
    std::fs::write(&path, tampered).unwrap();
    let (ok, stdout, stderr) = msgorder(&["replay", path.to_str().unwrap()]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("MISMATCH"), "{stdout}");
    assert!(stderr.contains("diverged"), "{stderr}");
}

#[test]
fn simulate_metrics_report() {
    let (ok, stdout, stderr) = msgorder(&[
        "simulate",
        "--protocol",
        "causal-rst",
        "--processes",
        "3",
        "--messages",
        "10",
        "--seed",
        "2",
        "--spec",
        "causal",
        "--online",
        "--metrics",
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("metrics:"), "{stdout}");
    assert!(stdout.contains("delivery latency"), "{stdout}");
    assert!(stdout.contains("monitor searches"), "{stdout}");
    assert!(stdout.contains("histogram (ticks):"), "{stdout}");
}

#[test]
fn replay_metrics_from_recorded_events() {
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.jsonl");
    let path = path.to_str().unwrap();
    let (ok, _, _) = msgorder(&[
        "simulate",
        "--protocol",
        "sync",
        "--processes",
        "3",
        "--messages",
        "6",
        "--seed",
        "1",
        "--record",
        path,
    ]);
    assert!(ok);
    let (ok, stdout, _) = msgorder(&["replay", path, "--metrics"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("metrics (from the recorded events):"),
        "{stdout}"
    );
    assert!(stdout.contains("wire frames"), "{stdout}");
}

#[test]
fn golden_trace_replays() {
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace-v1.jsonl");
    let (ok, stdout, stderr) = msgorder(&["replay", golden]);
    assert!(ok, "golden trace must keep replaying: {stdout}{stderr}");
    assert!(stdout.contains("REPLAY OK"), "{stdout}");
    assert!(stdout.contains("events identical"), "{stdout}");
}

#[test]
fn shrink_minimizes_a_stalled_trace_end_to_end() {
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let raw = dir.join("shrink-raw.jsonl");
    let raw = raw.to_str().unwrap();
    let min = dir.join("shrink-min.jsonl");
    let min = min.to_str().unwrap();
    // Reliable FIFO wedged by a permanent crash under drop: non-live.
    let (ok, stdout, _) = msgorder(&[
        "simulate",
        "--protocol",
        "fifo",
        "--reliable",
        "--processes",
        "3",
        "--messages",
        "12",
        "--seed",
        "3",
        "--drop",
        "0.15",
        "--crash",
        "1:1",
        "--record",
        raw,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("live          : false"), "{stdout}");
    assert!(stdout.contains("liveness      : "), "{stdout}");
    let (ok, stdout, stderr) = msgorder(&["shrink", raw, "--out", min]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("verdict class : non-live:"), "{stdout}");
    // The minimized artifact replays bit-exactly and keeps its verdict.
    let (ok, stdout, _) = msgorder(&["replay", min]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("REPLAY OK"), "{stdout}");
    assert!(stdout.contains("recorded stall:"), "{stdout}");
}

#[test]
fn golden_shrunk_trace_replays_and_reshrinks_to_itself() {
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/shrunk-v1.jsonl");
    let (ok, stdout, stderr) = msgorder(&["replay", golden]);
    assert!(
        ok,
        "golden minimized trace must keep replaying: {stdout}{stderr}"
    );
    assert!(stdout.contains("REPLAY OK"), "{stdout}");
    assert!(stdout.contains("events identical"), "{stdout}");
    // Shrinking a fixpoint is a byte-stable no-op.
    let dir = std::env::temp_dir().join("msgorder-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("golden-reshrunk.jsonl");
    let out = out.to_str().unwrap();
    let (ok, stdout, stderr) = msgorder(&["shrink", golden, "--out", out]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("(0% reduction)"), "{stdout}");
    assert_eq!(
        std::fs::read(golden).unwrap(),
        std::fs::read(out).unwrap(),
        "re-shrinking the golden minimized trace must reproduce it byte-for-byte"
    );
}

#[test]
fn chaos_sweep_reports_shrunk_findings() {
    let (ok, stdout, stderr) = msgorder(&["chaos", "--trials", "12", "--seed", "7"]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("12 trial(s)"), "{stdout}");
    assert!(stdout.contains("distinct failure mode"), "{stdout}");
}

#[test]
fn chaos_rejects_unknown_protocol() {
    let (ok, _, stderr) = msgorder(&["chaos", "--trials", "1", "--protocol", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("not in the registry"), "{stderr}");
}

#[test]
fn fault_flags_are_validated() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["simulate", "--partition", "0:0:5:10"],
            "invalid partition P0<->P0",
        ),
        (
            &["simulate", "--partition", "0:9:5:10"],
            "invalid partition P0<->P9",
        ),
        (
            &["simulate", "--partition", "0:1:10:10"],
            "invalid partition P0<->P1 over [10, 10)",
        ),
        (&["simulate", "--crash", "9:50"], "invalid crash of P9"),
        (
            &["simulate", "--crash", "1:50:20"],
            "invalid crash of P1 at t=50 (restart t=20)",
        ),
        (&["simulate", "--drop", "1.5"], "not in [0, 1]"),
        (&["simulate", "--dup", "-0.1"], "not in [0, 1]"),
    ];
    for (args, needle) in cases {
        let (ok, _, stderr) = msgorder(args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn explore_reduction_preserves_the_violation_set() {
    let base = [
        "explore",
        "--protocol",
        "async",
        "--spec",
        "fifo",
        "--processes",
        "2",
        "--messages",
        "4",
        "--seed",
        "1",
    ];
    let run = |extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let (ok, stdout, stderr) = msgorder(&args);
        assert!(ok, "{args:?}: {stdout}{stderr}");
        let grab = |label: &str| {
            stdout
                .lines()
                .find(|l| l.starts_with(label))
                .unwrap_or_else(|| panic!("no `{label}` line in {stdout}"))
                .to_owned()
        };
        (grab("digest"), grab("schedules"))
    };
    let (full_digest, full_schedules) = run(&["--por", "off"]);
    let (por_digest, por_schedules) = run(&["--por", "on"]);
    let (par_digest, _) = run(&["--por", "on", "--threads", "2"]);
    let (dedup_digest, _) = run(&["--por", "on", "--dedup", "exact"]);
    assert_eq!(
        full_digest, por_digest,
        "reduction changed the violation set"
    );
    assert_eq!(full_digest, par_digest, "threads changed the violation set");
    assert_eq!(full_digest, dedup_digest, "dedup changed the violation set");
    assert_ne!(full_schedules, por_schedules, "reduction did not reduce");
}

#[test]
fn explore_bounded_seen_set_spills_and_completes() {
    let dir = std::env::temp_dir().join(format!("msgorder-cli-spill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp spill dir");
    let (ok, stdout, stderr) = msgorder(&[
        "explore",
        "--protocol",
        "fifo",
        "--processes",
        "3",
        "--messages",
        "5",
        "--seed",
        "2",
        // Reduction off: only fully-explored states spill, and with POR
        // every live entry may carry a sleep set the subset rule still
        // needs — full search makes everything flushable.
        "--por",
        "off",
        "--max-states",
        "64",
        "--spill",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(ok, "{stdout}{stderr}");
    assert!(
        stdout.contains("dedup         : compact (max 64 states"),
        "{stdout}"
    );
    assert!(stdout.contains("truncated     : no"), "{stdout}");
    let spilled = stdout
        .lines()
        .find(|l| l.starts_with("spilled"))
        .expect("spilled line");
    assert!(!spilled.contains(" 0 segment"), "nothing spilled: {stdout}");
}

#[test]
fn explore_flags_are_validated() {
    let cases: &[(&[&str], &str)] = &[
        (&["explore", "--por", "maybe"], "expected `on` or `off`"),
        (
            &["explore", "--dedup", "huge"],
            "expected `off`, `exact` or `compact`",
        ),
        (
            &["explore", "--spill", "/tmp"],
            "--spill requires --max-states",
        ),
        (
            &["explore", "--dedup", "exact", "--max-states", "10"],
            "--max-states requires --dedup compact",
        ),
        (
            &["explore", "--dedup", "exact", "--drop", "0.1"],
            "quiet fault model",
        ),
        (&["explore", "--drop", "1.5"], "not in [0, 1]"),
        (&["explore", "--protocol", "flush"], "not explorable"),
        (
            &["explore", "--threads", "0"],
            "--threads must be at least 1",
        ),
        (
            &["explore", "--processes", "1"],
            "--processes must be at least 2",
        ),
    ];
    for (args, needle) in cases {
        let (ok, _, stderr) = msgorder(args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn chaos_confirm_flag_annotates_table() {
    let (ok, stdout, stderr) = msgorder(&[
        "chaos",
        "--trials",
        "12",
        "--seed",
        "7",
        "--no-shrink",
        "--confirm",
        "--protocol",
        "async",
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("inherent"), "{stdout}");
}

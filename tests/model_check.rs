//! Exhaustive model checking of small configurations: unlike the seeded
//! tests, these verify protocol safety over **every** network schedule
//! of a workload (the explorer branches on all frame orderings).

use msgorder::predicate::{catalog, eval};
use msgorder::protocols::{AsyncProtocol, CausalRst, FifoProtocol, SyncProtocol};
use msgorder::runs::limit_sets;
use msgorder::simnet::{explore, SendSpec, Workload};

fn same_channel(n: u64) -> Workload {
    Workload {
        sends: (0..n)
            .map(|i| SendSpec {
                at: i,
                src: 0,
                dst: 1,
                color: None,
            })
            .collect(),
    }
}

/// The cross-channel causal triangle: P0 -> P1, P0 -> P2, P1 -> P2.
fn triangle() -> Workload {
    Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 2,
                color: None,
            },
            SendSpec {
                at: 1,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 2,
                src: 1,
                dst: 2,
                color: None,
            },
        ],
    }
}

#[test]
fn fifo_protocol_exhaustively_fifo_on_three_messages() {
    let spec = catalog::fifo();
    let mut checked = 0;
    let exp = explore(
        2,
        same_channel(3),
        |_| FifoProtocol::new(),
        100_000,
        |run| {
            assert!(run.is_quiescent(), "liveness on every schedule");
            assert!(
                eval::satisfies_spec(&spec, &run.users_view()),
                "FIFO violated on a schedule"
            );
            checked += 1;
            true
        },
    );
    assert!(
        !exp.truncated,
        "exploration must be complete to count as proof"
    );
    assert!(
        checked >= 6,
        "expected all arrival interleavings, got {checked}"
    );
}

#[test]
fn async_protocol_exhaustively_shown_non_fifo() {
    let spec = catalog::fifo();
    let mut violated = false;
    explore(
        2,
        same_channel(2),
        |_| AsyncProtocol::new(),
        100_000,
        |run| {
            if !eval::satisfies_spec(&spec, &run.users_view()) {
                violated = true;
                return false; // counterexample found
            }
            true
        },
    );
    assert!(violated, "some schedule must invert the two deliveries");
}

#[test]
fn causal_rst_exhaustively_causal_on_the_triangle() {
    let mut checked = 0;
    let exp = explore(
        3,
        triangle(),
        |_| CausalRst::new(3),
        200_000,
        |run| {
            assert!(run.is_quiescent(), "liveness on every schedule");
            assert!(
                limit_sets::in_x_co(&run.users_view()),
                "causal ordering violated on a schedule"
            );
            checked += 1;
            true
        },
    );
    assert!(!exp.truncated);
    assert!(
        checked >= 2,
        "triangle has multiple schedules, got {checked}"
    );
}

#[test]
fn async_protocol_exhaustively_breaks_the_triangle() {
    let mut violated = false;
    explore(
        3,
        triangle(),
        |_| AsyncProtocol::new(),
        200_000,
        |run| {
            if !limit_sets::in_x_co(&run.users_view()) {
                violated = true;
                return false;
            }
            true
        },
    );
    assert!(
        violated,
        "the relay must overtake the direct message on some schedule"
    );
}

#[test]
fn sync_protocol_exhaustively_synchronous_on_crossing_pair() {
    // x: P0 -> P1 and y: P1 -> P0 issued concurrently: without control
    // messages these can cross (a crown); the lock protocol must prevent
    // that on EVERY schedule, including all control-frame orderings.
    let w = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 0,
                src: 1,
                dst: 0,
                color: None,
            },
        ],
    };
    let mut checked = 0;
    let exp = explore(
        2,
        w,
        |_| SyncProtocol::new(),
        500_000,
        |run| {
            assert!(run.is_quiescent(), "liveness on every schedule");
            assert!(
                limit_sets::in_x_sync(&run.users_view()),
                "logical synchrony violated on a schedule"
            );
            checked += 1;
            true
        },
    );
    assert!(!exp.truncated);
    assert!(checked >= 2, "got {checked}");
}

#[test]
fn async_protocol_exhaustively_crosses_the_pair() {
    let w = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 0,
                src: 1,
                dst: 0,
                color: None,
            },
        ],
    };
    let mut crossed = false;
    explore(
        2,
        w,
        |_| AsyncProtocol::new(),
        100_000,
        |run| {
            if !limit_sets::in_x_sync(&run.users_view()) {
                crossed = true;
                return false;
            }
            true
        },
    );
    assert!(crossed, "some schedule must cross the pair");
}

/// Explores a workload under `opts` and returns the set of *violating*
/// terminal configurations (canonical user-view strings) plus the
/// explorer's counters.
fn violation_set(
    procs: usize,
    w: &Workload,
    kind: &msgorder::protocols::ProtocolKind,
    spec: &msgorder::predicate::ForbiddenPredicate,
    opts: &msgorder::simnet::ExploreOptions,
) -> (
    std::collections::BTreeSet<String>,
    msgorder::simnet::Exploration,
) {
    let set = std::sync::Mutex::new(std::collections::BTreeSet::new());
    let e = msgorder::simnet::explore_parallel_with(
        procs,
        w.clone(),
        |node| kind.explorable(procs, node).expect("explorable protocol"),
        opts,
        &|run| {
            let view = run.users_view();
            if eval::find_instantiation(spec, &view).is_some() {
                set.lock()
                    .expect("no visitor panicked")
                    .insert(format!("{:?}", view.relation_pairs()));
            }
            true
        },
    );
    (set.into_inner().expect("no visitor panicked"), e)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

    /// The acceptance property of the reduced explorer: sleep-set
    /// reduction, the sharded parallel frontier, and deduplication all
    /// find exactly the violating configurations of sequential full
    /// search — across random workloads, seeds, real protocols, and
    /// both spec polarities.
    #[test]
    fn reduced_exploration_finds_exactly_the_full_search_violations(
        msgs in 2usize..5, seed in 0u64..200, causal_spec in proptest::prelude::any::<bool>(),
        fifo_protocol in proptest::prelude::any::<bool>(),
    ) {
        use msgorder::simnet::{DedupMode, ExploreOptions};
        let procs = 3;
        let w = Workload::uniform_random(procs, msgs, seed);
        let spec = if causal_spec { catalog::causal() } else { catalog::fifo() };
        let kind = if fifo_protocol {
            msgorder::protocols::ProtocolKind::Fifo
        } else {
            msgorder::protocols::ProtocolKind::Async
        };
        let full = violation_set(procs, &w, &kind, &spec, &ExploreOptions::default());
        let por = violation_set(procs, &w, &kind, &spec, &ExploreOptions {
            por: true,
            ..ExploreOptions::default()
        });
        let por_par = violation_set(procs, &w, &kind, &spec, &ExploreOptions {
            por: true,
            threads: 2,
            ..ExploreOptions::default()
        });
        let por_dedup = violation_set(procs, &w, &kind, &spec, &ExploreOptions {
            por: true,
            dedup: DedupMode::Exact,
            ..ExploreOptions::default()
        });
        proptest::prop_assert_eq!(&full.0, &por.0, "reduction changed the violation set");
        proptest::prop_assert_eq!(&full.0, &por_par.0, "threads changed the violation set");
        proptest::prop_assert_eq!(&full.0, &por_dedup.0, "dedup changed the violation set");
        proptest::prop_assert!(por.1.schedules <= full.1.schedules);
    }
}

//! Executable checks of the paper's theorems, spanning every crate.

use msgorder::classifier::classify::{classify, Classification};
use msgorder::classifier::witness::{separation_witnesses, verify_witness, WitnessKind};
use msgorder::predicate::{catalog, eval, ForbiddenPredicate};
use msgorder::runs::generator::{
    distinct_user_views, random_causal_run, random_sync_run, random_user_run, GenParams,
};
use msgorder::runs::limit_sets;

/// §3.4: `X_sync ⊆ X_co ⊆ X_async`, checked over the exhaustive set of
/// user views of every 2-message execution and a large random family.
#[test]
fn limit_set_containment_chain() {
    let mut checked = 0;
    for endpoints in [
        vec![(0, 1), (1, 0)],
        vec![(0, 1), (0, 1)],
        vec![(0, 1), (2, 1)],
        vec![(0, 1), (1, 2)],
    ] {
        for v in distinct_user_views(3, &endpoints) {
            if limit_sets::in_x_sync(&v) {
                assert!(limit_sets::in_x_co(&v));
            }
            if limit_sets::in_x_co(&v) {
                assert!(limit_sets::in_x_async(&v));
            }
            checked += 1;
        }
    }
    for seed in 0..200 {
        let v = random_user_run(GenParams::new(4, 8, seed));
        if limit_sets::in_x_sync(&v) {
            assert!(limit_sets::in_x_co(&v));
        }
        checked += 1;
    }
    assert!(checked > 100, "exercised {checked} runs");
}

/// Lemma 3.2: the three causal forms B1, B2, B3 define the same
/// specification set — checked exhaustively over all distinct user views
/// of 2- and 3-message executions (no sampling bias).
#[test]
fn lemma_3_2_causal_forms_equivalent_exhaustively() {
    let b1 = catalog::causal_b1();
    let b2 = catalog::causal();
    let b3 = catalog::causal_b3();
    let mut views = distinct_user_views(2, &[(0, 1), (0, 1)]);
    views.extend(distinct_user_views(3, &[(0, 1), (1, 2)]));
    views.extend(distinct_user_views(2, &[(0, 1), (1, 0)]));
    views.extend(distinct_user_views(3, &[(0, 1), (1, 2), (2, 0)]));
    views.extend(distinct_user_views(2, &[(0, 1), (0, 1), (0, 1)]));
    views.extend(distinct_user_views(2, &[(0, 1), (0, 1), (1, 0)]));
    views.extend(distinct_user_views(3, &[(0, 1), (2, 1), (0, 2)]));
    assert!(views.len() > 40, "only {} views enumerated", views.len());
    for v in &views {
        let (r1, r2, r3) = (
            eval::holds(&b1, v),
            eval::holds(&b2, v),
            eval::holds(&b3, v),
        );
        assert_eq!(r1, r2, "B1 ≠ B2 on\n{v}");
        assert_eq!(r2, r3, "B2 ≠ B3 on\n{v}");
        // ... and B2 is the definition of X_co:
        assert_eq!(!r2, limit_sets::in_x_co(v), "B2 ≠ X_co on\n{v}");
    }
}

/// Lemma 3.1: every logically synchronous run satisfies every crown
/// specification (`X_sync ⊆ X_{B_k}`).
#[test]
fn lemma_3_1_crowns_contain_x_sync() {
    for k in 2..=4 {
        let crown = catalog::sync_crown(k);
        for seed in 0..60 {
            let run = random_sync_run(GenParams::new(4, 8, seed));
            assert!(
                eval::satisfies_spec(&crown, &run),
                "sync run violates {k}-crown at seed {seed}"
            );
        }
    }
}

/// Lemma 3.3: the order-0 predicates are unsatisfiable in any run.
#[test]
fn lemma_3_3_impossible_patterns_never_fire() {
    for pred in [
        catalog::mutual_send(),
        catalog::lemma33_b(),
        catalog::mutual_deliver(),
    ] {
        for seed in 0..60 {
            let run = random_user_run(GenParams::new(3, 7, seed));
            assert!(!eval::holds(&pred, &run), "{pred} fired at seed {seed}");
        }
    }
}

/// Theorem 2 (only-if): acyclic predicate graph ⇒ a logically
/// synchronous run violates the spec, so nothing can implement it.
#[test]
fn theorem_2_acyclic_specs_unimplementable_with_witness() {
    let pred = catalog::receive_second_before_first();
    let report = classify(&pred);
    assert!(matches!(
        report.classification,
        Classification::NotImplementable
    ));
    let ws = separation_witnesses(&pred);
    assert_eq!(ws.len(), 1);
    assert_eq!(ws[0].kind, WitnessKind::SyncViolation);
    verify_witness(&pred, &ws[0]).unwrap();
    assert!(limit_sets::in_x_sync(&ws[0].run));
    assert!(eval::holds(&pred, &ws[0].run));
}

/// Theorem 3 (sufficiency), checked empirically:
/// order 0 ⇒ `X_async ⊆ X_B`; order 1 ⇒ `X_co ⊆ X_B`;
/// any cycle ⇒ `X_sync ⊆ X_B`.
#[test]
fn theorem_3_sufficiency_over_generated_runs() {
    for entry in catalog::all() {
        let report = classify(&entry.predicate);
        match report.classification {
            Classification::TaglessSufficient { .. } => {
                for seed in 0..30 {
                    let run = random_user_run(GenParams::new(3, 6, seed));
                    assert!(
                        eval::satisfies_spec(&entry.predicate, &run),
                        "{}: X_async ⊄ X_B at seed {seed}",
                        entry.name
                    );
                }
            }
            Classification::TaggedSufficient { .. } => {
                for seed in 0..30 {
                    let run = random_causal_run(GenParams::new(3, 8, seed));
                    assert!(
                        eval::satisfies_spec(&entry.predicate, &run),
                        "{}: X_co ⊄ X_B at seed {seed}",
                        entry.name
                    );
                }
            }
            Classification::RequiresControlMessages { .. } => {
                for seed in 0..30 {
                    let run = random_sync_run(GenParams::new(4, 8, seed));
                    assert!(
                        eval::satisfies_spec(&entry.predicate, &run),
                        "{}: X_sync ⊄ X_B at seed {seed}",
                        entry.name
                    );
                }
            }
            Classification::NotImplementable => {}
        }
    }
}

/// Theorem 4 (necessity): every implementable catalog spec of each class
/// comes with a verified witness separating it from the next-weaker
/// protocol class.
#[test]
fn theorem_4_necessity_witnesses_for_whole_catalog() {
    for entry in catalog::all() {
        let ws = separation_witnesses(&entry.predicate);
        for w in &ws {
            verify_witness(&entry.predicate, w).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
        match entry.expected {
            catalog::PaperClass::Tagless => assert!(ws.is_empty()),
            catalog::PaperClass::Tagged => {
                assert_eq!(ws[0].kind, WitnessKind::AsyncViolation, "{}", entry.name);
                // the witness shows the trivial protocol is insufficient:
                // an async-admissible run that violates the spec
                assert!(
                    !eval::satisfies_spec(&entry.predicate, &ws[0].run),
                    "{}",
                    entry.name
                );
            }
            catalog::PaperClass::General => {
                assert_eq!(ws[0].kind, WitnessKind::CausalViolation, "{}", entry.name);
                assert!(limit_sets::in_x_co(&ws[0].run), "{}", entry.name);
                assert!(!limit_sets::in_x_sync(&ws[0].run), "{}", entry.name);
            }
            catalog::PaperClass::Unimplementable => {
                assert_eq!(ws[0].kind, WitnessKind::SyncViolation, "{}", entry.name);
            }
        }
    }
}

/// Corollary 1 both ways on hand-picked specs: implementable iff
/// `X_sync ⊆ X_B`, checked against generated sync runs.
#[test]
fn corollary_1_implementability_boundary() {
    // Implementable specs never reject a sync run.
    let implementable = catalog::causal();
    for seed in 0..50 {
        let run = random_sync_run(GenParams::new(3, 6, seed));
        assert!(eval::satisfies_spec(&implementable, &run));
    }
    // The unimplementable spec rejects some sync run (its witness).
    let not = catalog::receive_second_before_first();
    let w = &separation_witnesses(&not)[0];
    assert!(limit_sets::in_x_sync(&w.run) && eval::holds(&not, &w.run));
}

/// The Lemma 4 / Example 3 walk-through: reducing the paper's example
/// cycle preserves order and β vertex.
#[test]
fn lemma_4_reduction_on_paper_example() {
    use msgorder::classifier::cycles::enumerate_cycles;
    use msgorder::classifier::reduce::reduce_cycle;
    use msgorder::classifier::PredicateGraph;

    let pred = catalog::example_4_2();
    let g = PredicateGraph::of(&pred);
    let cycles = enumerate_cycles(&g, 64);
    let four = cycles.iter().find(|c| c.len() == 4).expect("paper's cycle");
    assert_eq!(four.order(), 1);
    let trace = reduce_cycle(&g, four);
    assert_eq!(trace.final_conjuncts.len(), 2);
    let weaker = trace.final_predicate(&pred);
    // B ⇒ B′: every run satisfying B satisfies B′ — spot-check via the
    // canonical run of B.
    let canon = msgorder::predicate::canonical::canonical_run(&pred).unwrap();
    assert!(eval::holds(&pred, &canon.run));
    // (variable sets differ, so evaluate B′ directly on the same run)
    assert!(
        eval::holds(&weaker, &canon.run),
        "reduction produced a non-implied predicate"
    );
    // ... and semantically over a family of random runs.
    let runs: Vec<_> = (0..60)
        .map(|seed| random_user_run(GenParams::new(4, 7, seed)))
        .collect();
    assert!(
        eval::implies_on_runs(&pred, &weaker, runs.iter()).is_ok(),
        "Lemma 4 reduction must weaken, never strengthen"
    );
}

/// Lemma 4 reductions are semantically sound for every catalog cycle.
#[test]
fn lemma_4_reductions_sound_across_catalog() {
    use msgorder::classifier::cycles::enumerate_cycles;
    use msgorder::classifier::reduce::reduce_cycle;
    use msgorder::classifier::PredicateGraph;
    let runs: Vec<_> = (0..40)
        .map(|seed| random_user_run(GenParams::new(4, 6, seed)))
        .collect();
    for entry in catalog::all() {
        let g = PredicateGraph::of(&entry.predicate);
        for cycle in enumerate_cycles(&g, 16) {
            let trace = reduce_cycle(&g, &cycle);
            let weaker = trace.final_predicate(&entry.predicate);
            // the cycle's own predicate is weaker than B already; B ⇒
            // cycle-predicate ⇒ reduced predicate.
            assert!(
                eval::implies_on_runs(&entry.predicate, &weaker, runs.iter()).is_ok(),
                "{}: reduction not implied",
                entry.name
            );
        }
    }
}

/// Lemma 2.1 / Figure 7: every `X_gn` run has a one-event-at-a-time
/// prefix series whose pending set never exceeds one — the executable
/// form of "every live general protocol must admit all of `X_gn`".
#[test]
fn lemma_2_prefix_series_for_x_gn_runs() {
    use msgorder::runs::generator::random_sync_run;
    use msgorder::runs::{construct, lemma2};
    for seed in 0..30 {
        let user = random_sync_run(GenParams::new(4, 7, seed));
        let sys = construct::gn_system_from_sync_user(&user).expect("realizes in X_gn");
        let series = lemma2::gn_prefix_series(&sys).expect("X_gn run has a series");
        assert!(
            series.pending_always_singleton(),
            "seed {seed}: {:?}",
            series.pending_sizes
        );
        assert_eq!(series.event_order.len(), 4 * user.len());
    }
}

/// Classification is invariant under conjunct permutation.
#[test]
fn classification_invariant_under_conjunct_order() {
    use msgorder::predicate::Var;
    // k-weaker-2 with conjuncts reversed.
    let fwd = catalog::k_weaker_causal(2);
    let mut b = ForbiddenPredicate::build(4);
    b = b.conjunct(Var(3).r(), Var(0).r());
    b = b.conjunct(Var(2).s(), Var(3).s());
    b = b.conjunct(Var(1).s(), Var(2).s());
    b = b.conjunct(Var(0).s(), Var(1).s());
    let rev = b.finish();
    assert_eq!(
        classify(&fwd).classification.protocol_class(),
        classify(&rev).classification.protocol_class()
    );
    assert_eq!(classify(&fwd).min_order, classify(&rev).min_order);
}

//! End-to-end pipeline: specification → classification → recommended
//! protocol → adversarial simulation → verified safety and liveness.

use msgorder::core::{PaperClass, Spec};
use msgorder::predicate::catalog::{self, CatalogEntry};
use msgorder::protocols::{run_and_verify, ProtocolKind};
use msgorder::simnet::{LatencyModel, SimConfig, Workload};

fn config(processes: usize, seed: u64) -> SimConfig {
    SimConfig::new(processes, LatencyModel::Uniform { lo: 1, hi: 600 }, seed)
}

/// A workload that exercises the colors/variables the entry mentions.
fn workload_for(entry: &CatalogEntry, processes: usize, seed: u64) -> Workload {
    match entry.name {
        "local-forward-flush" | "global-forward-flush" => {
            Workload::with_markers(processes, 14, 4, "red", seed)
        }
        "backward-flush" => Workload::with_markers(processes, 14, 4, "red", seed),
        "red-sync" => Workload::with_markers(processes, 14, 3, "red", seed),
        "session-fifo" => Workload::with_markers(processes, 14, 3, "s1", seed),
        "handoff" => Workload::with_markers(processes, 14, 5, "handoff", seed),
        _ => Workload::uniform_random(processes, 12, seed),
    }
}

/// For every implementable catalog entry, the recommended protocol must
/// be safe and live on adversarial workloads.
#[test]
fn recommended_protocols_implement_their_specs() {
    let n = 3;
    for entry in catalog::all() {
        if entry.expected == PaperClass::Unimplementable {
            continue;
        }
        let report = Spec::from_predicate(entry.predicate.clone())
            .named(entry.name)
            .analyze();
        let kind = report.recommendation();
        // Large-variable predicates make the synthesized checker
        // expensive; keep those sweeps shorter.
        let seeds = if entry.predicate.var_count() > 3 {
            3
        } else {
            6
        };
        for seed in 0..seeds {
            let out = run_and_verify(
                config(n, seed),
                workload_for(&entry, n, seed),
                |node| kind.instantiate(n, node),
                &entry.predicate,
            );
            assert!(
                out.live,
                "{}: recommended protocol {} not live at seed {seed}",
                entry.name,
                kind.name()
            );
            assert!(
                out.safe,
                "{}: recommended protocol {} violated the spec at seed {seed}: {:?}",
                entry.name,
                kind.name(),
                out.violation
            );
        }
    }
}

/// The class hierarchy is strict in practice: for each tagged-class
/// spec, the weaker (async) protocol fails it on some seed; for each
/// general-class spec, the tagged causal protocol fails it on some seed.
#[test]
fn weaker_protocols_provably_insufficient() {
    let n = 3;
    // Tagged specs vs the do-nothing protocol.
    for name in ["causal", "fifo", "global-forward-flush"] {
        let entry = catalog::by_name(name).unwrap();
        let failed = (0..60).any(|seed| {
            let out = run_and_verify(
                config(n, seed),
                workload_for(&entry, n, seed),
                |_| ProtocolKind::Async.instantiate(n, 0),
                &entry.predicate,
            );
            !out.safe
        });
        assert!(failed, "{name}: async never violated — spec too weak?");
    }
    // General specs vs the tagged causal protocol.
    for name in ["handoff", "sync-crown-2"] {
        let entry = catalog::by_name(name).unwrap();
        let failed = (0..60).any(|seed| {
            let out = run_and_verify(
                config(n, seed),
                workload_for(&entry, n, seed),
                |node| ProtocolKind::CausalRst.instantiate(n, node),
                &entry.predicate,
            );
            !out.safe
        });
        assert!(
            failed,
            "{name}: causal RST never violated — control messages would not be needed"
        );
    }
}

/// The sync protocol (control messages) satisfies *every* implementable
/// catalog spec — the executable face of `X_sync ⊆ X_B`.
#[test]
fn sync_protocol_satisfies_every_implementable_spec() {
    let n = 3;
    for entry in catalog::all() {
        if entry.expected == PaperClass::Unimplementable {
            continue;
        }
        for seed in 0..3 {
            let out = run_and_verify(
                config(n, seed),
                workload_for(&entry, n, seed),
                |node| ProtocolKind::Sync.instantiate(n, node),
                &entry.predicate,
            );
            assert!(out.ok(), "{}: sync failed at seed {seed}", entry.name);
        }
    }
}

/// Analysis reports are verified and serializable for the whole catalog.
#[test]
fn reports_verify_and_serialize() {
    for entry in catalog::all() {
        let report = Spec::from_predicate(entry.predicate.clone())
            .named(entry.name)
            .analyze();
        report
            .verify_witnesses()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let json = report.to_json();
        assert_eq!(json["name"], entry.name);
        assert!(!report.render().is_empty());
        assert_eq!(
            report.classification().protocol_class(),
            entry.expected,
            "{}",
            entry.name
        );
    }
}

/// The DSL, Display and the analysis pipeline agree: re-parsing a
/// rendered predicate yields the same classification.
#[test]
fn display_parse_analyze_roundtrip() {
    for entry in catalog::all() {
        let rendered = entry.predicate.to_string();
        let reparsed = Spec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name))
            .analyze();
        let original = Spec::from_predicate(entry.predicate.clone()).analyze();
        assert_eq!(
            reparsed.classification().protocol_class(),
            original.classification().protocol_class(),
            "{}",
            entry.name
        );
    }
}

//! Property-based tests over randomly generated predicates and runs.

use msgorder::classifier::classify::classify;
use msgorder::classifier::cycles::min_order_by_enumeration;
use msgorder::classifier::min_order::min_cycle_order;
use msgorder::classifier::PredicateGraph;
use msgorder::poset::{Poset, TransitiveClosure};
use msgorder::predicate::{eval, ForbiddenPredicate, Var};
use msgorder::runs::generator::{random_causal_run, random_user_run, GenParams};
use msgorder::runs::limit_sets;
use proptest::prelude::*;

/// Strategy: a random predicate over `n ∈ [2, 5]` variables with
/// `e ∈ [1, 8]` conjuncts between distinct variables.
fn arb_predicate() -> impl Strategy<Value = ForbiddenPredicate> {
    (2usize..=5, 1usize..=8)
        .prop_flat_map(|(n, e)| {
            let conj = (0..n, 0..n, any::<bool>(), any::<bool>());
            (Just(n), proptest::collection::vec(conj, e))
        })
        .prop_map(|(n, conjs)| {
            let mut b = ForbiddenPredicate::build(n);
            for (u, v, us, vs) in conjs {
                let v = if u == v { (v + 1) % n } else { v };
                let lhs = if us { Var(u).s() } else { Var(u).r() };
                let rhs = if vs { Var(v).s() } else { Var(v).r() };
                b = b.conjunct(lhs, rhs);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two min-order engines agree on arbitrary multigraphs.
    #[test]
    fn min_order_engines_agree(pred in arb_predicate()) {
        let g = PredicateGraph::of(&pred);
        let by_enum = min_order_by_enumeration(&g, 1_000_000).map(|c| c.order());
        let by_bfs = min_cycle_order(&g).map(|c| c.order());
        prop_assert_eq!(by_enum, by_bfs, "disagree on {}", pred);
    }

    /// Renaming variables never changes the verdict.
    #[test]
    fn classification_invariant_under_renaming(pred in arb_predicate()) {
        let renamed = pred.clone().with_var_names(
            (0..pred.var_count()).map(|i| format!("v{}", 100 - i)).collect(),
        );
        prop_assert_eq!(
            classify(&pred).classification.protocol_class(),
            classify(&renamed).classification.protocol_class()
        );
    }

    /// Display → parse round-trips the predicate body.
    #[test]
    fn display_parse_roundtrip(pred in arb_predicate()) {
        let reparsed = ForbiddenPredicate::parse(&pred.to_string()).unwrap();
        prop_assert_eq!(pred.conjuncts(), reparsed.conjuncts());
    }

    /// Theorem-3 sufficiency, randomized: if the classifier says the
    /// trivial protocol suffices, no generated run may violate the spec;
    /// if it says tagged suffices, no causally ordered run may.
    #[test]
    fn sufficiency_randomized(pred in arb_predicate(), seed in 0u64..1000) {
        let report = classify(&pred);
        if report.classification.is_tagless_sufficient() {
            let run = random_user_run(GenParams::new(3, 6, seed));
            prop_assert!(eval::satisfies_spec(&pred, &run),
                "tagless-sufficient {} fired on a random run", pred);
        } else if report.classification.is_tagged_sufficient() {
            let run = random_causal_run(GenParams::new(3, 6, seed));
            prop_assert!(eval::satisfies_spec(&pred, &run),
                "tagged-sufficient {} fired on a causal run", pred);
        }
    }

    /// Witnesses produced for random predicates always verify.
    #[test]
    fn witnesses_verify(pred in arb_predicate()) {
        use msgorder::classifier::witness::{separation_witnesses, verify_witness};
        for w in separation_witnesses(&pred) {
            prop_assert!(verify_witness(&pred, &w).is_ok());
        }
    }

    /// Random runs: limit-set containment chain.
    #[test]
    fn containments_random(procs in 2usize..5, msgs in 1usize..9, seed in 0u64..1000) {
        let run = random_user_run(GenParams::new(procs, msgs, seed));
        if limit_sets::in_x_sync(&run) {
            prop_assert!(limit_sets::in_x_co(&run));
        }
        if limit_sets::in_x_co(&run) {
            prop_assert!(limit_sets::in_x_async(&run));
        }
    }

    /// `eval` against the causal predicate agrees with the direct
    /// `X_co` membership test on arbitrary runs.
    #[test]
    fn causal_eval_agrees_with_limit_set(procs in 2usize..5, msgs in 1usize..8, seed in 0u64..1000) {
        let run = random_user_run(GenParams::new(procs, msgs, seed));
        let b2 = msgorder::predicate::catalog::causal();
        prop_assert_eq!(eval::satisfies_spec(&b2, &run), limit_sets::in_x_co(&run));
    }

    /// Transitive closure is idempotent and reduction round-trips.
    #[test]
    fn closure_reduction_roundtrip(
        n in 1usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..24),
    ) {
        let pairs: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|(u, v)| u < &n && v < &n && u < v) // forward edges: acyclic
            .collect();
        let c = TransitiveClosure::from_pairs(n, pairs);
        prop_assert!(c.is_strict_order());
        let red = c.reduction();
        let c2 = TransitiveClosure::from_pairs(n, red);
        prop_assert_eq!(c.pairs(), c2.pairs());
    }

    /// Protocol safety, randomized: each protocol satisfies its own spec
    /// and stays live on arbitrary seeds/workload sizes.
    #[test]
    fn protocols_safe_and_live_randomized(
        seed in 0u64..500,
        msgs in 4usize..16,
        which in 0usize..4,
    ) {
        use msgorder::protocols::{run_and_verify, ProtocolKind};
        use msgorder::simnet::{LatencyModel, SimConfig, Workload};
        let specs = [
            (ProtocolKind::Fifo, msgorder::predicate::catalog::fifo()),
            (ProtocolKind::CausalRst, msgorder::predicate::catalog::causal()),
            (ProtocolKind::CausalSes, msgorder::predicate::catalog::causal()),
            (ProtocolKind::Sync, msgorder::predicate::catalog::sync_crown(2)),
        ];
        let (kind, spec) = &specs[which];
        let n = 3;
        let out = run_and_verify(
            SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 700 }, seed),
            Workload::uniform_random(n, msgs, seed),
            |node| kind.instantiate(n, node),
            spec,
        );
        prop_assert!(out.live, "{} not live at seed {seed}", kind.name());
        prop_assert!(out.safe, "{} violated its spec at seed {seed}: {:?}", kind.name(), out.violation);
    }

    /// The parser never panics on arbitrary input (errors are values).
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = msgorder::predicate::ForbiddenPredicate::parse(&input);
    }

    /// Realization preserves the abstract order and its violations.
    #[test]
    fn realization_preserves_relations(procs in 2usize..5, msgs in 1usize..6, seed in 0u64..500) {
        use msgorder::runs::realize::realize;
        let user = random_user_run(GenParams::new(procs, msgs, seed));
        let r = realize(&user).unwrap();
        let view = r.original_view();
        for (a, b) in user.relation_pairs() {
            prop_assert!(view.before(a, b));
        }
        prop_assert!(r.run.is_quiescent());
    }

    /// Consistent-cut counting agrees with the ideal count of the event
    /// poset on random small runs (the §2 lattice connection).
    #[test]
    fn cuts_equal_ideals(msgs in 1usize..5, seed in 0u64..300) {
        use msgorder::poset::{ideals, DiGraph, Poset};
        use msgorder::runs::{cuts, EventKind, ProcessId, SystemEvent};
        use msgorder::runs::generator::random_system_run;
        let run = random_system_run(GenParams::new(3, msgs, seed));
        let n = run.process_count();
        let mut events = Vec::new();
        for p in 0..n {
            events.extend(run.sequence(ProcessId(p)).iter().copied());
        }
        let node_of = |e: SystemEvent| events.iter().position(|x| *x == e).unwrap();
        let mut g = DiGraph::new(events.len());
        for p in 0..n {
            for w in run.sequence(ProcessId(p)).windows(2) {
                g.add_edge(node_of(w[0]), node_of(w[1])).unwrap();
            }
        }
        for meta in run.messages() {
            let s = SystemEvent::new(meta.id, EventKind::Send);
            let r = SystemEvent::new(meta.id, EventKind::Receive);
            if run.contains(s) && run.contains(r) {
                g.add_edge(node_of(s), node_of(r)).unwrap();
            }
        }
        let poset = Poset::from_graph(&g).unwrap();
        prop_assert_eq!(cuts::count_consistent(&run), ideals::ideal_count(&poset));
    }

    /// Every linear extension of a random poset respects the order.
    #[test]
    fn linear_extensions_respect_order(
        n in 1usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..10),
    ) {
        let pairs: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|(u, v)| u < &n && v < &n && u < v)
            .collect();
        let p = Poset::from_pairs(n, pairs).unwrap();
        let mut count = 0;
        msgorder::poset::linear::for_each_extension(&p, |ext| {
            let mut pos = vec![0usize; n];
            for (i, &v) in ext.iter().enumerate() {
                pos[v] = i;
            }
            for (u, v) in p.relation_pairs() {
                assert!(pos[u] < pos[v]);
            }
            count += 1;
            count < 200 // cap the walk
        });
        prop_assert!(count >= 1);
    }
}

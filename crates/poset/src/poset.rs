//! Validated strict partial orders.

use crate::bitset::BitSet;
use crate::closure::TransitiveClosure;
use crate::error::PosetError;
use crate::graph::{DiGraph, NodeId};

/// A finite strict partial order over elements `0..len`.
///
/// Construction validates acyclicity; the closure is precomputed, so
/// comparability queries are `O(1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poset {
    closure: TransitiveClosure,
}

impl Poset {
    /// Builds a poset over `0..n` as the transitive closure of `pairs`.
    ///
    /// # Errors
    /// Returns [`PosetError::Cyclic`] if the pairs induce a cycle and
    /// [`PosetError::NodeOutOfRange`] for out-of-range endpoints.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Result<Self, PosetError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v) in pairs {
            g.add_edge(u, v)?;
        }
        Self::from_graph(&g)
    }

    /// Builds a poset as the transitive closure of a graph.
    ///
    /// # Errors
    /// Returns [`PosetError::Cyclic`] if the graph has a directed cycle.
    pub fn from_graph(g: &DiGraph) -> Result<Self, PosetError> {
        if let Some(cycle) = g.find_cycle() {
            return Err(PosetError::Cyclic { cycle });
        }
        Ok(Poset {
            closure: TransitiveClosure::of_graph(g),
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.closure.len()
    }

    /// Whether the poset has no elements.
    pub fn is_empty(&self) -> bool {
        self.closure.is_empty()
    }

    /// Strictly-less-than: `a < b` in the order.
    pub fn lt(&self, a: NodeId, b: NodeId) -> bool {
        self.closure.reaches(a, b)
    }

    /// Less-than-or-equal: `a < b` or `a == b`.
    pub fn le(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.lt(a, b)
    }

    /// Whether `a` and `b` are comparable (`a < b`, `b < a`, or equal).
    pub fn comparable(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.lt(a, b) || self.lt(b, a)
    }

    /// Whether `a` and `b` are concurrent (distinct and incomparable).
    pub fn concurrent(&self, a: NodeId, b: NodeId) -> bool {
        !self.comparable(a, b)
    }

    /// The underlying closure.
    pub fn closure(&self) -> &TransitiveClosure {
        &self.closure
    }

    /// All pairs `(a, b)` with `a < b`.
    pub fn relation_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.closure.pairs()
    }

    /// The covering pairs (Hasse diagram edges).
    pub fn covers(&self) -> Vec<(NodeId, NodeId)> {
        self.closure.reduction()
    }

    /// Elements with no strict predecessor.
    pub fn minimal_elements(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&v| (0..self.len()).all(|u| !self.lt(u, v)))
            .collect()
    }

    /// Elements with no strict successor.
    pub fn maximal_elements(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&u| (0..self.len()).all(|v| !self.lt(u, v)))
            .collect()
    }

    /// The principal down-set of `v`: `{u : u < v}`.
    pub fn down_set(&self, v: NodeId) -> BitSet {
        self.closure.ancestors(v).clone()
    }

    /// The principal up-set of `u`: `{v : u < v}`.
    pub fn up_set(&self, u: NodeId) -> BitSet {
        self.closure.descendants(u).clone()
    }

    /// Whether `ideal` is downward closed (an order ideal): if it contains
    /// `v` it contains every `u < v`.
    pub fn is_order_ideal(&self, ideal: &BitSet) -> bool {
        ideal
            .iter()
            .all(|v| self.closure.ancestors(v).is_subset(ideal))
    }

    /// One topological linear extension (deterministic, index tie-break).
    pub fn a_linear_extension(&self) -> Vec<NodeId> {
        let mut g = DiGraph::new(self.len());
        for (u, v) in self.covers() {
            g.add_edge(u, v).expect("cover endpoints in range");
        }
        g.topo_sort().expect("poset is acyclic by construction")
    }

    /// The width-friendly antichain check: no two elements of `set` are
    /// comparable.
    pub fn is_antichain(&self, set: &BitSet) -> bool {
        let items: Vec<NodeId> = set.iter().collect();
        for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                if self.comparable(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        Poset::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn lt_le_comparable() {
        let p = diamond();
        assert!(p.lt(0, 3));
        assert!(!p.lt(3, 0));
        assert!(p.le(1, 1));
        assert!(!p.lt(1, 1));
        assert!(p.comparable(0, 3));
        assert!(p.concurrent(1, 2));
    }

    #[test]
    fn cyclic_rejected_with_witness() {
        let err = Poset::from_pairs(3, [(0, 1), (1, 2), (2, 0)]).unwrap_err();
        match err {
            PosetError::Cyclic { cycle } => assert_eq!(cycle.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minimal_maximal() {
        let p = diamond();
        assert_eq!(p.minimal_elements(), vec![0]);
        assert_eq!(p.maximal_elements(), vec![3]);
    }

    #[test]
    fn antichain_of_incomparables() {
        let p = diamond();
        let ac: BitSet = {
            let mut s = BitSet::new(4);
            s.insert(1);
            s.insert(2);
            s
        };
        assert!(p.is_antichain(&ac));
        let mut chain = BitSet::new(4);
        chain.insert(0);
        chain.insert(3);
        assert!(!p.is_antichain(&chain));
    }

    #[test]
    fn down_up_sets() {
        let p = diamond();
        assert_eq!(p.down_set(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(p.up_set(0).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn order_ideal_check() {
        let p = diamond();
        let mut ideal = BitSet::new(4);
        ideal.insert(0);
        ideal.insert(1);
        assert!(p.is_order_ideal(&ideal));
        let mut not_ideal = BitSet::new(4);
        not_ideal.insert(1); // missing 0 < 1
        assert!(!p.is_order_ideal(&not_ideal));
    }

    #[test]
    fn linear_extension_respects_order() {
        let p = diamond();
        let ext = p.a_linear_extension();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &v) in ext.iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for (u, v) in p.relation_pairs() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn empty_poset() {
        let p = Poset::from_pairs(0, []).unwrap();
        assert!(p.is_empty());
        assert!(p.minimal_elements().is_empty());
    }

    #[test]
    fn antichain_poset_all_concurrent() {
        let p = Poset::from_pairs(5, []).unwrap();
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert!(p.concurrent(a, b));
                }
            }
        }
        assert_eq!(p.minimal_elements().len(), 5);
    }
}

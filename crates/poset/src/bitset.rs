//! Dense fixed-capacity bitsets.
//!
//! Transitive-closure rows and visited sets are hot paths when checking
//! limit-set membership over thousands of generated runs, so we keep a
//! plain `Vec<u64>` representation with word-level bulk operations.

use std::fmt;

/// A dense bitset over the universe `0..capacity`.
///
/// All operations panic if an index is out of range; bulk operations panic
/// if the capacities of the two operands differ. This is deliberate —
/// closure rows in this workspace always share a universe, and silent
/// truncation would mask bugs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty bitset with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// The number of elements this set can hold (the universe size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `i`, returning whether it was present.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership of `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// The backing words, least-significant bit first: element `i` is
    /// bit `i % 64` of word `i / 64`. Exposed so batch evaluators can
    /// run word-parallel set algebra directly on the storage.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `self |= other`. Returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Whether `self` and `other` share no elements.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset whose capacity is one past the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert!(!s.insert(64), "second insert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 0, 199, 63, 64, 65] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(3);
        assert!(!a.union_with(&b), "no change when already a superset");
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(a.contains(99));
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        a.insert(1);
        b.insert(1);
        b.insert(2);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = BitSet::new(64);
        c.insert(3);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn difference_and_intersection() {
        let mut a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [2usize, 3].into_iter().collect();
        let mut a2 = a.clone();
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        a2.intersect_with(&b);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(9);
        a.union_with(&b);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [4usize, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert!(s.contains(4) && s.contains(7));
    }
}

//! Linear extensions of partial orders.
//!
//! The SYNC limit set is defined through the existence of a numbering
//! `T : M -> N` linearizing the message precedence relation (§3.4), and
//! several proofs in the paper construct runs by picking particular
//! linearizations (Figure 7). This module provides existence, exhaustive
//! enumeration (for small posets, used by the exhaustive-run experiments),
//! counting, and seeded random sampling.

use crate::poset::Poset;

/// Enumerates **all** linear extensions of `p`, invoking `visit` for each.
///
/// Returns the number of extensions visited. If `visit` returns `false`
/// the enumeration stops early (the count still includes that extension).
///
/// This is the classic backtracking over minimal elements; exponential in
/// general, so only call it on small posets (the experiments use n ≤ 8).
pub fn for_each_extension<F>(p: &Poset, mut visit: F) -> usize
where
    F: FnMut(&[usize]) -> bool,
{
    let n = p.len();
    // indeg in the cover graph
    let covers = if n == 0 { Vec::new() } else { p.covers() };
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (u, v) in covers {
        succ[u].push(v);
        indeg[v] += 1;
    }
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut count = 0usize;
    let mut stop = false;
    // The recursion's shared mutable state, passed explicitly rather
    // than bundled — each argument is touched on every frame.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        n: usize,
        succ: &[Vec<usize>],
        indeg: &mut [usize],
        placed: &mut [bool],
        prefix: &mut Vec<usize>,
        count: &mut usize,
        stop: &mut bool,
        visit: &mut dyn FnMut(&[usize]) -> bool,
    ) {
        if *stop {
            return;
        }
        if prefix.len() == n {
            *count += 1;
            if !visit(prefix) {
                *stop = true;
            }
            return;
        }
        for v in 0..n {
            if !placed[v] && indeg[v] == 0 {
                placed[v] = true;
                prefix.push(v);
                for &w in &succ[v] {
                    indeg[w] -= 1;
                }
                rec(n, succ, indeg, placed, prefix, count, stop, visit);
                for &w in &succ[v] {
                    indeg[w] += 1;
                }
                prefix.pop();
                placed[v] = false;
                if *stop {
                    return;
                }
            }
        }
    }
    rec(
        n,
        &succ,
        &mut indeg,
        &mut placed,
        &mut prefix,
        &mut count,
        &mut stop,
        &mut visit,
    );
    count
}

/// Counts the linear extensions of `p` (exponential; small posets only).
pub fn count_extensions(p: &Poset) -> usize {
    for_each_extension(p, |_| true)
}

/// Collects all linear extensions (small posets only).
pub fn all_extensions(p: &Poset) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for_each_extension(p, |ext| {
        out.push(ext.to_vec());
        true
    });
    out
}

/// Draws a random linear extension using a caller-supplied choice
/// function: at each step `choose(k)` must return an index `< k` picking
/// among the currently-available minimal elements (sorted ascending).
///
/// Using a closure keeps this crate free of a `rand` dependency while
/// letting callers plug in any RNG. Note this samples uniformly over
/// *greedy choices*, not uniformly over extensions — good enough for
/// workload generation, and deterministic under a seeded RNG.
pub fn random_extension_with<F>(p: &Poset, mut choose: F) -> Vec<usize>
where
    F: FnMut(usize) -> usize,
{
    let n = p.len();
    let covers = if n == 0 { Vec::new() } else { p.covers() };
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (u, v) in covers {
        succ[u].push(v);
        indeg[v] += 1;
    }
    let mut avail: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while !avail.is_empty() {
        let i = choose(avail.len());
        assert!(
            i < avail.len(),
            "choice function returned out-of-range index"
        );
        let v = avail.swap_remove(i);
        out.push(v);
        for &w in &succ[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                avail.push(w);
            }
        }
        avail.sort_unstable();
    }
    assert_eq!(out.len(), n, "poset must be acyclic");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        Poset::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn diamond_has_two_extensions() {
        assert_eq!(count_extensions(&diamond()), 2);
        let exts = all_extensions(&diamond());
        assert!(exts.contains(&vec![0, 1, 2, 3]));
        assert!(exts.contains(&vec![0, 2, 1, 3]));
    }

    #[test]
    fn antichain_has_factorial_extensions() {
        let p = Poset::from_pairs(4, []).unwrap();
        assert_eq!(count_extensions(&p), 24);
    }

    #[test]
    fn chain_has_one_extension() {
        let p = Poset::from_pairs(5, (0..4).map(|i| (i, i + 1))).unwrap();
        assert_eq!(count_extensions(&p), 1);
        assert_eq!(all_extensions(&p)[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_extension_respects_order() {
        let p = Poset::from_pairs(5, [(0, 2), (1, 2), (2, 4), (3, 4)]).unwrap();
        for ext in all_extensions(&p) {
            let mut pos = [0usize; 5];
            for (i, &v) in ext.iter().enumerate() {
                pos[v] = i;
            }
            for (u, v) in p.relation_pairs() {
                assert!(pos[u] < pos[v], "extension {ext:?} violates {u} < {v}");
            }
        }
    }

    #[test]
    fn early_stop() {
        let p = Poset::from_pairs(4, []).unwrap();
        let mut seen = 0;
        for_each_extension(&p, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn random_extension_deterministic_choices() {
        let p = diamond();
        // always choose the last available element
        let ext = random_extension_with(&p, |k| k - 1);
        assert_eq!(ext.len(), 4);
        let mut pos = [0usize; 4];
        for (i, &v) in ext.iter().enumerate() {
            pos[v] = i;
        }
        for (u, v) in p.relation_pairs() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn empty_poset_extension() {
        let p = Poset::from_pairs(0, []).unwrap();
        assert_eq!(count_extensions(&p), 1, "the empty sequence");
        assert!(random_extension_with(&p, |_| 0).is_empty());
    }
}

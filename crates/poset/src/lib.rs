//! Partial-order substrate for the `msgorder` workspace.
//!
//! The message-ordering theory of Murty & Garg is stated entirely in terms
//! of finite partial orders ("runs are decomposed posets"). This crate
//! provides the machinery every other crate builds on:
//!
//! - [`BitSet`] — dense fixed-capacity bitsets used for closure rows.
//! - [`DiGraph`] — a small adjacency-list directed multigraph with cycle
//!   detection, topological sorting and strongly-connected components.
//! - [`TransitiveClosure`] — reachability matrices, built from a graph.
//! - [`Poset`] — a validated strict partial order with comparability
//!   queries, covers, down-sets, minimal/maximal elements.
//! - [`linear`] — linear extensions: existence, enumeration, counting and
//!   uniform-ish random sampling.
//! - [`VectorClock`] — classic Fidge/Mattern clocks, used by the causal
//!   ordering protocols and tested against explicit happened-before.
//!
//! # Example
//!
//! ```
//! use msgorder_poset::Poset;
//!
//! # fn main() -> Result<(), msgorder_poset::PosetError> {
//! // a < b, a < c, b < d, c < d  (a diamond)
//! let p = Poset::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)])?;
//! assert!(p.lt(0, 3));           // transitivity
//! assert!(!p.comparable(1, 2));  // b and c are concurrent
//! assert_eq!(p.minimal_elements(), vec![0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod closure;
mod error;
mod graph;
pub mod ideals;
pub mod linear;
mod poset;
mod vclock;
pub mod words;

pub use bitset::BitSet;
pub use closure::TransitiveClosure;
pub use error::PosetError;
pub use graph::{DiGraph, EdgeId, NodeId};
pub use poset::Poset;
pub use vclock::VectorClock;

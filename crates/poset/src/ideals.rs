//! Order ideals (down-sets), chains and antichains.
//!
//! The lattice of order ideals of a run's event poset is exactly the
//! lattice of *consistent cuts* — the object the §2 related work
//! (snapshots, checkpointing, deadlock detection) computes over. This
//! module provides ideal enumeration plus the classic chain/antichain
//! quantities (height via longest path, width via Dilworth's theorem
//! through bipartite matching).

use crate::bitset::BitSet;
use crate::poset::Poset;

/// Enumerates every order ideal of `p`, calling `visit` for each
/// (including the empty and full ideals). Returns the number visited;
/// stops early if `visit` returns `false`.
///
/// Exponential in the poset's width — use on small posets or cap via the
/// visitor. Ideals are visited in increasing-size layers.
pub fn for_each_ideal<F>(p: &Poset, mut visit: F) -> usize
where
    F: FnMut(&BitSet) -> bool,
{
    use std::collections::{BTreeSet, VecDeque};
    let n = p.len();
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut queue: VecDeque<BitSet> = VecDeque::new();
    let empty = BitSet::new(n);
    let key = |s: &BitSet| s.iter().map(|i| i as u64).collect::<Vec<u64>>();
    seen.insert(key(&empty));
    queue.push_back(empty);
    let mut count = 0;
    while let Some(ideal) = queue.pop_front() {
        count += 1;
        if !visit(&ideal) {
            return count;
        }
        // extend by any minimal element of the complement whose
        // predecessors are all inside
        for v in 0..n {
            if ideal.contains(v) {
                continue;
            }
            let ready = p.down_set(v).is_subset(&ideal);
            if ready {
                let mut next = ideal.clone();
                next.insert(v);
                let k = key(&next);
                if seen.insert(k) {
                    queue.push_back(next);
                }
            }
        }
    }
    count
}

/// The number of order ideals of `p` (exponential; small posets only).
pub fn ideal_count(p: &Poset) -> usize {
    for_each_ideal(p, |_| true)
}

/// The height of the poset: the number of elements in a longest chain.
pub fn height(p: &Poset) -> usize {
    let n = p.len();
    if n == 0 {
        return 0;
    }
    // longest-path DP over a topological order of the covers
    let order = p.a_linear_extension();
    let mut depth = vec![1usize; n];
    for &v in &order {
        for u in 0..n {
            if p.lt(u, v) {
                depth[v] = depth[v].max(depth[u] + 1);
            }
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

/// The width of the poset: the size of a largest antichain.
///
/// By Dilworth's theorem this equals the minimum number of chains
/// covering the poset, computed as `n - max_matching` in the bipartite
/// comparability graph (simple augmenting-path matching — posets here
/// are small).
pub fn width(p: &Poset) -> usize {
    let n = p.len();
    if n == 0 {
        return 0;
    }
    // bipartite graph: left copy u -> right copy v iff u < v
    let mut match_right: Vec<Option<usize>> = vec![None; n];

    fn augment(
        p: &Poset,
        u: usize,
        n: usize,
        visited: &mut [bool],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for v in 0..n {
            if p.lt(u, v) && !visited[v] {
                visited[v] = true;
                let free = match match_right[v] {
                    None => true,
                    Some(w) => augment(p, w, n, visited, match_right),
                };
                if free {
                    match_right[v] = Some(u);
                    return true;
                }
            }
        }
        false
    }

    let mut matching = 0;
    for u in 0..n {
        let mut visited = vec![false; n];
        if augment(p, u, n, &mut visited, &mut match_right) {
            matching += 1;
        }
    }
    n - matching
}

/// One maximum antichain (of size [`width`]).
///
/// Derived from the minimum chain cover via the standard König-style
/// construction is fiddly; since our posets are small we simply search
/// greedily over the comparability structure and fall back to brute
/// force on the (rare) miss.
pub fn max_antichain(p: &Poset) -> BitSet {
    let n = p.len();
    let target = width(p);
    // greedy: sort by number of comparabilities, add if still antichain
    let mut order: Vec<usize> = (0..n).collect();
    let comp_degree = |v: usize| (0..n).filter(|&u| u != v && p.comparable(u, v)).count();
    order.sort_by_key(|&v| comp_degree(v));
    let mut set = BitSet::new(n);
    for v in order {
        let ok = set.iter().all(|u| !p.comparable(u, v));
        if ok {
            set.insert(v);
        }
    }
    if set.len() == target {
        return set;
    }
    // brute force over subsets (n is small when this path is taken)
    assert!(n <= 20, "brute-force antichain search needs a small poset");
    let mut best = BitSet::new(n);
    for mask in 0u32..(1 << n) {
        let cand: BitSet =
            (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .fold(BitSet::new(n), |mut s, i| {
                    s.insert(i);
                    s
                });
        if cand.len() > best.len() && p.is_antichain(&cand) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        Poset::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn diamond_ideals() {
        // ideals: {}, {0}, {0,1}, {0,2}, {0,1,2}, {0,1,2,3} = 6
        assert_eq!(ideal_count(&diamond()), 6);
    }

    #[test]
    fn chain_ideals_linear() {
        let p = Poset::from_pairs(5, (0..4).map(|i| (i, i + 1))).unwrap();
        assert_eq!(ideal_count(&p), 6, "chain of n has n+1 ideals");
    }

    #[test]
    fn antichain_ideals_exponential() {
        let p = Poset::from_pairs(4, []).unwrap();
        assert_eq!(ideal_count(&p), 16, "2^n for an antichain");
    }

    #[test]
    fn every_visited_set_is_an_ideal() {
        let p = diamond();
        for_each_ideal(&p, |ideal| {
            assert!(p.is_order_ideal(ideal));
            true
        });
    }

    #[test]
    fn early_stop_respected() {
        let p = Poset::from_pairs(6, []).unwrap();
        let mut seen = 0;
        for_each_ideal(&p, |_| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn height_and_width_diamond() {
        let p = diamond();
        assert_eq!(height(&p), 3); // 0 < 1 < 3
        assert_eq!(width(&p), 2); // {1, 2}
    }

    #[test]
    fn height_and_width_extremes() {
        let chain = Poset::from_pairs(5, (0..4).map(|i| (i, i + 1))).unwrap();
        assert_eq!(height(&chain), 5);
        assert_eq!(width(&chain), 1);
        let anti = Poset::from_pairs(5, []).unwrap();
        assert_eq!(height(&anti), 1);
        assert_eq!(width(&anti), 5);
    }

    #[test]
    fn max_antichain_has_width_size() {
        for p in [
            diamond(),
            Poset::from_pairs(6, [(0, 1), (2, 3), (4, 5), (1, 3)]).unwrap(),
            Poset::from_pairs(5, []).unwrap(),
            Poset::from_pairs(5, (0..4).map(|i| (i, i + 1))).unwrap(),
        ] {
            let ac = max_antichain(&p);
            assert!(p.is_antichain(&ac));
            assert_eq!(ac.len(), width(&p));
        }
    }

    #[test]
    fn mirsky_bound_height_times_width() {
        // n <= height * width for any poset (Mirsky/Dilworth corollary)
        let p = Poset::from_pairs(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert!(p.len() <= height(&p) * width(&p));
    }

    #[test]
    fn empty_poset_quantities() {
        let p = Poset::from_pairs(0, []).unwrap();
        assert_eq!(ideal_count(&p), 1);
        assert_eq!(height(&p), 0);
        assert_eq!(width(&p), 0);
        assert_eq!(max_antichain(&p).len(), 0);
    }
}

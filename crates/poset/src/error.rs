//! Error type for partial-order construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating partial orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosetError {
    /// The supplied relation is cyclic and therefore not a strict partial
    /// order. Carries one witness cycle as a sequence of node indices
    /// (first node repeated at the end is *not* included).
    Cyclic {
        /// The nodes of one offending cycle, in order.
        cycle: Vec<usize>,
    },
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the universe.
        len: usize,
    },
}

impl fmt::Display for PosetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosetError::Cyclic { cycle } => {
                write!(f, "relation is cyclic (witness cycle: {cycle:?})")
            }
            PosetError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for universe of size {len}")
            }
        }
    }
}

impl Error for PosetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cycle() {
        let e = PosetError::Cyclic { cycle: vec![1, 2] };
        assert!(e.to_string().contains("cyclic"));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn display_mentions_range() {
        let e = PosetError::NodeOutOfRange { node: 9, len: 4 };
        assert!(e.to_string().contains("out of range"));
    }
}

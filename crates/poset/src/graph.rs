//! A small directed multigraph with the classic structural algorithms.
//!
//! Nodes are dense indices `0..n`; parallel edges and self-loops are
//! allowed (predicate graphs in the paper are multigraphs — Definition
//! 4.2 explicitly says "multi-graph").

use crate::error::PosetError;

/// Index of a node in a [`DiGraph`].
pub type NodeId = usize;
/// Index of an edge in a [`DiGraph`] (position in insertion order).
pub type EdgeId = usize;

/// A directed multigraph over nodes `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    inc: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted separately).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `u -> v` and returns its id.
    ///
    /// # Errors
    /// Returns [`PosetError::NodeOutOfRange`] if `u` or `v` is not a node.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, PosetError> {
        for &x in &[u, v] {
            if x >= self.n {
                return Err(PosetError::NodeOutOfRange {
                    node: x,
                    len: self.n,
                });
            }
        }
        let id = self.edges.len();
        self.edges.push((u, v));
        self.out[u].push(id);
        self.inc[v].push(id);
        Ok(id)
    }

    /// The endpoints `(source, target)` of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is not a valid edge id.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// All edges as `(source, target)` pairs, in insertion order.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Ids of edges leaving `u`.
    pub fn out_edges(&self, u: NodeId) -> &[EdgeId] {
        &self.out[u]
    }

    /// Ids of edges entering `v`.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.inc[v]
    }

    /// Successor nodes of `u` (may contain duplicates for parallel edges).
    pub fn successors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[u].iter().map(move |&e| self.edges[e].1)
    }

    /// Predecessor nodes of `v` (may contain duplicates for parallel edges).
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inc[v].iter().map(move |&e| self.edges[e].0)
    }

    /// A topological order of the nodes, or a witness cycle if none exists.
    ///
    /// Kahn's algorithm; ties are broken by node index so the result is
    /// deterministic.
    ///
    /// # Errors
    /// Returns [`PosetError::Cyclic`] with a witness cycle when the graph
    /// has a directed cycle.
    pub fn topo_sort(&self) -> Result<Vec<NodeId>, PosetError> {
        let mut indeg: Vec<usize> = vec![0; self.n];
        for &(_, v) in &self.edges {
            indeg[v] += 1;
        }
        // Min-heap behaviour via sorted insertion into a BinaryHeap of Reverse.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ready: BinaryHeap<Reverse<NodeId>> = (0..self.n)
            .filter(|&v| indeg[v] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(Reverse(u)) = ready.pop() {
            order.push(u);
            for v in self.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(Reverse(v));
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(PosetError::Cyclic {
                cycle: self
                    .find_cycle()
                    .expect("cycle must exist when topo sort fails"),
            })
        }
    }

    /// Whether the graph contains a directed cycle (self-loops count).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Finds one elementary directed cycle, as a node sequence
    /// `[v0, v1, ..., vk]` with an implicit edge `vk -> v0`.
    ///
    /// Returns `None` for acyclic graphs. Iterative DFS with colors.
    pub fn find_cycle(&self) -> Option<Vec<NodeId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.n];
        let mut parent: Vec<Option<NodeId>> = vec![None; self.n];
        for root in 0..self.n {
            if color[root] != Color::White {
                continue;
            }
            // stack of (node, next out-edge position)
            let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
            color[root] = Color::Gray;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < self.out[u].len() {
                    let e = self.out[u][*next];
                    *next += 1;
                    let v = self.edges[e].1;
                    match color[v] {
                        Color::Gray => {
                            // Found a cycle: walk back from u to v via parents.
                            let mut cyc = vec![u];
                            let mut cur = u;
                            while cur != v {
                                cur = parent[cur].expect("gray node must have parent on stack");
                                cyc.push(cur);
                            }
                            cyc.reverse();
                            return Some(cyc);
                        }
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = Some(u);
                            stack.push((v, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Strongly connected components (Tarjan, iterative).
    ///
    /// Returns the components in reverse topological order of the
    /// condensation (standard Tarjan output order); every node appears in
    /// exactly one component.
    pub fn sccs(&self) -> Vec<Vec<NodeId>> {
        const UNSET: usize = usize::MAX;
        let n = self.n;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<NodeId>> = Vec::new();

        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            // Iterative Tarjan: call stack of (node, next successor pos).
            let mut call: Vec<(NodeId, usize)> = vec![(root, 0)];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (u, ref mut pos)) = call.last_mut() {
                if *pos < self.out[u].len() {
                    let e = self.out[u][*pos];
                    *pos += 1;
                    let v = self.edges[e].1;
                    if index[v] == UNSET {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    /// The subgraph induced by `keep`, with nodes renumbered densely.
    ///
    /// Returns the new graph and the mapping from old node id to new.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiGraph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n];
        for (new, &old) in keep.iter().enumerate() {
            map[old] = Some(new);
        }
        let mut g = DiGraph::new(keep.len());
        for &(u, v) in &self.edges {
            if let (Some(nu), Some(nv)) = (map[u], map[v]) {
                g.add_edge(nu, nv).expect("renumbered nodes are in range");
            }
        }
        (g, map)
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.n);
        for &(u, v) in &self.edges {
            g.add_edge(v, u).expect("same node universe");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn topo_sort_diamond() {
        let order = diamond().topo_sort().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let mut g = diamond();
        g.add_edge(3, 0).unwrap();
        match g.topo_sort() {
            Err(PosetError::Cyclic { cycle }) => {
                assert!(!cycle.is_empty());
                // verify the witness really is a cycle
                for w in cycle.windows(2) {
                    assert!(g.successors(w[0]).any(|s| s == w[1]));
                }
                let (&first, &last) = (cycle.first().unwrap(), cycle.last().unwrap());
                assert!(g.successors(last).any(|s| s == first));
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1).unwrap();
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle().unwrap(), vec![1]);
    }

    #[test]
    fn acyclic_has_no_cycle() {
        assert!(!diamond().has_cycle());
        assert!(diamond().find_cycle().is_none());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = DiGraph::new(2);
        let e1 = g.add_edge(0, 1).unwrap();
        let e2 = g.add_edge(0, 1).unwrap();
        assert_ne!(e1, e2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(0).count(), 2);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.add_edge(0, 2),
            Err(PosetError::NodeOutOfRange { node: 2, len: 2 })
        ));
    }

    #[test]
    fn sccs_of_two_cycles() {
        // 0 <-> 1, 2 <-> 3, 1 -> 2
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut comps: Vec<Vec<NodeId>> = g
            .sccs()
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn sccs_singletons_for_dag() {
        let comps = diamond().sccs();
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[1, 3]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1); // only 1 -> 3 survives
        assert_eq!(map[1], Some(0));
        assert_eq!(map[3], Some(1));
        assert_eq!(map[0], None);
        assert_eq!(sub.endpoints(0), (0, 1));
    }

    #[test]
    fn reversed_flips_edges() {
        let g = diamond().reversed();
        assert!(g.successors(3).any(|v| v == 1));
        assert!(g.successors(1).any(|v| v == 0));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn predecessors_and_in_edges() {
        let g = diamond();
        let preds: Vec<_> = g.predecessors(3).collect();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&1) && preds.contains(&2));
        assert_eq!(g.in_edges(0).len(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(g.topo_sort().unwrap(), Vec::<usize>::new());
        assert!(!g.has_cycle());
        assert!(g.sccs().is_empty());
    }
}

//! Transitive closure and transitive reduction.

use crate::bitset::BitSet;
use crate::graph::{DiGraph, NodeId};

/// The reachability matrix of a directed graph.
///
/// `reaches(u, v)` answers "is there a non-empty directed path from `u` to
/// `v`?" — i.e. this is the closure of the *strict* relation: a node does
/// not reach itself unless it lies on a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitiveClosure {
    n: usize,
    rows: Vec<BitSet>,
    /// Transposed rows: `cols[v]` is the ancestor set of `v`. Kept
    /// alongside `rows` so [`TransitiveClosure::ancestors`] is a lookup
    /// instead of an `O(n)` column scan.
    cols: Vec<BitSet>,
}

impl TransitiveClosure {
    /// Computes the closure of `g`.
    ///
    /// Uses the SCC condensation so cyclic inputs are handled correctly
    /// (every node in a non-trivial SCC reaches itself), then propagates
    /// row unions in reverse topological order — `O(n * m / 64)` words.
    pub fn of_graph(g: &DiGraph) -> Self {
        let n = g.node_count();
        let comps = g.sccs();
        // Map node -> component index.
        let mut comp_of = vec![0usize; n];
        for (ci, comp) in comps.iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        let c = comps.len();
        // Condensation edges + whether a component is cyclic.
        let mut cyclic = vec![false; c];
        for (ci, comp) in comps.iter().enumerate() {
            if comp.len() > 1 {
                cyclic[ci] = true;
            }
        }
        let mut cedges: Vec<(usize, usize)> = Vec::new();
        for &(u, v) in g.edges() {
            let (cu, cv) = (comp_of[u], comp_of[v]);
            if cu == cv {
                cyclic[cu] = true; // covers self-loops
            } else {
                cedges.push((cu, cv));
            }
        }
        // Tarjan emits components in reverse topological order, i.e.
        // comps[0] has no successors outside itself. Process in that order
        // so successors' rows are complete before predecessors use them.
        let mut crows: Vec<BitSet> = (0..c).map(|_| BitSet::new(c)).collect();
        let mut csucc: Vec<Vec<usize>> = vec![Vec::new(); c];
        for &(cu, cv) in &cedges {
            csucc[cu].push(cv);
        }
        for ci in 0..c {
            if cyclic[ci] {
                crows[ci].insert(ci);
            }
            // Take the successor list instead of cloning it; each entry
            // is visited exactly once.
            let succs = std::mem::take(&mut csucc[ci]);
            for cv in succs {
                crows[ci].insert(cv);
                let (head, tail) = crows.split_at_mut(ci.max(cv));
                // Union the successor's row into ours without double borrow.
                if cv < ci {
                    tail[0].union_with(&head[cv]);
                } else {
                    head[ci].union_with(&tail[0]);
                }
            }
        }
        // Expand component rows back to node rows, filling the transposed
        // matrix in the same pass.
        let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        let mut cols: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for u in 0..n {
            let cu = comp_of[u];
            for cv in crows[cu].iter() {
                for &v in &comps[cv] {
                    rows[u].insert(v);
                    cols[v].insert(u);
                }
            }
        }
        TransitiveClosure { n, rows, cols }
    }

    /// Builds a closure directly from `n` nodes and an edge list.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v) in pairs {
            g.add_edge(u, v).expect("edge endpoints must be < n");
        }
        Self::of_graph(&g)
    }

    /// Number of nodes in the universe.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether there is a non-empty path `u -> ... -> v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.rows[u].contains(v)
    }

    /// Whether the underlying relation is a strict partial order, i.e.
    /// irreflexive after closure (no node lies on a cycle).
    pub fn is_strict_order(&self) -> bool {
        (0..self.n).all(|v| !self.rows[v].contains(v))
    }

    /// The full descendant set of `u` (everything reachable from it).
    pub fn descendants(&self, u: NodeId) -> &BitSet {
        &self.rows[u]
    }

    /// The ancestor set of `v` (everything that reaches it). `O(1)` —
    /// served from the transposed matrix built at construction.
    pub fn ancestors(&self, v: NodeId) -> &BitSet {
        &self.cols[v]
    }

    /// All ordered pairs `(u, v)` with `u` reaching `v`.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in self.rows[u].iter() {
                out.push((u, v));
            }
        }
        out
    }

    /// The transitive reduction (Hasse diagram) of an **acyclic** closure:
    /// the unique minimal edge set with the same closure.
    ///
    /// `u -> v` is a cover iff `u` reaches `v` and no `w` has
    /// `u -> w -> v`.
    ///
    /// # Panics
    /// Panics if the relation is cyclic (a Hasse diagram is only defined
    /// for partial orders).
    pub fn reduction(&self) -> Vec<(NodeId, NodeId)> {
        assert!(
            self.is_strict_order(),
            "transitive reduction requires an acyclic relation"
        );
        // Word-parallel cover extraction: v is mediated from u exactly
        // when some w in rows[u] reaches v, so
        //   covers_u = rows[u] & !(⋃_{w ∈ rows[u]} rows[w]).
        // Acyclicity makes the usual `w != v` guard unnecessary: v never
        // lies in its own row, so unioning rows[v] cannot mark v itself.
        let mut covers = Vec::new();
        let mut mediated = BitSet::new(self.n);
        for u in 0..self.n {
            mediated.clear();
            for w in self.rows[u].iter() {
                mediated.union_with(&self.rows[w]);
            }
            let mut row_covers = self.rows[u].clone();
            row_covers.difference_with(&mediated);
            for v in row_covers.iter() {
                covers.push((u, v));
            }
        }
        covers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_closure() {
        let c = TransitiveClosure::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(c.reaches(0, 3));
        assert!(c.reaches(1, 3));
        assert!(!c.reaches(3, 0));
        assert!(!c.reaches(0, 0));
        assert!(c.is_strict_order());
    }

    #[test]
    fn cycle_closure_is_reflexive_on_cycle() {
        let c = TransitiveClosure::from_pairs(3, [(0, 1), (1, 0)]);
        assert!(c.reaches(0, 0));
        assert!(c.reaches(1, 1));
        assert!(!c.reaches(2, 2));
        assert!(!c.is_strict_order());
    }

    #[test]
    fn self_loop_detected() {
        let c = TransitiveClosure::from_pairs(2, [(0, 0)]);
        assert!(c.reaches(0, 0));
        assert!(!c.is_strict_order());
    }

    #[test]
    fn cycle_reaching_out() {
        // 0 <-> 1 -> 2
        let c = TransitiveClosure::from_pairs(3, [(0, 1), (1, 0), (1, 2)]);
        assert!(c.reaches(0, 2));
        assert!(c.reaches(1, 2));
        assert!(!c.reaches(2, 0));
    }

    #[test]
    fn ancestors_and_descendants() {
        let c = TransitiveClosure::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d0: Vec<_> = c.descendants(0).iter().collect();
        assert_eq!(d0, vec![1, 2, 3]);
        let a3: Vec<_> = c.ancestors(3).iter().collect();
        assert_eq!(a3, vec![0, 1, 2]);
    }

    #[test]
    fn reduction_of_diamond_with_shortcut() {
        // diamond plus the redundant edge 0 -> 3
        let c = TransitiveClosure::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let mut red = c.reduction();
        red.sort_unstable();
        assert_eq!(red, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reduction_closure_roundtrip() {
        let pairs = [(0, 1), (1, 2), (0, 2), (2, 4), (1, 4), (3, 4)];
        let c = TransitiveClosure::from_pairs(5, pairs);
        let red = c.reduction();
        let c2 = TransitiveClosure::from_pairs(5, red.iter().copied());
        assert_eq!(c.pairs(), c2.pairs());
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn reduction_panics_on_cycle() {
        let c = TransitiveClosure::from_pairs(2, [(0, 1), (1, 0)]);
        let _ = c.reduction();
    }

    #[test]
    fn empty_universe() {
        let c = TransitiveClosure::from_pairs(0, []);
        assert!(c.is_empty());
        assert!(c.is_strict_order());
        assert!(c.pairs().is_empty());
    }

    #[test]
    fn pairs_enumerates_all() {
        let c = TransitiveClosure::from_pairs(3, [(0, 1), (1, 2)]);
        let mut p = c.pairs();
        p.sort_unstable();
        assert_eq!(p, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn large_chain_scales() {
        let n = 500;
        let c = TransitiveClosure::from_pairs(n, (0..n - 1).map(|i| (i, i + 1)));
        assert!(c.reaches(0, n - 1));
        assert!(c.is_strict_order());
        assert_eq!(c.descendants(0).len(), n - 1);
    }
}

//! Word-width clock kernels over raw `u64` slabs.
//!
//! Every causality primitive the hot path needs — component-wise max,
//! `≤` on all components, strict happened-before — expressed directly
//! on `&[u64]` slices so callers holding clocks in a flat slab
//! (`msgorder-runs`' `StreamingRun`, the protocol tag buffers) can
//! compare and merge without materializing a `VectorClock`. No kernel
//! allocates; all are branch-light and unrolled four words at a time
//! so the optimizer can keep the comparisons in registers.
//!
//! [`crate::VectorClock`] delegates to these kernels, which keeps a
//! single implementation under test: the property suite checks each
//! kernel against a naive scalar oracle on arbitrary clocks.

/// Component-wise maximum of `dst` and `src`, stored into `dst`
/// (the receive-merge step). No allocation, no temporaries.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn merge_in_place(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "vector clock length mismatch");
    let mut da = dst.chunks_exact_mut(4);
    let mut sa = src.chunks_exact(4);
    for (d, s) in (&mut da).zip(&mut sa) {
        d[0] = d[0].max(s[0]);
        d[1] = d[1].max(s[1]);
        d[2] = d[2].max(s[2]);
        d[3] = d[3].max(s[3]);
    }
    for (d, s) in da.into_remainder().iter_mut().zip(sa.remainder()) {
        *d = (*d).max(*s);
    }
}

/// Whether `a[i] <= b[i]` for every component (the reflexive causal
/// order; equal clocks satisfy it).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn leq(a: &[u64], b: &[u64]) -> bool {
    assert_eq!(a.len(), b.len(), "vector clock length mismatch");
    let mut aa = a.chunks_exact(4);
    let mut bb = b.chunks_exact(4);
    for (x, y) in (&mut aa).zip(&mut bb) {
        // Accumulate the violation mask without early exits: for the
        // short clocks the hot path carries, a predictable straight
        // line beats a branchy scan.
        let bad = (x[0] > y[0]) | (x[1] > y[1]) | (x[2] > y[2]) | (x[3] > y[3]);
        if bad {
            return false;
        }
    }
    aa.remainder()
        .iter()
        .zip(bb.remainder())
        .all(|(x, y)| x <= y)
}

/// Strict happened-before: every component `<=` and at least one `<`
/// (equivalently, `leq` and not equal).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn happened_before(a: &[u64], b: &[u64]) -> bool {
    leq(a, b) && a != b
}

/// The Fidge test specialised to one component: `a` causally precedes
/// any event whose clock `b` already covers `a`'s `p`-th entry. Used by
/// `StreamingRun::before`, where only the sender's component decides.
#[inline]
pub fn component_leq(a: &[u64], b: &[u64], p: usize) -> bool {
    a[p] <= b[p]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_merge(dst: &mut [u64], src: &[u64]) {
        for (a, b) in dst.iter_mut().zip(src) {
            *a = (*a).max(*b);
        }
    }

    fn scalar_leq(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    fn scalar_hb(a: &[u64], b: &[u64]) -> bool {
        scalar_leq(a, b) && a.iter().zip(b).any(|(x, y)| x < y)
    }

    #[test]
    fn empty_slices() {
        let mut d: [u64; 0] = [];
        merge_in_place(&mut d, &[]);
        assert!(leq(&[], &[]));
        assert!(!happened_before(&[], &[]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_length_mismatch_panics() {
        merge_in_place(&mut [0, 0], &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn leq_length_mismatch_panics() {
        let _ = leq(&[0, 0], &[0]);
    }

    proptest! {
        #[test]
        fn merge_matches_scalar_oracle(
            a in proptest::collection::vec(0u64..100, 0..12),
            b in proptest::collection::vec(0u64..100, 0..12),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut fast = a.to_vec();
            merge_in_place(&mut fast, b);
            let mut slow = a.to_vec();
            scalar_merge(&mut slow, b);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn leq_and_hb_match_scalar_oracle(
            a in proptest::collection::vec(0u64..4, 0..12),
            b in proptest::collection::vec(0u64..4, 0..12),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(leq(a, b), scalar_leq(a, b));
            prop_assert_eq!(happened_before(a, b), scalar_hb(a, b));
        }

        #[test]
        fn merge_is_upper_bound(
            a in proptest::collection::vec(0u64..100, 0..12),
            b in proptest::collection::vec(0u64..100, 0..12),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut m = a.to_vec();
            merge_in_place(&mut m, b);
            prop_assert!(leq(a, &m));
            prop_assert!(leq(b, &m));
        }
    }
}

//! Fidge/Mattern vector clocks.
//!
//! The tagged causal-ordering protocols (Raynal–Schiper–Toueg,
//! Schiper–Eggli–Sandoz) piggyback vector or matrix timestamps. The
//! property tests in `msgorder-runs` check that vector-clock comparison
//! agrees with the explicit happened-before relation extracted from
//! simulated runs.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

/// A vector clock over a fixed set of `n` processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Builds a clock from explicit entries.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock tracks zero processes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Increments the component of process `p` (a local event at `p`).
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn tick(&mut self, p: usize) {
        self.entries[p] += 1;
    }

    /// Component-wise maximum with `other` (the receive-merge step).
    /// Works in place — the entry buffer is reused, never reallocated.
    ///
    /// # Panics
    /// Panics if the clocks have different lengths.
    pub fn merge(&mut self, other: &VectorClock) {
        crate::words::merge_in_place(&mut self.entries, &other.entries);
    }

    /// The causal join (least upper bound), like [`merge`](Self::merge)
    /// but tolerant of mismatched widths: when `other` is wider, `self`
    /// grows to cover it; when the widths already match, the merge is
    /// purely in place and never touches the allocator.
    pub fn join(&mut self, other: &VectorClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        let n = other.entries.len();
        crate::words::merge_in_place(&mut self.entries[..n], &other.entries);
    }

    /// `self` happened-before `other`: every component `<=` and at least
    /// one `<`.
    ///
    /// # Panics
    /// Panics if the clocks have different lengths.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        crate::words::happened_before(&self.entries, &other.entries)
    }

    /// `self <= other` component-wise (the reflexive causal order).
    ///
    /// # Panics
    /// Panics if the clocks have different lengths.
    pub fn leq(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len(), "vector clock length mismatch");
        crate::words::leq(&self.entries, &other.entries)
    }

    /// Whether the two clocks are concurrent (neither happened before the
    /// other and they are unequal).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self != other && !self.happened_before(other) && !other.happened_before(self)
    }

    /// The partial-order comparison, `None` when concurrent.
    pub fn partial_cmp_causal(&self, other: &VectorClock) -> Option<Ordering> {
        if self == other {
            Some(Ordering::Equal)
        } else if self.happened_before(other) {
            Some(Ordering::Less)
        } else if other.happened_before(self) {
            Some(Ordering::Greater)
        } else {
            None
        }
    }

    /// Raw entries.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Serialized width in bytes, used for tag-overhead accounting in the
    /// protocol experiments (`8 * n`).
    pub fn byte_width(&self) -> usize {
        self.entries.len() * std::mem::size_of::<u64>()
    }
}

impl Index<usize> for VectorClock {
    type Output = u64;

    fn index(&self, p: usize) -> &u64 {
        &self.entries[p]
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_index() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        c.tick(1);
        c.tick(2);
        assert_eq!(c[0], 0);
        assert_eq!(c[1], 2);
        assert_eq!(c[2], 1);
    }

    #[test]
    fn happened_before_strict() {
        let a = VectorClock::from_entries(vec![1, 0, 0]);
        let b = VectorClock::from_entries(vec![1, 1, 0]);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert!(!a.happened_before(&a), "irreflexive");
    }

    #[test]
    fn concurrency() {
        let a = VectorClock::from_entries(vec![1, 0]);
        let b = VectorClock::from_entries(vec![0, 1]);
        assert!(a.concurrent(&b));
        assert_eq!(a.partial_cmp_causal(&b), None);
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorClock::from_entries(vec![3, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 4, 2]);
        a.merge(&b);
        assert_eq!(a.entries(), &[3, 4, 5]);
    }

    #[test]
    fn merge_and_join_work_in_place_on_matching_widths() {
        let mut a = VectorClock::from_entries(vec![3, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 4, 2]);
        let buf = a.entries().as_ptr();
        a.merge(&b);
        assert_eq!(a.entries(), &[3, 4, 5]);
        assert_eq!(a.entries().as_ptr(), buf, "merge must reuse the buffer");
        a.join(&b);
        assert_eq!(a.entries(), &[3, 4, 5]);
        assert_eq!(a.entries().as_ptr(), buf, "join must reuse the buffer");
    }

    #[test]
    fn join_widens_to_the_larger_clock() {
        let mut a = VectorClock::from_entries(vec![7]);
        let b = VectorClock::from_entries(vec![1, 4, 2]);
        a.join(&b);
        assert_eq!(a.entries(), &[7, 4, 2]);
        let mut c = VectorClock::from_entries(vec![1, 1, 1]);
        c.join(&VectorClock::from_entries(vec![5]));
        assert_eq!(c.entries(), &[5, 1, 1]);
    }

    #[test]
    fn leq_is_reflexive_and_orders() {
        let a = VectorClock::from_entries(vec![1, 1]);
        let b = VectorClock::from_entries(vec![2, 1]);
        assert!(a.leq(&a));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn partial_cmp_orders() {
        let a = VectorClock::from_entries(vec![1, 1]);
        let b = VectorClock::from_entries(vec![2, 1]);
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&a), Some(Ordering::Equal));
    }

    #[test]
    fn message_passing_scenario() {
        // p0 ticks, sends to p1; p1 merges + ticks. p1's clock must be
        // causally after p0's send clock.
        let mut p0 = VectorClock::new(2);
        p0.tick(0); // send event at p0
        let tag = p0.clone();
        let mut p1 = VectorClock::new(2);
        p1.merge(&tag);
        p1.tick(1); // deliver event at p1
        assert!(tag.happened_before(&p1));
    }

    #[test]
    fn display_and_bytes() {
        let c = VectorClock::from_entries(vec![1, 2]);
        assert_eq!(c.to_string(), "[1,2]");
        assert_eq!(c.byte_width(), 16);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.happened_before(&b);
    }
}

//! Property tests for the partial-order substrate.

use msgorder_poset::{linear, BitSet, DiGraph, Poset, TransitiveClosure, VectorClock};
use proptest::prelude::*;

fn forward_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..20).prop_map(move |es| {
            es.into_iter()
                .filter(|(u, v)| u < v) // forward ⇒ acyclic
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closure_is_idempotent((n, edges) in forward_edges()) {
        let c1 = TransitiveClosure::from_pairs(n, edges);
        let c2 = TransitiveClosure::from_pairs(n, c1.pairs());
        prop_assert_eq!(c1.pairs(), c2.pairs());
    }

    #[test]
    fn reduction_is_minimal((n, edges) in forward_edges()) {
        let c = TransitiveClosure::from_pairs(n, edges);
        let red = c.reduction();
        // removing any cover changes the closure
        for skip in 0..red.len() {
            let mut fewer = red.clone();
            fewer.remove(skip);
            let c2 = TransitiveClosure::from_pairs(n, fewer);
            prop_assert_ne!(c.pairs(), c2.pairs(), "cover {:?} was redundant", red[skip]);
        }
    }

    #[test]
    fn closure_transitive((n, edges) in forward_edges()) {
        let c = TransitiveClosure::from_pairs(n, edges);
        for a in 0..n {
            for b in 0..n {
                for d in 0..n {
                    if c.reaches(a, b) && c.reaches(b, d) {
                        prop_assert!(c.reaches(a, d));
                    }
                }
            }
        }
    }

    #[test]
    fn poset_comparability_consistent((n, edges) in forward_edges()) {
        let p = Poset::from_pairs(n, edges).unwrap();
        for a in 0..n {
            prop_assert!(!p.lt(a, a), "irreflexive");
            for b in 0..n {
                prop_assert!(!(p.lt(a, b) && p.lt(b, a)), "antisymmetric");
                prop_assert_eq!(p.concurrent(a, b), a != b && !p.comparable(a, b));
            }
        }
    }

    #[test]
    fn height_width_bound((n, edges) in forward_edges()) {
        use msgorder_poset::ideals;
        let p = Poset::from_pairs(n, edges).unwrap();
        prop_assert!(ideals::height(&p) * ideals::width(&p) >= n, "Mirsky/Dilworth bound");
        let ac = ideals::max_antichain(&p);
        prop_assert!(p.is_antichain(&ac));
        prop_assert_eq!(ac.len(), ideals::width(&p));
    }

    #[test]
    fn linear_extension_count_positive((n, edges) in forward_edges()) {
        let p = Poset::from_pairs(n, edges).unwrap();
        if n <= 7 {
            prop_assert!(linear::count_extensions(&p) >= 1);
        } else {
            // at least the deterministic one exists
            prop_assert_eq!(p.a_linear_extension().len(), n);
        }
    }

    #[test]
    fn bitset_union_is_commutative(xs in proptest::collection::vec(0usize..64, 0..20),
                                   ys in proptest::collection::vec(0usize..64, 0..20)) {
        let mk = |items: &[usize]| {
            let mut s = BitSet::new(64);
            for &i in items { s.insert(i); }
            s
        };
        let (a, b) = (mk(&xs), mk(&ys));
        let mut ab = a.clone(); ab.union_with(&b);
        let mut ba = b.clone(); ba.union_with(&a);
        prop_assert_eq!(ab.iter().collect::<Vec<_>>(), ba.iter().collect::<Vec<_>>());
    }

    #[test]
    fn vclock_merge_dominates(xs in proptest::collection::vec(0u64..50, 4),
                              ys in proptest::collection::vec(0u64..50, 4)) {
        let a = VectorClock::from_entries(xs);
        let b = VectorClock::from_entries(ys);
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(!m.happened_before(&a));
        prop_assert!(!m.happened_before(&b));
        prop_assert!(a == m || a.happened_before(&m) || !b.happened_before(&a));
    }

    #[test]
    fn topo_sort_respects_edges((n, edges) in forward_edges()) {
        let mut g = DiGraph::new(n);
        for (u, v) in &edges {
            g.add_edge(*u, *v).unwrap();
        }
        let order = g.topo_sort().unwrap();
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for (u, v) in edges {
            prop_assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn reduction_matches_naive_definition((n, edges) in forward_edges()) {
        // The word-parallel kernel must agree with the textbook cover
        // definition: u ⋖ v iff u < v and no w has u < w < v.
        let c = TransitiveClosure::from_pairs(n, edges);
        let mut naive = Vec::new();
        for (u, v) in c.pairs() {
            let mediated = (0..n).any(|w| w != u && w != v && c.reaches(u, w) && c.reaches(w, v));
            if !mediated {
                naive.push((u, v));
            }
        }
        prop_assert_eq!(c.reduction(), naive);
    }

    #[test]
    fn ancestors_cache_matches_column_scan((n, edges) in forward_edges()) {
        // The transposed-rows cache must agree with scanning the row
        // matrix column-wise.
        let c = TransitiveClosure::from_pairs(n, edges);
        for v in 0..n {
            let cached: Vec<usize> = c.ancestors(v).iter().collect();
            let scanned: Vec<usize> = (0..n).filter(|&u| c.reaches(u, v)).collect();
            prop_assert_eq!(cached, scanned, "ancestors of {}", v);
        }
    }
}

//! Zero-allocation guard for the steady-state simulate path.
//!
//! `World::build` declares every workload message in the arena up
//! front, so once the scheduler heap and the double-buffered journal
//! reach their high-water capacity, dispatching a message — pop the
//! pool, run the protocol, append send/deliver events, journal them —
//! must touch the allocator zero times. The guard snapshots the global
//! allocation counter at every observed run event and requires the
//! entire second half of the event stream to be allocation-free.

use msgorder_runs::{StreamingRun, SystemEvent};
use msgorder_simnet::{
    LatencyModel, Protocol, RunObserver, SimConfig, Simulation, SortedSlab, Workload,
};

#[global_allocator]
static ALLOC: msgorder_testkit::CountingAlloc = msgorder_testkit::CountingAlloc;

/// Tagless protocol: send and deliver immediately (X_async semantics),
/// the baseline for the kernel's own per-message cost.
struct Immediate;

impl Protocol for Immediate {
    fn on_send_request(
        &mut self,
        ctx: &mut msgorder_simnet::Ctx<'_>,
        msg: msgorder_runs::MessageId,
    ) {
        ctx.send_user(msg, Vec::new());
    }
    fn on_user_frame(
        &mut self,
        ctx: &mut msgorder_simnet::Ctx<'_>,
        _from: msgorder_runs::ProcessId,
        msg: msgorder_runs::MessageId,
        _tag: Vec<u8>,
    ) {
        ctx.deliver(msg);
    }
}

/// Records the allocation counter at each run event into a buffer sized
/// ahead of the run, so observing itself never allocates.
struct AllocProbe {
    at: Vec<u64>,
}

impl RunObserver for AllocProbe {
    fn on_event(&mut self, _view: &StreamingRun, _ev: SystemEvent, _index: usize, _t: u64) -> bool {
        assert!(self.at.len() < self.at.capacity(), "probe undersized");
        self.at.push(msgorder_testkit::allocations());
        true
    }
}

fn steady_state_allocs<P: Protocol>(msgs: usize, factory: impl Fn(usize) -> P) -> u64 {
    let n = 3;
    let w = Workload::uniform_random(n, msgs, 7);
    let mut probe = AllocProbe {
        at: Vec::with_capacity(4 * msgs + 1),
    };
    let sim = Simulation::new(
        SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 40 }, 7),
        w,
        factory,
    );
    let r = sim.run_streaming(&mut probe).expect("no protocol bug");
    assert!(r.completed && r.run.is_quiescent(), "run must finish");
    assert_eq!(probe.at.len(), 4 * msgs, "all events observed");
    probe.at[probe.at.len() - 1] - probe.at[probe.at.len() / 2]
}

#[test]
fn async_dispatch_is_allocation_free_at_steady_state() {
    let allocs = steady_state_allocs(24, |_| Immediate);
    assert_eq!(
        allocs, 0,
        "second half of an async run must not allocate per delivered message"
    );
}

#[test]
fn sorted_slab_protocol_state_reaches_steady_state() {
    // A stateful protocol: per-peer counters in a SortedSlab. After the
    // slab has seen every peer, updates are in-place — the steady-state
    // window stays allocation-free even with per-message bookkeeping.
    struct Counting {
        seen: SortedSlab<usize, u64>,
    }
    impl Protocol for Counting {
        fn on_send_request(
            &mut self,
            ctx: &mut msgorder_simnet::Ctx<'_>,
            msg: msgorder_runs::MessageId,
        ) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut msgorder_simnet::Ctx<'_>,
            from: msgorder_runs::ProcessId,
            msg: msgorder_runs::MessageId,
            _tag: Vec<u8>,
        ) {
            *self.seen.get_or_insert_with(from.0, || 0) += 1;
            ctx.deliver(msg);
        }
    }
    let allocs = steady_state_allocs(24, |_| Counting {
        seen: SortedSlab::new(),
    });
    assert_eq!(allocs, 0, "slab-backed state must settle to zero allocs");
}

//! Property tests for the simulator kernel.

use msgorder_runs::{MessageId, ProcessId};
use msgorder_simnet::{explore, Ctx, LatencyModel, Protocol, SimConfig, Simulation, Workload};
use proptest::prelude::*;

#[derive(Clone, Hash)]
struct Immediate;
impl Protocol for Immediate {
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        ctx.send_user(msg, Vec::new());
    }
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, _f: ProcessId, msg: MessageId, _t: Vec<u8>) {
        ctx.deliver(msg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulations are deterministic functions of (workload, seed).
    #[test]
    fn determinism(procs in 2usize..5, msgs in 1usize..15, seed in 0u64..10_000) {
        let cfg = SimConfig::new(procs, LatencyModel::Uniform { lo: 1, hi: 500 }, seed);
        let w = Workload::uniform_random(procs, msgs, seed);
        let a = Simulation::run_uniform(cfg.clone(), w.clone(), |_| Immediate).expect("no bug");
        let b = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(
            a.run.users_view().relation_pairs(),
            b.run.users_view().relation_pairs()
        );
    }

    /// The immediate protocol always drains every workload.
    #[test]
    fn immediate_always_live(procs in 2usize..5, msgs in 0usize..20, seed in 0u64..10_000,
                             lo in 1u64..50, spread in 0u64..500) {
        let cfg = SimConfig::new(procs, LatencyModel::Uniform { lo, hi: lo + spread }, seed);
        let w = if msgs == 0 { Workload::default() } else { Workload::uniform_random(procs, msgs, seed) };
        let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
        prop_assert!(r.completed);
        prop_assert!(r.run.is_quiescent());
        prop_assert_eq!(r.stats.delivered, msgs);
    }

    /// Workload generators stay in range and deterministic.
    #[test]
    fn workload_generators_wellformed(procs in 2usize..6, n in 1usize..25, seed in 0u64..10_000) {
        for w in [
            Workload::uniform_random(procs, n, seed),
            Workload::client_server(procs, 2, n.min(6), seed),
            Workload::with_markers(procs, n, 3, "red", seed),
        ] {
            for s in &w.sends {
                prop_assert!(s.src < procs && s.dst < procs && s.src != s.dst);
            }
        }
        let bc = Workload::broadcast_rounds(procs, n.min(6), seed);
        prop_assert_eq!(bc.len(), n.min(6) * (procs - 1));
    }

    /// The explorer's schedules all reach quiescence for a live protocol
    /// and the count is at least one.
    #[test]
    fn explorer_covers_small_workloads(msgs in 1usize..4, seed in 0u64..1000) {
        let w = Workload::uniform_random(2, msgs, seed);
        let mut count = 0usize;
        let e = explore(2, w, |_| Immediate, 50_000, |run| {
            assert!(run.is_quiescent());
            count += 1;
            true
        });
        prop_assert!(!e.truncated);
        prop_assert_eq!(e.schedules, count);
        prop_assert!(count >= 1);
    }
}

/// A hold-back FIFO protocol with per-sender sequence tags — protocol
/// state (counters + reorder buffers) participates in the explorer's
/// configuration key, unlike the stateless [`Immediate`].
#[derive(Clone, Hash)]
struct FifoLocal {
    next_out: u64,
    expected: Vec<u64>,
    held: Vec<Vec<(u64, MessageId)>>,
}

impl FifoLocal {
    fn new(n: usize) -> FifoLocal {
        FifoLocal {
            next_out: 0,
            expected: vec![0; n],
            held: vec![Vec::new(); n],
        }
    }
}

impl Protocol for FifoLocal {
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        let tag = self.next_out.to_be_bytes().to_vec();
        self.next_out += 1;
        ctx.send_user(msg, tag);
    }
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: MessageId, tag: Vec<u8>) {
        let seq = u64::from_be_bytes(tag.try_into().expect("8-byte tag"));
        let f = from.0;
        if seq != self.expected[f] {
            self.held[f].push((seq, msg));
            return;
        }
        ctx.deliver(msg);
        self.expected[f] += 1;
        while let Some(i) = self.held[f]
            .iter()
            .position(|&(s, _)| s == self.expected[f])
        {
            let (_, m) = self.held[f].swap_remove(i);
            ctx.deliver(m);
            self.expected[f] += 1;
        }
    }
}

/// Runs one exploration and returns the *set* of terminal
/// configurations (as canonical user-view strings) plus the counters.
fn explore_runs<P>(
    procs: usize,
    w: &Workload,
    factory: impl Fn(usize) -> P,
    opts: &msgorder_simnet::ExploreOptions,
) -> (
    std::collections::BTreeSet<String>,
    msgorder_simnet::Exploration,
)
where
    P: Protocol + Clone + std::hash::Hash + Send,
{
    let set = std::sync::Mutex::new(std::collections::BTreeSet::new());
    let e = msgorder_simnet::explore_parallel_with(procs, w.clone(), factory, opts, &|run| {
        set.lock()
            .expect("no visitor panicked")
            .insert(format!("{:?}", run.users_view().relation_pairs()));
        true
    });
    (set.into_inner().expect("no visitor panicked"), e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sleep-set reduction and deduplication preserve the set of
    /// terminal configurations of full search, across random workloads
    /// and both a stateless and a stateful protocol.
    #[test]
    fn reduction_preserves_terminal_configurations(
        procs in 2usize..4, msgs in 1usize..5, seed in 0u64..500, stateful in any::<bool>(),
    ) {
        use msgorder_simnet::{DedupMode, ExploreOptions};
        let w = Workload::uniform_random(procs, msgs, seed);
        let run = |opts: &ExploreOptions| {
            if stateful {
                explore_runs(procs, &w, |_| FifoLocal::new(procs), opts)
            } else {
                explore_runs(procs, &w, |_| Immediate, opts)
            }
        };
        let full = run(&ExploreOptions::default());
        let por = run(&ExploreOptions { por: true, ..ExploreOptions::default() });
        let por_dedup = run(&ExploreOptions {
            por: true,
            dedup: DedupMode::Exact,
            ..ExploreOptions::default()
        });
        prop_assert_eq!(&full.0, &por.0, "reduction changed the run set");
        prop_assert_eq!(&full.0, &por_dedup.0, "dedup changed the run set");
        prop_assert!(por.1.schedules <= full.1.schedules);
        prop_assert!(!full.1.truncated && !por.1.truncated && !por_dedup.1.truncated);
    }

    /// The sharded work-stealing frontier is invisible: any thread
    /// count reports the same run set and the same schedule count as
    /// the sequential search, reduced or not, quiet or faulty.
    #[test]
    fn parallel_exploration_matches_sequential(
        msgs in 1usize..5, seed in 0u64..500, por in any::<bool>(), threads in 2usize..5,
        drop_faults in any::<bool>(),
    ) {
        use msgorder_simnet::{ExploreOptions, FaultModel};
        let procs = 3;
        let w = Workload::uniform_random(procs, msgs, seed);
        let faults = if drop_faults {
            FaultModel::none().with_drop(0.25).expect("valid probability")
        } else {
            FaultModel::none()
        };
        let seq = ExploreOptions { por, faults: faults.clone(), ..ExploreOptions::default() };
        let par = ExploreOptions { threads, ..seq.clone() };
        let a = explore_runs(procs, &w, |_| Immediate, &seq);
        let b = explore_runs(procs, &w, |_| Immediate, &par);
        prop_assert_eq!(&a.0, &b.0, "threads changed the run set");
        prop_assert_eq!(a.1.schedules, b.1.schedules);
        prop_assert_eq!(a.1.sleep_skipped, b.1.sleep_skipped);
        prop_assert_eq!(a.1.non_live, b.1.non_live);
    }

    /// Bounded-compact deduplication agrees with exact deduplication
    /// whenever the bound is not hit, and a bound with a spill path
    /// still completes the search unreduced.
    #[test]
    fn compact_dedup_agrees_with_exact(msgs in 1usize..5, seed in 0u64..500) {
        use msgorder_simnet::{DedupMode, ExploreOptions};
        let procs = 2;
        let w = Workload::uniform_random(procs, msgs, seed);
        let exact = explore_runs(procs, &w, |_| FifoLocal::new(procs), &ExploreOptions {
            por: true,
            dedup: DedupMode::Exact,
            ..ExploreOptions::default()
        });
        let compact = explore_runs(procs, &w, |_| FifoLocal::new(procs), &ExploreOptions {
            por: true,
            dedup: DedupMode::Compact { max_states: 0, spill: None },
            ..ExploreOptions::default()
        });
        prop_assert_eq!(&exact.0, &compact.0);
        prop_assert_eq!(exact.1.schedules, compact.1.schedules);
        prop_assert_eq!(exact.1.states, compact.1.states);
    }
}

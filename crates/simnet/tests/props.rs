//! Property tests for the simulator kernel.

use msgorder_runs::{MessageId, ProcessId};
use msgorder_simnet::{explore, Ctx, LatencyModel, Protocol, SimConfig, Simulation, Workload};
use proptest::prelude::*;

#[derive(Clone)]
struct Immediate;
impl Protocol for Immediate {
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        ctx.send_user(msg, Vec::new());
    }
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, _f: ProcessId, msg: MessageId, _t: Vec<u8>) {
        ctx.deliver(msg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulations are deterministic functions of (workload, seed).
    #[test]
    fn determinism(procs in 2usize..5, msgs in 1usize..15, seed in 0u64..10_000) {
        let cfg = SimConfig::new(procs, LatencyModel::Uniform { lo: 1, hi: 500 }, seed);
        let w = Workload::uniform_random(procs, msgs, seed);
        let a = Simulation::run_uniform(cfg.clone(), w.clone(), |_| Immediate).expect("no bug");
        let b = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(
            a.run.users_view().relation_pairs(),
            b.run.users_view().relation_pairs()
        );
    }

    /// The immediate protocol always drains every workload.
    #[test]
    fn immediate_always_live(procs in 2usize..5, msgs in 0usize..20, seed in 0u64..10_000,
                             lo in 1u64..50, spread in 0u64..500) {
        let cfg = SimConfig::new(procs, LatencyModel::Uniform { lo, hi: lo + spread }, seed);
        let w = if msgs == 0 { Workload::default() } else { Workload::uniform_random(procs, msgs, seed) };
        let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
        prop_assert!(r.completed);
        prop_assert!(r.run.is_quiescent());
        prop_assert_eq!(r.stats.delivered, msgs);
    }

    /// Workload generators stay in range and deterministic.
    #[test]
    fn workload_generators_wellformed(procs in 2usize..6, n in 1usize..25, seed in 0u64..10_000) {
        for w in [
            Workload::uniform_random(procs, n, seed),
            Workload::client_server(procs, 2, n.min(6), seed),
            Workload::with_markers(procs, n, 3, "red", seed),
        ] {
            for s in &w.sends {
                prop_assert!(s.src < procs && s.dst < procs && s.src != s.dst);
            }
        }
        let bc = Workload::broadcast_rounds(procs, n.min(6), seed);
        prop_assert_eq!(bc.len(), n.min(6) * (procs - 1));
    }

    /// The explorer's schedules all reach quiescence for a live protocol
    /// and the count is at least one.
    #[test]
    fn explorer_covers_small_workloads(msgs in 1usize..4, seed in 0u64..1000) {
        let w = Workload::uniform_random(2, msgs, seed);
        let mut count = 0usize;
        let e = explore(2, w, |_| Immediate, 50_000, |run| {
            assert!(run.is_quiescent());
            count += 1;
            true
        });
        prop_assert!(!e.truncated);
        prop_assert_eq!(e.schedules, count);
        prop_assert!(count >= 1);
    }
}

//! Fault-injection integration tests: the quiet model is bit-identical
//! to the pre-fault kernel, and each fault mechanism does exactly what
//! it says.

use msgorder_runs::{MessageId, ProcessId};
use msgorder_simnet::{
    Ctx, FaultModel, LatencyModel, Protocol, SendSpec, SimConfig, Simulation, Workload,
};
use proptest::prelude::*;

#[derive(Clone)]
struct Immediate;
impl Protocol for Immediate {
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        ctx.send_user(msg, Vec::new());
    }
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, _f: ProcessId, msg: MessageId, _t: Vec<u8>) {
        ctx.deliver(msg);
    }
}

fn fnv(pairs: &[(msgorder_runs::UserEvent, msgorder_runs::UserEvent)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (a, b) in pairs {
        for byte in format!("{a:?}->{b:?};").bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The golden regression: this exact fingerprint was captured from the
/// kernel *before* the fault layer existed. A quiet fault model must
/// reproduce it bit for bit — same schedule, same deliveries, same
/// user-view relation.
#[test]
fn quiet_fault_model_reproduces_the_pre_fault_kernel_exactly() {
    let w = Workload::uniform_random(3, 20, 42);
    let cfg = SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 500 }, 42)
        .with_faults(FaultModel::none());
    let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
    let pairs = r.run.users_view().relation_pairs();
    assert_eq!(r.stats.end_time, 569);
    assert_eq!(r.stats.delivered, 20);
    assert_eq!(pairs.len(), 490);
    assert_eq!(fnv(&pairs), 0xa27f6b53b6bd4ab9);
}

/// Accounting on a tiny scripted workload, checked against hand-computed
/// values: one message, fixed latency 10, delivery inhibited 5 ticks by
/// a timer, one control frame on delivery.
#[test]
fn stats_agree_with_hand_computation_on_scripted_workload() {
    struct DelayFive;
    impl Protocol for DelayFive {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, _f: ProcessId, msg: MessageId, _t: Vec<u8>) {
            ctx.set_timer(5, msg.0 as u64);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, id: u64) {
            ctx.deliver(MessageId(id as usize));
            ctx.send_control(ProcessId(0), b"done".to_vec());
        }
    }
    let w = Workload {
        sends: vec![SendSpec {
            at: 0,
            src: 0,
            dst: 1,
            color: None,
        }],
    };
    let cfg = SimConfig::new(2, LatencyModel::Fixed(10), 1);
    let r = Simulation::run_uniform(cfg, w, |_| DelayFive).expect("no bug");
    // send at 0, receive at 10, timer fires at 15, deliver at 15.
    assert_eq!(r.stats.user_messages, 1);
    assert_eq!(r.stats.delivered, 1);
    assert_eq!(r.stats.total_inhibition, 5);
    assert_eq!(r.stats.total_latency, 15);
    assert_eq!(r.stats.control_messages, 1);
    assert_eq!(r.stats.control_bytes, 4);
    assert_eq!(r.stats.mean_inhibition(), 5.0);
    assert_eq!(r.stats.mean_latency(), 15.0);
    assert_eq!(r.stats.control_per_user(), 1.0);
    // the control frame lands at 15 + 10.
    assert_eq!(r.stats.end_time, 25);
}

#[test]
fn full_loss_delivers_nothing() {
    let w = Workload::uniform_random(3, 10, 7);
    let cfg = SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 100 }, 7)
        .with_faults(FaultModel::none().with_drop(1.0).unwrap());
    let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
    assert_eq!(r.stats.delivered, 0);
    assert_eq!(r.stats.dropped_frames, 10);
    assert!(!r.run.is_quiescent());
}

#[test]
fn duplication_is_fully_absorbed_by_the_kernel() {
    let w = Workload::uniform_random(3, 12, 9);
    let cfg = SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 100 }, 9)
        .with_faults(FaultModel::none().with_duplication(1.0).unwrap());
    let r = Simulation::run_uniform(cfg, w, |_| Immediate)
        .expect("duplicates must not corrupt the run");
    assert_eq!(r.stats.delivered, 12, "every message still delivered once");
    assert_eq!(r.stats.duplicated_frames, 12, "every frame was duplicated");
    assert_eq!(
        r.stats.suppressed_duplicates, 12,
        "every extra copy absorbed before the protocol saw it"
    );
    assert!(r.completed && r.run.is_quiescent());
}

#[test]
fn partition_blocks_only_its_window() {
    // Frames are checked against the partition at *send* time: the send
    // at t=0 falls inside [0, 10) and is lost; the send at t=20 passes.
    let w = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 20,
                src: 0,
                dst: 1,
                color: None,
            },
        ],
    };
    let cfg = SimConfig::new(2, LatencyModel::Fixed(5), 1)
        .with_faults(FaultModel::none().with_partition(0, 1, 0, 10));
    let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
    assert_eq!(r.stats.delivered, 1);
    assert_eq!(r.stats.dropped_frames, 1);
}

#[test]
fn permanently_crashed_destination_loses_arrivals() {
    let w = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 0,
                src: 0,
                dst: 2,
                color: None,
            },
        ],
    };
    let cfg = SimConfig::new(3, LatencyModel::Fixed(5), 1)
        .with_faults(FaultModel::none().with_crash(1, 0, None));
    let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
    assert_eq!(
        r.stats.delivered, 1,
        "only the healthy destination delivers"
    );
    assert_eq!(
        r.stats.dropped_frames, 1,
        "the crashed process's frame is lost"
    );
}

#[test]
fn crashed_sender_defers_its_request_to_the_restart() {
    let w = Workload {
        sends: vec![SendSpec {
            at: 0,
            src: 0,
            dst: 1,
            color: None,
        }],
    };
    let cfg = SimConfig::new(2, LatencyModel::Fixed(5), 1)
        .with_faults(FaultModel::none().with_crash(0, 0, Some(50)));
    let r = Simulation::run_uniform(cfg, w, |_| Immediate).expect("no bug");
    assert_eq!(r.stats.delivered, 1, "the deferred request still goes out");
    assert_eq!(r.stats.end_time, 55, "sent at the restart tick, latency 5");
}

#[test]
fn faulty_runs_are_deterministic_given_seed() {
    let faults = FaultModel::none()
        .with_drop(0.3)
        .unwrap()
        .with_duplication(0.2)
        .unwrap()
        .with_partition(0, 1, 50, 150)
        .with_crash(2, 200, Some(400));
    let mk = || {
        SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 300 }, 17).with_faults(faults.clone())
    };
    let w = Workload::uniform_random(3, 25, 17);
    let a = Simulation::run_uniform(mk(), w.clone(), |_| Immediate).expect("no bug");
    let b = Simulation::run_uniform(mk(), w, |_| Immediate).expect("no bug");
    assert_eq!(a.stats, b.stats);
    assert_eq!(
        a.run.users_view().relation_pairs(),
        b.run.users_view().relation_pairs()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE invariant the fault layer was built around: attaching a fault
    /// model that can never fire leaves every simulation bit-identical
    /// to one with no fault model at all — same stats (schedule, times,
    /// counters) and same user-view relation.
    #[test]
    fn fault_free_fault_model_is_bit_identical(
        procs in 2usize..5, msgs in 1usize..15, seed in 0u64..10_000,
    ) {
        let w = Workload::uniform_random(procs, msgs, seed);
        let latency = LatencyModel::Uniform { lo: 1, hi: 500 };
        let bare = Simulation::run_uniform(
            SimConfig::new(procs, latency, seed),
            w.clone(),
            |_| Immediate,
        ).expect("no bug");
        let quiet = Simulation::run_uniform(
            SimConfig::new(procs, latency, seed)
                .with_faults(
                    FaultModel::none()
                        .with_drop(0.0)
                        .unwrap()
                        .with_duplication(0.0)
                        .unwrap(),
                ),
            w,
            |_| Immediate,
        ).expect("no bug");
        prop_assert_eq!(&bare.stats, &quiet.stats);
        prop_assert_eq!(bare.completed, quiet.completed);
        prop_assert_eq!(
            bare.run.users_view().relation_pairs(),
            quiet.run.users_view().relation_pairs()
        );
    }
}

//! A deterministic discrete-event network simulator.
//!
//! The paper's protocols are *inhibitory*: they decide when the
//! controllable events (send `x.s`, delivery `x.r`) may execute. The
//! simulator gives them an adversarial but reproducible environment:
//!
//! - **non-FIFO channels** — per-message latency drawn from a pluggable
//!   [`LatencyModel`], so messages reorder freely in transit;
//! - **user vs control traffic** — protocol [`Frame`]s are either user
//!   messages (whose four events are recorded) or control messages
//!   (counted and costed, invisible in the user's view);
//! - **full run capture** — the kernel logs `x.s*`, `x.s`, `x.r*`,
//!   `x.r` into a live [`StreamingRun`](msgorder_runs::StreamingRun) as
//!   the simulation executes; [`Simulation::run`] materializes it into
//!   a [`SystemRun`](msgorder_runs::SystemRun) afterwards, while
//!   [`Simulation::run_streaming`] feeds every event to a
//!   [`RunObserver`] the moment it executes (online monitoring,
//!   early-exit on violation) and never builds the closure at all;
//! - **determinism** — all randomness flows from one seed; event ties
//!   break on a monotone sequence number.
//!
//! # Example
//!
//! ```
//! use msgorder_simnet::{Simulation, SimConfig, LatencyModel, Workload, Protocol, Ctx, Frame};
//! use msgorder_runs::{MessageId, ProcessId};
//!
//! /// The do-nothing (tagless, asynchronous) protocol.
//! struct Async;
//! impl Protocol for Async {
//!     fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
//!         ctx.send_user(msg, Vec::new());
//!     }
//!     fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: MessageId, _tag: Vec<u8>) {
//!         ctx.deliver(msg);
//!     }
//! }
//!
//! let workload = Workload::uniform_random(3, 20, 0xfeed);
//! let config = SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 100 }, 1);
//! let result = Simulation::run_uniform(config, workload, |_| Async).expect("no protocol bug");
//! assert!(result.run.is_quiescent());
//! assert_eq!(result.stats.control_messages, 0);
//! ```
//!
//! Faulty networks (loss, duplication, partitions, crashes) are opt-in
//! via [`FaultModel`]; protocol implementation bugs surface as
//! [`SimError`] counterexamples instead of aborting the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod explore;
mod faults;
mod frame;
mod host;
mod kernel;
mod latency;
mod liveness;
mod realtime;
mod slab_map;
mod stats;
mod workload;

pub use error::{SimError, SimErrorKind, SimOutcome};
pub use explore::{
    explore, explore_dedup, explore_monitored, explore_monitored_with, explore_parallel,
    explore_parallel_with, explore_with, DedupMode, Exploration, ExploreOptions, PrefixMonitor,
};
pub use faults::{AdversarialModel, CrashSchedule, FaultConfigError, FaultModel, Partition};
pub use frame::Frame;
pub use host::{HostAction, HostEnv, HostEvent, ProtocolHost};
pub use kernel::{
    Ctx, DropReason, FaultRecord, ForgedFrame, KernelEvent, PayloadKind, Protocol, RejectReason,
    RunObserver, SimConfig, SimResult, Simulation, StreamResult, TransmitDecision, WireRecord,
};
pub use latency::{LatencyModel, LatencyOverflow};
pub use liveness::{Blame, LivenessVerdict, StuckCause, StuckMessage, StuckStage};
pub use realtime::{
    DriftStats, HostDriver, HostError, InProcessHost, MonotonicClock, RealtimeKernel,
    RealtimeOutcome, WallClock,
};
pub use slab_map::SortedSlab;
pub use stats::Stats;
pub use workload::{SendSpec, Workload};

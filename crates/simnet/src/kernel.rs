//! The simulation kernel: event queue, dispatch, and run capture.

use crate::error::{SimError, SimErrorKind, SimOutcome};
use crate::faults::FaultModel;
use crate::host::{HostAction, HostEnv, HostEvent};
use crate::latency::LatencyModel;
use crate::liveness::{self, FrameFate, LivenessVerdict};
use crate::stats::Stats;
use crate::workload::Workload;
use msgorder_runs::{
    EventKind as RunEventKind, MessageId, ProcessId, StreamingRun, SystemEvent, SystemRun,
};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Salt applied to the simulation seed for the fault-decision RNG, so
/// fault sampling never perturbs the latency stream: a run with a quiet
/// [`FaultModel`] is bit-identical to the pre-fault kernel, and cranking
/// a fault probability does not reshuffle every latency.
const FAULT_RNG_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub processes: usize,
    /// Channel latency model (drives reordering).
    pub latency: LatencyModel,
    /// RNG seed; every random choice in the simulation derives from it.
    pub seed: u64,
    /// Network fault model (loss, duplication, partitions, crashes).
    pub faults: FaultModel,
}

impl SimConfig {
    /// A fault-free configuration (the perfect wire of the original
    /// kernel).
    pub fn new(processes: usize, latency: LatencyModel, seed: u64) -> Self {
        SimConfig {
            processes,
            latency,
            seed,
            faults: FaultModel::none(),
        }
    }

    /// Replaces the fault model.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }
}

/// What a protocol instance can do when the kernel dispatches to it.
///
/// All actions take effect *now* (at the current simulated time); the
/// kernel records run events in the same order, so the captured
/// [`SystemRun`] is exactly what happened.
///
/// Invalid actions (sending a message one does not own, delivering
/// twice, …) do not panic: they *poison* the simulation with a
/// [`SimError`] — the first error wins, subsequent actions become
/// no-ops, and [`Simulation::run`] returns the counterexample.
///
/// The context is backed either by the simulator's `World` (actions take
/// effect immediately) or by a [`HostEnv`] (actions are buffered as
/// [`HostAction`]s for a real transport to apply) — protocol code cannot
/// tell the difference, which is the point of the `ProtocolHost`
/// boundary (DESIGN.md §13).
pub struct Ctx<'a> {
    inner: CtxInner<'a>,
    node: usize,
}

enum CtxInner<'a> {
    /// Simulator backend: mutate the world directly.
    Sim(&'a mut World),
    /// Host backend: buffer emitted actions for the transport.
    Host(&'a mut HostEnv),
}

impl<'a> Ctx<'a> {
    /// A simulator-backed context for the protocol instance at `node`.
    pub(crate) fn sim(world: &'a mut World, node: usize) -> Ctx<'a> {
        Ctx {
            inner: CtxInner::Sim(world),
            node,
        }
    }

    /// A host-backed context buffering actions into `env`.
    pub(crate) fn host(env: &'a mut HostEnv) -> Ctx<'a> {
        let node = env.node;
        Ctx {
            inner: CtxInner::Host(env),
            node,
        }
    }

    /// This protocol instance's process id.
    pub fn node(&self) -> ProcessId {
        ProcessId(self.node)
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        match &self.inner {
            CtxInner::Sim(world) => world.now,
            CtxInner::Host(env) => env.now,
        }
    }

    /// Number of processes in the system.
    pub fn process_count(&self) -> usize {
        match &self.inner {
            CtxInner::Sim(world) => world.processes,
            CtxInner::Host(env) => env.processes,
        }
    }

    /// Metadata (endpoints, color) of a workload message.
    ///
    /// # Panics
    /// Panics if `msg` is not a workload message.
    pub fn meta(&self, msg: MessageId) -> &msgorder_runs::MessageMeta {
        match &self.inner {
            CtxInner::Sim(world) => &world.metas[msg.0],
            CtxInner::Host(env) => &env.metas[msg.0],
        }
    }

    /// Executes the send `x.s` of a previously requested message,
    /// piggybacking `tag`, and puts it in transit to its destination.
    ///
    /// Sending from a non-owner process, before the request, or twice is
    /// a protocol implementation bug: it poisons the simulation with a
    /// [`SimError`] counterexample instead of executing.
    pub fn send_user(&mut self, msg: MessageId, tag: Vec<u8>) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_send_user(self.node, msg, tag),
            CtxInner::Host(env) => env.push(HostAction::SendUser { msg, tag }),
        }
    }

    /// Retransmits a previously sent user frame (same message id, fresh
    /// tag bytes). The logical run still contains a single send `x.s`;
    /// only the wire sees another frame, and the kernel suppresses the
    /// extra copy at the destination if the original already arrived.
    ///
    /// Resending a message that was never sent (or from a non-owner) is
    /// a protocol bug and poisons the simulation.
    pub fn resend_user(&mut self, msg: MessageId, tag: Vec<u8>) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_resend_user(self.node, msg, tag),
            CtxInner::Host(env) => env.push(HostAction::ResendUser { msg, tag }),
        }
    }

    /// Executes the delivery `x.r` of a previously received message.
    ///
    /// Delivering at a non-destination process, before the frame
    /// arrived, or twice is a protocol implementation bug: it poisons
    /// the simulation with a [`SimError`] counterexample instead of
    /// executing.
    pub fn deliver(&mut self, msg: MessageId) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_deliver(self.node, msg),
            CtxInner::Host(env) => env.push(HostAction::Deliver { msg }),
        }
    }

    /// Sends a control message to another process.
    pub fn send_control(&mut self, to: ProcessId, bytes: Vec<u8>) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_send_control(self.node, to, bytes),
            CtxInner::Host(env) => env.push(HostAction::SendControl { to, bytes }),
        }
    }

    /// Retransmits a control frame. Counted as a retransmission (and its
    /// wire bytes), not as a fresh control message.
    pub fn resend_control(&mut self, to: ProcessId, bytes: Vec<u8>) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_resend_control(self.node, to, bytes),
            CtxInner::Host(env) => env.push(HostAction::ResendControl { to, bytes }),
        }
    }

    /// Schedules `on_timer(id)` for this process after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, id: u64) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_set_timer(self.node, delay, id),
            CtxInner::Host(env) => env.push(HostAction::SetTimer { delay, id }),
        }
    }

    /// Records that this process refused an incoming frame claimed to be
    /// from `from` — the structured alternative to panicking on (or
    /// silently swallowing) corrupted, forged, stale, or replayed input.
    /// Feeds the rejection counters, the trace journal, and the liveness
    /// blame analysis.
    pub fn reject_frame(&mut self, from: ProcessId, reason: RejectReason) {
        match &mut self.inner {
            CtxInner::Sim(world) => world.do_reject(self.node, from, reason),
            CtxInner::Host(env) => env.push(HostAction::RejectFrame { from, reason }),
        }
    }

    /// This process's crash/restart epoch: the number of restarts it has
    /// completed so far (0 until the first restart). Control frames
    /// tagged with an older epoch are pre-restart stragglers a hardened
    /// protocol should refuse.
    pub fn epoch(&self) -> u64 {
        match &self.inner {
            CtxInner::Sim(world) => world
                .faults
                .crashes
                .iter()
                .filter(|c| {
                    c.process == self.node && matches!(c.restart, Some(r) if r <= world.now)
                })
                .count() as u64,
            CtxInner::Host(env) => env.epoch,
        }
    }
}

impl World {
    /// [`Ctx::send_user`], simulator backend.
    fn do_send_user(&mut self, node: usize, msg: MessageId, tag: Vec<u8>) {
        if self.error.is_some() {
            return;
        }
        let owner = self.metas[msg.0].src;
        if owner.0 != node {
            self.fail(node, Some(msg), SimErrorKind::SendFromNonOwner { owner });
            return;
        }
        if let Err(e) = self.builder.send(msg) {
            self.fail(node, Some(msg), SimErrorKind::InvalidSend(e));
            return;
        }
        self.journal(msg, RunEventKind::Send);
        self.stats.user_messages += 1;
        self.stats.tag_bytes += tag.len();
        self.sent[msg.0] = true;
        let dst = self.metas[msg.0].dst.0;
        self.transmit(
            node,
            dst,
            false,
            EventKind::UserArrival {
                from: node,
                msg,
                tag,
            },
        );
    }

    /// [`Ctx::resend_user`], simulator backend.
    fn do_resend_user(&mut self, node: usize, msg: MessageId, tag: Vec<u8>) {
        if self.error.is_some() {
            return;
        }
        if self.metas[msg.0].src.0 != node || !self.sent[msg.0] {
            self.fail(node, Some(msg), SimErrorKind::ResendBeforeSend);
            return;
        }
        self.stats.retransmitted_frames += 1;
        self.stats.tag_bytes += tag.len();
        let dst = self.metas[msg.0].dst.0;
        self.transmit(
            node,
            dst,
            true,
            EventKind::UserArrival {
                from: node,
                msg,
                tag,
            },
        );
    }

    /// [`Ctx::deliver`], simulator backend.
    fn do_deliver(&mut self, node: usize, msg: MessageId) {
        if self.error.is_some() {
            return;
        }
        let destination = self.metas[msg.0].dst;
        if destination.0 != node {
            self.fail(
                node,
                Some(msg),
                SimErrorKind::DeliverAtNonDestination { destination },
            );
            return;
        }
        if let Err(e) = self.builder.deliver(msg) {
            self.fail(node, Some(msg), SimErrorKind::InvalidDelivery(e));
            return;
        }
        self.journal(msg, RunEventKind::Deliver);
        let received = self.receive_time[msg.0].expect("received before delivery");
        let invoked = self.invoke_time[msg.0].expect("invoked before delivery");
        self.stats.delivered += 1;
        self.stats.total_inhibition += self.now - received;
        self.stats.total_latency += self.now - invoked;
    }

    /// [`Ctx::send_control`], simulator backend.
    fn do_send_control(&mut self, node: usize, to: ProcessId, bytes: Vec<u8>) {
        if self.error.is_some() {
            return;
        }
        self.stats.control_messages += 1;
        self.stats.control_bytes += bytes.len();
        self.transmit(
            node,
            to.0,
            false,
            EventKind::ControlArrival { from: node, bytes },
        );
    }

    /// [`Ctx::resend_control`], simulator backend.
    fn do_resend_control(&mut self, node: usize, to: ProcessId, bytes: Vec<u8>) {
        if self.error.is_some() {
            return;
        }
        self.stats.retransmitted_frames += 1;
        self.stats.control_bytes += bytes.len();
        self.transmit(
            node,
            to.0,
            true,
            EventKind::ControlArrival { from: node, bytes },
        );
    }

    /// [`Ctx::reject_frame`], simulator backend.
    fn do_reject(&mut self, node: usize, from: ProcessId, reason: RejectReason) {
        if self.error.is_some() {
            return;
        }
        self.stats.rejected_frames += 1;
        self.rejected_at[node] += 1;
        self.journal_fault(FaultRecord::Rejected {
            node,
            from: from.0,
            time: self.now,
            reason,
        });
    }

    /// [`Ctx::set_timer`], simulator backend.
    fn do_set_timer(&mut self, node: usize, delay: u64, id: u64) {
        let at = self.now.saturating_add(delay.max(1));
        self.schedule(at, node, EventKind::Timer { id });
    }

    /// Applies a batch of host actions emitted by one protocol dispatch,
    /// in emission order, at the current time — the simulator-semantics
    /// sink of the `ProtocolHost` boundary. Invalid actions poison the
    /// world exactly as their [`Ctx`] counterparts do.
    pub(crate) fn apply(&mut self, node: usize, actions: Vec<HostAction>) {
        for action in actions {
            match action {
                HostAction::SendUser { msg, tag } => self.do_send_user(node, msg, tag),
                HostAction::ResendUser { msg, tag } => self.do_resend_user(node, msg, tag),
                HostAction::Deliver { msg } => self.do_deliver(node, msg),
                HostAction::SendControl { to, bytes } => self.do_send_control(node, to, bytes),
                HostAction::ResendControl { to, bytes } => self.do_resend_control(node, to, bytes),
                HostAction::SetTimer { delay, id } => self.do_set_timer(node, delay, id),
                HostAction::RejectFrame { from, reason } => self.do_reject(node, from, reason),
            }
        }
    }
}

/// A message-ordering protocol: one instance per process.
///
/// The kernel records `x.s*` before calling
/// [`on_send_request`](Protocol::on_send_request) and `x.r*` before
/// calling [`on_user_frame`](Protocol::on_user_frame); the protocol
/// decides when `x.s` and `x.r` execute via [`Ctx::send_user`] and
/// [`Ctx::deliver`] — exactly the inhibitory power the paper grants
/// protocols (§3.2: `I` and `R` cannot be disabled, `S` and `D` can be
/// delayed).
pub trait Protocol {
    /// Called once before any event, in process-id order.
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}

    /// The user requested a send (`x.s*` just executed).
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId);

    /// A user frame arrived (`x.r*` just executed).
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: MessageId, tag: Vec<u8>);

    /// A control frame arrived.
    fn on_control_frame(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _bytes: Vec<u8>) {}

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _id: u64) {}
}

impl<T: Protocol + ?Sized> Protocol for Box<T> {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        (**self).on_init(ctx);
    }
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        (**self).on_send_request(ctx, msg);
    }
    fn on_user_frame(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: MessageId, tag: Vec<u8>) {
        (**self).on_user_frame(ctx, from, msg, tag);
    }
    fn on_control_frame(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, bytes: Vec<u8>) {
        (**self).on_control_frame(ctx, from, bytes);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        (**self).on_timer(ctx, id);
    }
}

/// Why the fault layer ate a frame at transmit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The link was cut by a timed [`Partition`](crate::Partition).
    Partition,
    /// Random loss (the fault model's `drop` probability fired).
    Loss,
}

/// What kind of frame a [`WireRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadKind {
    /// A user frame carrying `msg` with `bytes` of piggybacked tag.
    User {
        /// The workload message on the frame.
        msg: MessageId,
        /// Piggybacked tag bytes.
        bytes: usize,
        /// `true` for a protocol-level retransmission of the frame.
        retransmit: bool,
    },
    /// A control frame of `bytes` payload bytes.
    Control {
        /// Control payload bytes.
        bytes: usize,
        /// `true` for a protocol-level retransmission of the frame.
        retransmit: bool,
    },
}

impl PayloadKind {
    fn of(kind: &EventKind, retransmit: bool) -> PayloadKind {
        match kind {
            EventKind::UserArrival { msg, tag, .. } => PayloadKind::User {
                msg: *msg,
                bytes: tag.len(),
                retransmit,
            },
            EventKind::ControlArrival { bytes, .. } => PayloadKind::Control {
                bytes: bytes.len(),
                retransmit,
            },
            EventKind::Request { .. } | EventKind::Timer { .. } => {
                unreachable!("only frames are transmitted")
            }
        }
    }
}

/// The adversary's forged copy of a control frame: a mutated clone
/// delivered alongside the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForgedFrame {
    /// Seed of the mutation (selects which bit of the payload flips).
    pub seed: u64,
    /// Independently sampled latency of the forged copy.
    pub delay: u64,
}

/// Why a protocol layer refused an incoming frame instead of acting on
/// it — the structured alternative to panicking on adversarial input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The payload failed to decode (corrupted or forged bytes).
    Malformed,
    /// The frame carried an epoch tag older than one already seen from
    /// its sender (a pre-restart frame replayed into a later epoch).
    StaleEpoch,
    /// The frame fell outside the replay-suppression window (an already
    /// processed frame re-delivered long after the fact).
    Replayed,
    /// The frame decoded but made no sense in the protocol's current
    /// state (e.g. a Grant nobody asked for).
    Unexpected,
}

impl RejectReason {
    /// Stable label used as the metrics `reason` tag.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::Malformed => "malformed",
            RejectReason::StaleEpoch => "stale-epoch",
            RejectReason::Replayed => "replayed",
            RejectReason::Unexpected => "unexpected",
        }
    }
}

/// One `transmit` call, with everything the kernel's RNGs decided about
/// it: the journal entry that makes the network layer replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRecord {
    /// Sending process.
    pub from: usize,
    /// Destination process.
    pub to: usize,
    /// Simulated time the frame was put on the wire.
    pub time: u64,
    /// What was on the frame.
    pub payload: PayloadKind,
    /// Sampled in-transit latency. Always drawn — even for dropped
    /// frames — so the RNG stream stays aligned with the fault-free
    /// kernel.
    pub delay: u64,
    /// `Some` if the fault layer ate the frame.
    pub dropped: Option<DropReason>,
    /// Latency of the duplicated copy, if network duplication fired.
    pub dup_delay: Option<u64>,
    /// Seed of the payload bit-flip, if adversarial corruption fired.
    pub corrupt: Option<u64>,
    /// The forged copy's mutation seed and latency, if control-frame
    /// forgery fired.
    pub forge: Option<ForgedFrame>,
    /// Latency of the stale replayed copy, if adversarial replay fired.
    pub replay_delay: Option<u64>,
    /// Extra latency piled onto the original frame by a reordering
    /// burst (`0` when reordering did not fire).
    pub reorder_extra: u64,
}

impl WireRecord {
    /// The network decision this record captures (the replayable part).
    pub fn decision(&self) -> TransmitDecision {
        TransmitDecision {
            delay: self.delay,
            dropped: self.dropped,
            dup_delay: self.dup_delay,
            corrupt: self.corrupt,
            forge: self.forge,
            replay_delay: self.replay_delay,
            reorder_extra: self.reorder_extra,
        }
    }
}

// Hand-written (de)serialization: the four adversarial fields are
// emitted only when non-default, so quiet-model traces — including the
// byte-pinned golden artifacts — serialize exactly as they did before
// the adversarial layer existed, and legacy traces (no such keys) read
// back as unperturbed records.
impl Serialize for WireRecord {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("from", self.from.to_json_value());
        m.insert("to", self.to.to_json_value());
        m.insert("time", self.time.to_json_value());
        m.insert("payload", self.payload.to_json_value());
        m.insert("delay", self.delay.to_json_value());
        m.insert("dropped", self.dropped.to_json_value());
        m.insert("dup_delay", self.dup_delay.to_json_value());
        if self.corrupt.is_some() {
            m.insert("corrupt", self.corrupt.to_json_value());
        }
        if self.forge.is_some() {
            m.insert("forge", self.forge.to_json_value());
        }
        if self.replay_delay.is_some() {
            m.insert("replay_delay", self.replay_delay.to_json_value());
        }
        if self.reorder_extra != 0 {
            m.insert("reorder_extra", self.reorder_extra.to_json_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for WireRecord {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(WireRecord {
            from: Deserialize::from_json_value(&v["from"])?,
            to: Deserialize::from_json_value(&v["to"])?,
            time: Deserialize::from_json_value(&v["time"])?,
            payload: Deserialize::from_json_value(&v["payload"])?,
            delay: Deserialize::from_json_value(&v["delay"])?,
            dropped: Deserialize::from_json_value(&v["dropped"])?,
            dup_delay: Deserialize::from_json_value(&v["dup_delay"])?,
            corrupt: Deserialize::from_json_value(&v["corrupt"])?,
            forge: Deserialize::from_json_value(&v["forge"])?,
            replay_delay: Deserialize::from_json_value(&v["replay_delay"])?,
            reorder_extra: match v.get_object_key("reorder_extra") {
                Some(x) => Deserialize::from_json_value(x)?,
                None => 0,
            },
        })
    }
}

/// A crash-schedule effect applied by the kernel event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultRecord {
    /// A frame arrived at a crashed process and was lost.
    ArrivalAtCrashed {
        /// The crashed process.
        node: usize,
        /// Arrival time.
        time: u64,
    },
    /// A request/timer came due while its process was down and was
    /// deferred to the restart tick.
    DeferredToRestart {
        /// The crashed process.
        node: usize,
        /// When the work was originally due.
        time: u64,
        /// The restart tick it was deferred to.
        until: u64,
    },
    /// A request/timer came due at a permanently crashed process and was
    /// lost with it.
    LostToCrash {
        /// The crashed process.
        node: usize,
        /// When the work was originally due.
        time: u64,
    },
    /// A protocol layer refused an incoming frame (corrupted, forged,
    /// stale, or out-of-window) instead of acting on it.
    Rejected {
        /// The rejecting process.
        node: usize,
        /// The claimed sender of the rejected frame.
        from: usize,
        /// Rejection time.
        time: u64,
        /// Why the frame was refused.
        reason: RejectReason,
    },
}

/// Everything the kernel journals for an observer: run events (`s*`,
/// `s`, `r*`, `r`) interleaved, in execution order, with the wire and
/// fault records between them. This is the trace-event schema serialized
/// by the `msgorder-trace` crate (DESIGN.md §10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelEvent {
    /// A run event with its simulated time.
    Run {
        /// The run event.
        ev: SystemEvent,
        /// Simulated time it executed at.
        time: u64,
    },
    /// A frame put on (or eaten off) the wire.
    Wire(WireRecord),
    /// A crash-schedule effect.
    Fault(FaultRecord),
}

/// One recorded network decision: the latency draw plus the fault
/// layer's verdict for a single `transmit` call. A replayed run consumes
/// these in order instead of sampling its RNGs, which is what makes
/// replay bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmitDecision {
    /// In-transit latency of the (original) frame.
    pub delay: u64,
    /// `Some` if the fault layer ate the frame.
    pub dropped: Option<DropReason>,
    /// Latency of the duplicated copy, if duplication fired.
    pub dup_delay: Option<u64>,
    /// Seed of the payload bit-flip, if corruption fired.
    pub corrupt: Option<u64>,
    /// Mutation seed and latency of the forged copy, if forgery fired.
    pub forge: Option<ForgedFrame>,
    /// Latency of the stale replayed copy, if adversarial replay fired.
    pub replay_delay: Option<u64>,
    /// Extra latency added to the original frame by a reordering burst.
    pub reorder_extra: u64,
}

/// Where the kernel gets its network decisions from.
#[derive(Clone)]
pub(crate) enum DecisionSource {
    /// Sample latencies and fault verdicts from the seeded RNGs (the
    /// normal mode).
    Sample,
    /// Pop pre-recorded decisions in order (replay mode); exhausting the
    /// log poisons the world with [`SimErrorKind::ReplayExhausted`].
    Replay(VecDeque<TransmitDecision>),
}

#[derive(Debug, Clone, Hash, PartialEq, Eq)]
pub(crate) enum EventKind {
    Request {
        msg: MessageId,
    },
    UserArrival {
        from: usize,
        msg: MessageId,
        tag: Vec<u8>,
    },
    ControlArrival {
        from: usize,
        bytes: Vec<u8>,
    },
    Timer {
        id: u64,
    },
}

/// Flips one payload bit selected by `seed` (length-preserving).
/// Returns `false` — and leaves the payload alone — when there is
/// nothing to flip.
pub(crate) fn flip_bit(bytes: &mut [u8], seed: u64) -> bool {
    if bytes.is_empty() {
        return false;
    }
    let bit = (seed % (bytes.len() as u64 * 8)) as usize;
    bytes[bit / 8] ^= 1 << (bit % 8);
    true
}

impl World {
    /// A dispatch context for `node` (explorer entry point).
    pub(crate) fn ctx(&mut self, node: usize) -> Ctx<'_> {
        Ctx::sim(self, node)
    }

    /// Admits one scheduled event at `node`: executes the kernel-owned
    /// bookkeeping that precedes the protocol call (`x.s*`/`x.r*` run
    /// events, journal entries, invoke/receive timestamps, duplicate
    /// suppression) and returns the transport-agnostic [`HostEvent`] to
    /// hand the protocol — or `None` when the event is absorbed
    /// (suppressed duplicate) or invalid (the world is now poisoned).
    pub(crate) fn admit(&mut self, node: usize, kind: EventKind) -> Option<HostEvent> {
        match kind {
            EventKind::Request { msg } => {
                if let Err(e) = self.builder.invoke(msg) {
                    self.fail(node, Some(msg), SimErrorKind::InvalidRequest(e));
                    return None;
                }
                self.journal(msg, RunEventKind::Invoke);
                self.invoke_time[msg.0] = Some(self.now);
                Some(HostEvent::Request { msg })
            }
            EventKind::UserArrival { from, msg, tag } => {
                if self.receive_time[msg.0].is_some() {
                    // A duplicated or retransmitted frame whose original
                    // already arrived: the network-level receive `x.r*`
                    // happened once; the extra copy is absorbed by the
                    // kernel so it cannot corrupt the run.
                    self.stats.suppressed_duplicates += 1;
                    return None;
                }
                if let Err(e) = self.builder.receive(msg) {
                    self.fail(node, Some(msg), SimErrorKind::InvalidReceive(e));
                    return None;
                }
                self.journal(msg, RunEventKind::Receive);
                self.receive_time[msg.0] = Some(self.now);
                Some(HostEvent::UserFrame {
                    from: ProcessId(from),
                    msg,
                    tag,
                })
            }
            EventKind::ControlArrival { from, bytes } => Some(HostEvent::ControlFrame {
                from: ProcessId(from),
                bytes,
            }),
            EventKind::Timer { id } => Some(HostEvent::Timer { id }),
        }
    }

    /// Dispatches one event to the protocol instance at `node`,
    /// recording the corresponding run events (shared between the timed
    /// kernel and the exhaustive explorer).
    pub(crate) fn dispatch<P: Protocol>(
        &mut self,
        protocols: &mut [P],
        node: usize,
        kind: EventKind,
    ) {
        let Some(ev) = self.admit(node, kind) else {
            return;
        };
        let mut ctx = Ctx::sim(self, node);
        match ev {
            HostEvent::Init => protocols[node].on_init(&mut ctx),
            HostEvent::Request { msg } => protocols[node].on_send_request(&mut ctx, msg),
            HostEvent::UserFrame { from, msg, tag } => {
                protocols[node].on_user_frame(&mut ctx, from, msg, tag);
            }
            HostEvent::ControlFrame { from, bytes } => {
                protocols[node].on_control_frame(&mut ctx, from, bytes);
            }
            HostEvent::Timer { id } => protocols[node].on_timer(&mut ctx, id),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Scheduled {
    pub(crate) time: u64,
    pub(crate) seq: u64,
    pub(crate) node: usize,
    pub(crate) kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Clone)]
pub(crate) struct World {
    pub(crate) processes: usize,
    pub(crate) latency: LatencyModel,
    /// Immutable after construction; shared by reference so the
    /// explorer's per-transition world clone is a pointer bump.
    pub(crate) faults: std::sync::Arc<FaultModel>,
    /// Immutable after construction (see `faults`).
    pub(crate) metas: std::sync::Arc<Vec<msgorder_runs::MessageMeta>>,
    pub(crate) builder: StreamingRun,
    pub(crate) queue: BinaryHeap<Reverse<Scheduled>>,
    pub(crate) rng: StdRng,
    /// Independent stream for fault decisions (see [`FAULT_RNG_SALT`]).
    pub(crate) fault_rng: StdRng,
    pub(crate) seq: u64,
    pub(crate) now: u64,
    pub(crate) stats: Stats,
    pub(crate) invoke_time: Vec<Option<u64>>,
    pub(crate) receive_time: Vec<Option<u64>>,
    /// Which messages have executed their send `x.s` (gates resends).
    pub(crate) sent: Vec<bool>,
    /// Per-message wire accounting (copies out, copies eaten, why) for
    /// the liveness blame analysis.
    pub(crate) frame_fate: Vec<FrameFate>,
    /// Forged control frames delivered *to* each process, for the
    /// liveness blame analysis (a process fed forged control state may
    /// wedge in ways no benign cause explains).
    pub(crate) forged_to: Vec<u32>,
    /// Frames rejected *by* each process (via [`Ctx::reject_frame`]),
    /// for the liveness blame analysis.
    pub(crate) rejected_at: Vec<u32>,
    /// The first protocol bug detected, if any; once set, the world is
    /// poisoned and all further protocol actions are no-ops.
    pub(crate) error: Option<SimError>,
    /// When `true`, every appended run event is journaled into `fresh`
    /// for the streaming observer; the plain [`Simulation::run`] path
    /// leaves this off so it pays nothing.
    pub(crate) record: bool,
    /// When `true`, wire and fault records are journaled too (only when
    /// the observer asked for them via [`RunObserver::wants_wire`], so
    /// monitor-only streaming runs pay nothing extra).
    pub(crate) record_wire: bool,
    /// Journal entries appended since the observer last drained, in
    /// execution order.
    pub(crate) fresh: Vec<KernelEvent>,
    /// Recycled journal buffer: after a drain, `fresh`'s storage parks
    /// here so the steady-state record path never reallocates.
    pub(crate) spare: Vec<KernelEvent>,
    /// Where network decisions come from (sampled or replayed).
    pub(crate) decisions: DecisionSource,
}

impl World {
    /// Journals a just-appended run event for the streaming observer.
    pub(crate) fn journal(&mut self, msg: MessageId, kind: RunEventKind) {
        if self.record {
            self.fresh.push(KernelEvent::Run {
                ev: SystemEvent::new(msg, kind),
                time: self.now,
            });
        }
    }

    /// Journals a crash-schedule effect for the streaming observer.
    fn journal_fault(&mut self, fault: FaultRecord) {
        if self.record_wire {
            self.fresh.push(KernelEvent::Fault(fault));
        }
    }

    pub(crate) fn schedule(&mut self, time: u64, node: usize, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq,
            node,
            kind,
        }));
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Builds a fresh world for `config` and `workload`: message ids are
    /// assigned in workload order and every request is pre-queued at its
    /// `at` time (shared between [`Simulation::new`] and the realtime
    /// kernel, so both number messages and sequence events identically).
    ///
    /// # Panics
    /// Panics if a workload request references a process out of range.
    pub(crate) fn build(config: SimConfig, workload: &Workload) -> World {
        let mut builder = StreamingRun::new(config.processes);
        let mut metas = Vec::new();
        let mut queue = BinaryHeap::new();
        let mut seq = 0u64;
        for spec in &workload.sends {
            assert!(
                spec.src < config.processes && spec.dst < config.processes,
                "workload process out of range"
            );
            let id = match &spec.color {
                Some(c) => builder.message_colored(spec.src, spec.dst, c),
                None => builder.message(spec.src, spec.dst),
            };
            metas.push(msgorder_runs::MessageMeta {
                id,
                src: ProcessId(spec.src),
                dst: ProcessId(spec.dst),
                color: spec.color.clone(),
            });
            queue.push(Reverse(Scheduled {
                time: spec.at,
                seq,
                node: spec.src,
                kind: EventKind::Request { msg: id },
            }));
            seq += 1;
        }
        let n_msgs = metas.len();
        World {
            processes: config.processes,
            latency: config.latency,
            faults: std::sync::Arc::new(config.faults),
            metas: std::sync::Arc::new(metas),
            builder,
            queue,
            rng: StdRng::seed_from_u64(config.seed),
            fault_rng: StdRng::seed_from_u64(config.seed ^ FAULT_RNG_SALT),
            seq,
            now: 0,
            stats: Stats::default(),
            invoke_time: vec![None; n_msgs],
            receive_time: vec![None; n_msgs],
            sent: vec![false; n_msgs],
            frame_fate: vec![FrameFate::default(); n_msgs],
            forged_to: vec![0; config.processes],
            rejected_at: vec![0; config.processes],
            error: None,
            record: false,
            record_wire: false,
            fresh: Vec::new(),
            spare: Vec::new(),
            decisions: DecisionSource::Sample,
        }
    }

    /// Applies the crash schedule to a due event: returns the event
    /// unchanged when its process is up, or absorbs it (losing arrivals,
    /// deferring the process's own work to its restart, or losing it to
    /// a permanent crash) and returns `None`. Shared between the timed
    /// kernel's event loop and the realtime kernel.
    pub(crate) fn absorb_crashed(&mut self, ev: Scheduled) -> Option<Scheduled> {
        let Some(restart) = self.faults.down_until(ev.node, ev.time) else {
            return Some(ev);
        };
        match ev.kind {
            // Frames arriving at a crashed process are lost.
            EventKind::UserArrival { msg, .. } => {
                self.frame_fate[msg.0].crashed_arrivals += 1;
                self.stats.dropped_frames += 1;
                self.journal_fault(FaultRecord::ArrivalAtCrashed {
                    node: ev.node,
                    time: ev.time,
                });
            }
            EventKind::ControlArrival { .. } => {
                self.stats.dropped_frames += 1;
                self.journal_fault(FaultRecord::ArrivalAtCrashed {
                    node: ev.node,
                    time: ev.time,
                });
            }
            // The process's own pending actions are deferred to its
            // restart — or lost with it on a permanent crash.
            kind @ (EventKind::Request { .. } | EventKind::Timer { .. }) => {
                if let Some(r) = restart {
                    self.schedule(r, ev.node, kind);
                    self.journal_fault(FaultRecord::DeferredToRestart {
                        node: ev.node,
                        time: ev.time,
                        until: r,
                    });
                } else {
                    if let EventKind::Request { msg } = kind {
                        self.frame_fate[msg.0].request_lost = true;
                    }
                    self.journal_fault(FaultRecord::LostToCrash {
                        node: ev.node,
                        time: ev.time,
                    });
                }
            }
        }
        None
    }

    /// Drains the journal of fresh entries into `obs`: run events via
    /// `on_event` (which may halt), wire/fault records via their hooks.
    /// Returns `false` as soon as the observer requests a halt.
    pub(crate) fn notify_observer(&mut self, obs: &mut dyn RunObserver) -> bool {
        if self.fresh.is_empty() {
            return true;
        }
        // Swap in the recycled buffer so draining does not surrender
        // `fresh`'s storage: the next batch appends into `spare`'s old
        // capacity and the drained buffer parks back — the record path
        // stops allocating once the two buffers reach steady state.
        let mut fresh = std::mem::replace(&mut self.fresh, std::mem::take(&mut self.spare));
        let run_count = fresh
            .iter()
            .filter(|e| matches!(e, KernelEvent::Run { .. }))
            .count();
        let mut index = self.builder.event_count() - run_count;
        let mut halted = false;
        for entry in fresh.drain(..) {
            match entry {
                KernelEvent::Run { ev, time } => {
                    if !obs.on_event(&self.builder, ev, index, time) {
                        halted = true;
                        break;
                    }
                    index += 1;
                }
                KernelEvent::Wire(w) => obs.on_wire(&w),
                KernelEvent::Fault(f) => obs.on_fault(&f),
            }
        }
        fresh.clear();
        self.spare = fresh;
        !halted
    }

    /// Turns step-limit exhaustion into the structured
    /// [`SimErrorKind::StepLimit`] counterexample, carrying the blame
    /// analysis of whatever was still pending when the limit tripped.
    /// Observer halts are deliberate and never poisoned.
    pub(crate) fn poison_step_limit(&mut self, step_limit: usize, completed: bool, halted: bool) {
        if completed || halted || self.error.is_some() {
            return;
        }
        let frontier = liveness::analyze(self, true).unwrap_or(LivenessVerdict {
            stuck: Vec::new(),
            step_limited: true,
            end_time: self.now,
        });
        self.fail(
            0,
            None,
            SimErrorKind::StepLimit {
                steps: step_limit,
                frontier,
            },
        );
    }

    /// Records the first protocol bug (later ones are dropped: the world
    /// is already poisoned and everything after the first invalid action
    /// is suspect).
    pub(crate) fn fail(&mut self, node: usize, msg: Option<MessageId>, kind: SimErrorKind) {
        if self.error.is_none() {
            self.error = Some(SimError {
                kind,
                node: ProcessId(node),
                msg,
                time: self.now,
                trace: None,
                stats: Stats::default(),
            });
        }
    }

    /// Puts one frame on the wire from `from` to `to`, applying the
    /// fault model: the latency sample is always drawn from the main RNG
    /// (so the stream stays aligned with the fault-free kernel), then
    /// partitions and loss may eat the frame, and duplication may
    /// schedule a second copy with an independently sampled latency from
    /// the fault stream.
    ///
    /// Everything random funnels through one [`TransmitDecision`]: in
    /// replay mode the RNGs are bypassed entirely and recorded decisions
    /// are consumed in order, which is what makes replay bit-exact.
    fn transmit(&mut self, from: usize, to: usize, retransmit: bool, kind: EventKind) {
        let decision = match &mut self.decisions {
            DecisionSource::Sample => {
                let delay = match self.latency.sample(&mut self.rng) {
                    Ok(d) => d,
                    Err(o) => {
                        self.fail(from, None, SimErrorKind::LatencyOverflow(o));
                        return;
                    }
                };
                let dropped = if self.faults.link_blocked(from, to, self.now) {
                    Some(DropReason::Partition)
                } else if self.faults.drop > 0.0 && self.fault_rng.gen_bool(self.faults.drop) {
                    Some(DropReason::Loss)
                } else {
                    None
                };
                // A dropped frame never rolls for duplication — matches
                // the pre-replay kernel, keeping fault RNG streams (and
                // thus every seeded regression baseline) unchanged.
                let dup_delay = if dropped.is_none()
                    && self.faults.duplicate > 0.0
                    && self.fault_rng.gen_bool(self.faults.duplicate)
                {
                    match self.latency.sample(&mut self.fault_rng) {
                        Ok(d) => Some(d),
                        Err(o) => {
                            self.fail(from, None, SimErrorKind::LatencyOverflow(o));
                            return;
                        }
                    }
                } else {
                    None
                };
                // Adversarial draws, in a fixed order (corrupt, forge,
                // replay, reorder), all from the fault stream and each
                // gated on its knob being non-zero: a quiet adversarial
                // model consumes nothing and the run stays bit-identical
                // to the pre-adversarial kernel. Dropped frames never
                // roll — the adversary mutates frames, it does not
                // resurrect ones the network already ate.
                let adv = self.faults.adversarial;
                let corrupt = if dropped.is_none()
                    && adv.corrupt > 0.0
                    && self.fault_rng.gen_bool(adv.corrupt)
                {
                    Some(self.fault_rng.next_u64())
                } else {
                    None
                };
                let forge = if dropped.is_none()
                    && matches!(kind, EventKind::ControlArrival { .. })
                    && adv.forge > 0.0
                    && self.fault_rng.gen_bool(adv.forge)
                {
                    let seed = self.fault_rng.next_u64();
                    match self.latency.sample(&mut self.fault_rng) {
                        Ok(d) => Some(ForgedFrame { seed, delay: d }),
                        Err(o) => {
                            self.fail(from, None, SimErrorKind::LatencyOverflow(o));
                            return;
                        }
                    }
                } else {
                    None
                };
                let replay_delay = if dropped.is_none()
                    && adv.replay_stale > 0.0
                    && self.fault_rng.gen_bool(adv.replay_stale)
                {
                    // Stale by construction: far beyond any ordinary
                    // latency, deep into later (possibly post-restart)
                    // epochs.
                    match self.latency.sample(&mut self.fault_rng) {
                        Ok(d) => Some(d.saturating_mul(50).max(1)),
                        Err(o) => {
                            self.fail(from, None, SimErrorKind::LatencyOverflow(o));
                            return;
                        }
                    }
                } else {
                    None
                };
                let reorder_extra = if dropped.is_none()
                    && adv.reorder > 0.0
                    && self.fault_rng.gen_bool(adv.reorder)
                {
                    match self.latency.sample(&mut self.fault_rng) {
                        Ok(d) => d.saturating_mul(3),
                        Err(o) => {
                            self.fail(from, None, SimErrorKind::LatencyOverflow(o));
                            return;
                        }
                    }
                } else {
                    0
                };
                TransmitDecision {
                    delay,
                    dropped,
                    dup_delay,
                    corrupt,
                    forge,
                    replay_delay,
                    reorder_extra,
                }
            }
            DecisionSource::Replay(log) => match log.pop_front() {
                Some(d) => d,
                None => {
                    self.fail(from, None, SimErrorKind::ReplayExhausted);
                    return;
                }
            },
        };
        if self.record_wire {
            self.fresh.push(KernelEvent::Wire(WireRecord {
                from,
                to,
                time: self.now,
                payload: PayloadKind::of(&kind, retransmit),
                delay: decision.delay,
                dropped: decision.dropped,
                dup_delay: decision.dup_delay,
                corrupt: decision.corrupt,
                forge: decision.forge,
                replay_delay: decision.replay_delay,
                reorder_extra: decision.reorder_extra,
            }));
        }
        if let EventKind::UserArrival { msg, .. } = &kind {
            let fate = &mut self.frame_fate[msg.0];
            fate.attempts += 1;
            if let Some(reason) = decision.dropped {
                fate.dropped += 1;
                fate.last_drop = Some(reason);
            } else {
                // Duplicated and replayed copies are more frames on the
                // wire.
                if decision.dup_delay.is_some() {
                    fate.attempts += 1;
                }
                if decision.replay_delay.is_some() {
                    fate.attempts += 1;
                }
            }
        }
        if decision.dropped.is_some() {
            self.stats.dropped_frames += 1;
            return;
        }
        let extended = decision.delay.checked_add(decision.reorder_extra);
        let Some(at) = extended.and_then(|d| self.now.checked_add(d)) else {
            self.fail(
                from,
                None,
                SimErrorKind::TimeOverflow {
                    delay: decision.delay.saturating_add(decision.reorder_extra),
                },
            );
            return;
        };
        if decision.reorder_extra != 0 {
            self.stats.reordered_frames += 1;
        }
        // Copies (duplicate, stale replay, forgery source) clone the
        // *clean* frame: corruption mutates only the original, so a
        // corrupted frame and its pristine twin can race to the
        // destination — the nastiest version of the fault.
        let dup = decision.dup_delay.map(|d| (d, kind.clone()));
        let replay = decision.replay_delay.map(|d| (d, kind.clone()));
        let forged = decision.forge.and_then(|f| match &kind {
            EventKind::ControlArrival { from: src, bytes } => {
                let mut mutated = bytes.clone();
                flip_bit(&mut mutated, f.seed);
                Some((
                    f.delay,
                    EventKind::ControlArrival {
                        from: *src,
                        bytes: mutated,
                    },
                ))
            }
            _ => None,
        });
        let mut kind = kind;
        if let Some(seed) = decision.corrupt {
            let flipped = match &mut kind {
                EventKind::UserArrival { tag, .. } => flip_bit(tag, seed),
                EventKind::ControlArrival { bytes, .. } => flip_bit(bytes, seed),
                _ => false,
            };
            if flipped {
                self.stats.corrupted_frames += 1;
            }
        }
        self.schedule(at, to, kind);
        if let Some((dup_delay, copy)) = dup {
            let Some(dup_at) = self.now.checked_add(dup_delay) else {
                self.fail(from, None, SimErrorKind::TimeOverflow { delay: dup_delay });
                return;
            };
            self.stats.duplicated_frames += 1;
            self.schedule(dup_at, to, copy);
        }
        if let Some((forge_delay, copy)) = forged {
            let Some(forge_at) = self.now.checked_add(forge_delay) else {
                self.fail(
                    from,
                    None,
                    SimErrorKind::TimeOverflow { delay: forge_delay },
                );
                return;
            };
            self.stats.forged_frames += 1;
            self.forged_to[to] += 1;
            self.schedule(forge_at, to, copy);
        }
        if let Some((replay_delay, copy)) = replay {
            let Some(replay_at) = self.now.checked_add(replay_delay) else {
                self.fail(
                    from,
                    None,
                    SimErrorKind::TimeOverflow {
                        delay: replay_delay,
                    },
                );
                return;
            };
            self.stats.replayed_frames += 1;
            self.schedule(replay_at, to, copy);
        }
    }
}

/// The outcome of a simulation.
#[derive(Debug)]
pub struct SimResult {
    /// The captured system run (feed its
    /// [`users_view`](SystemRun::users_view) to the spec checkers).
    pub run: SystemRun,
    /// Overhead counters.
    pub stats: Stats,
    /// `true` iff the event queue drained. Step-limit exhaustion now
    /// surfaces as [`SimErrorKind::StepLimit`], so an `Ok` result always
    /// has `completed == true`; the field is kept for the streaming
    /// path's halted runs and for symmetry.
    pub completed: bool,
    /// `Some` when the run ended non-quiescent: the structured blame
    /// analysis of the pending frontier (which messages are stuck at
    /// which system event, and why).
    pub liveness: Option<LivenessVerdict>,
}

/// A hook fed every run event (`s*`, `s`, `r*`, `r`) the moment the
/// kernel executes it, together with the live [`StreamingRun`] prefix —
/// the entry point of the streaming verdict pipeline.
///
/// Events arrive in execution order; `index` is the event's position in
/// the global appended order (0-based) and `time` the simulated time it
/// executed at. Returning `false` halts the simulation after the
/// current dispatch — the early-exit used by online violation
/// detection.
pub trait RunObserver {
    /// Called once per executed run event. Return `false` to halt.
    fn on_event(&mut self, view: &StreamingRun, ev: SystemEvent, index: usize, time: u64) -> bool;

    /// Called for every frame put on (or eaten off) the wire, when this
    /// observer opted in via [`wants_wire`](RunObserver::wants_wire).
    fn on_wire(&mut self, _wire: &WireRecord) {}

    /// Called for every crash-schedule effect, when this observer opted
    /// in via [`wants_wire`](RunObserver::wants_wire).
    fn on_fault(&mut self, _fault: &FaultRecord) {}

    /// Whether the kernel should journal wire/fault records for this
    /// observer. Defaults to `false` so monitor-only streaming runs pay
    /// nothing for the tracing layer.
    fn wants_wire(&self) -> bool {
        false
    }
}

/// The outcome of [`Simulation::run_streaming`]: the live run is handed
/// back as-is — no post-hoc transitive closure is ever built on this
/// path.
#[derive(Debug)]
pub struct StreamResult {
    /// The streaming run at the moment the simulation stopped.
    pub run: StreamingRun,
    /// Overhead counters.
    pub stats: Stats,
    /// `true` iff the event queue drained (no step-limit hit, no
    /// observer halt).
    pub completed: bool,
    /// `true` iff the observer requested the halt.
    pub halted: bool,
    /// `Some` when the run drained its queue but ended non-quiescent:
    /// the structured blame analysis of the pending frontier. Always
    /// `None` for halted runs (the observer cut the run short on
    /// purpose).
    pub liveness: Option<LivenessVerdict>,
}

/// A discrete-event simulation of `P` instances exchanging a workload.
pub struct Simulation<P> {
    protocols: Vec<P>,
    world: World,
    step_limit: usize,
}

impl<P: Protocol> Simulation<P> {
    /// Builds a simulation with one protocol instance per process from
    /// `factory(process_id)`.
    ///
    /// # Panics
    /// Panics if a workload request references a process out of range.
    pub fn new(config: SimConfig, workload: Workload, factory: impl Fn(usize) -> P) -> Self {
        let processes = config.processes;
        let world = World::build(config, &workload);
        let protocols = (0..processes).map(factory).collect();
        Simulation {
            protocols,
            world,
            step_limit: 1_000_000,
        }
    }

    /// Overrides the livelock step limit.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Replaces the network RNGs with a recorded decision log: every
    /// `transmit` pops the next [`TransmitDecision`] instead of sampling
    /// latency and fault verdicts. With the same config, workload, and
    /// protocol as the recording, the run is bit-exact; a run that asks
    /// for more decisions than were recorded diverged from the recording
    /// and poisons the world with [`SimErrorKind::ReplayExhausted`].
    pub fn with_replay(mut self, decisions: impl IntoIterator<Item = TransmitDecision>) -> Self {
        self.world.decisions = DecisionSource::Replay(decisions.into_iter().collect());
        self
    }

    /// Runs to completion (event queue drained) or to the step limit.
    ///
    /// Returns `Err(SimError)` — a counterexample with the offending
    /// message, event, simulated time, and the partial captured run — if
    /// a protocol action was invalid; the process is never aborted.
    //
    // The Err carries the whole counterexample (partial trace + stats)
    // by design, and the Ok variant is just as large — boxing the error
    // would not shrink the Result.
    #[allow(clippy::result_large_err)]
    pub fn run(mut self) -> SimOutcome {
        let (completed, _halted) = self.drive(None);
        self.world.stats.end_time = self.world.now;
        self.poison_step_limit(completed, false);
        if let Some(mut e) = self.world.error.take() {
            e.trace = self.world.builder.build().ok();
            e.stats = self.world.stats.clone();
            return Err(e);
        }
        let liveness = liveness::analyze(&self.world, false);
        match self.world.builder.build() {
            Ok(run) => Ok(SimResult {
                run,
                stats: self.world.stats,
                completed,
                liveness,
            }),
            Err(re) => Err(SimError {
                kind: SimErrorKind::InvalidRun(re),
                node: ProcessId(0),
                msg: None,
                time: self.world.now,
                trace: None,
                stats: self.world.stats.clone(),
            }),
        }
    }

    /// Runs the simulation while feeding every run event to `obs` as it
    /// executes. Unlike [`run`](Simulation::run), the captured run is
    /// returned as the live [`StreamingRun`] — no transitive closure is
    /// built, so the cost is O(events · n) total regardless of run
    /// length.
    ///
    /// The observer may halt the simulation by returning `false`
    /// (reflected in [`StreamResult::halted`]); a protocol bug still
    /// yields the structured [`SimError`] counterexample.
    #[allow(clippy::result_large_err)] // see `run`
    pub fn run_streaming(mut self, obs: &mut dyn RunObserver) -> Result<StreamResult, SimError> {
        self.world.record = true;
        self.world.record_wire = obs.wants_wire();
        let (completed, halted) = self.drive(Some(obs));
        self.world.stats.end_time = self.world.now;
        self.poison_step_limit(completed, halted);
        if let Some(mut e) = self.world.error.take() {
            e.trace = self.world.builder.build().ok();
            e.stats = self.world.stats.clone();
            return Err(e);
        }
        let liveness = if halted {
            None
        } else {
            liveness::analyze(&self.world, false)
        };
        Ok(StreamResult {
            run: self.world.builder,
            stats: self.world.stats,
            completed,
            halted,
            liveness,
        })
    }

    /// See [`World::poison_step_limit`].
    fn poison_step_limit(&mut self, completed: bool, halted: bool) {
        self.world
            .poison_step_limit(self.step_limit, completed, halted);
    }

    /// The shared event loop: dispatches until the queue drains, the
    /// step limit is hit, a protocol bug poisons the world, or the
    /// observer (if any) requests a halt. Returns `(completed, halted)`.
    fn drive(&mut self, mut obs: Option<&mut dyn RunObserver>) -> (bool, bool) {
        for node in 0..self.world.processes {
            let mut ctx = Ctx::sim(&mut self.world, node);
            self.protocols[node].on_init(&mut ctx);
        }
        if let Some(o) = obs.as_deref_mut() {
            if !self.world.notify_observer(o) {
                return (false, true);
            }
        }
        let mut steps = 0usize;
        let mut completed = true;
        while let Some(Reverse(ev)) = self.world.queue.pop() {
            steps += 1;
            if steps > self.step_limit {
                completed = false;
                break;
            }
            debug_assert!(ev.time >= self.world.now, "time must not run backwards");
            self.world.now = ev.time;
            let Some(ev) = self.world.absorb_crashed(ev) else {
                continue;
            };
            self.world.stats.dispatched_events += 1;
            self.world.dispatch(&mut self.protocols, ev.node, ev.kind);
            if let Some(o) = obs.as_deref_mut() {
                if !self.world.notify_observer(o) {
                    return (false, true);
                }
            }
            if self.world.error.is_some() {
                break;
            }
        }
        // Flush journal entries appended after the last dispatch (e.g.
        // fault records from trailing crash-window drops). Only run
        // events can halt, and there are none left here.
        if let Some(o) = obs {
            let _ = self.world.notify_observer(o);
        }
        (completed, false)
    }

    /// Decomposes the simulation into its world and protocol instances
    /// (used by the exhaustive explorer).
    pub(crate) fn into_parts(self) -> (World, Vec<P>) {
        (self.world, self.protocols)
    }

    /// Convenience: build and run in one call.
    #[allow(clippy::result_large_err)] // see `run`
    pub fn run_uniform(
        config: SimConfig,
        workload: Workload,
        factory: impl Fn(usize) -> P,
    ) -> SimOutcome {
        Simulation::new(config, workload, factory).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SendSpec;

    /// Do-nothing protocol: send and deliver immediately.
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    fn config(seed: u64) -> SimConfig {
        SimConfig::new(3, LatencyModel::Uniform { lo: 1, hi: 200 }, seed)
    }

    #[test]
    fn immediate_protocol_completes_quiescent() {
        let w = Workload::uniform_random(3, 25, 7);
        let r = Simulation::run_uniform(config(1), w, |_| Immediate).expect("no protocol bug");
        assert!(r.completed);
        assert!(r.run.is_quiescent());
        assert!(r.run.is_complete());
        assert_eq!(r.stats.user_messages, 25);
        assert_eq!(r.stats.delivered, 25);
        assert_eq!(r.stats.control_messages, 0);
        assert_eq!(r.stats.tag_bytes, 0);
        assert_eq!(r.stats.dropped_frames, 0);
        assert_eq!(r.stats.duplicated_frames, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = Workload::uniform_random(3, 15, 3);
        let a = Simulation::run_uniform(config(9), w.clone(), |_| Immediate).expect("ok");
        let b = Simulation::run_uniform(config(9), w, |_| Immediate).expect("ok");
        assert_eq!(
            a.run.users_view().relation_pairs(),
            b.run.users_view().relation_pairs()
        );
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn reordering_channels_reorder() {
        // With wide uniform latency, at least one pair of same-channel
        // messages should arrive out of send order across seeds.
        let mut reordered = false;
        for seed in 0..20 {
            let w = Workload {
                sends: (0..10)
                    .map(|i| SendSpec {
                        at: i * 5,
                        src: 0,
                        dst: 1,
                        color: None,
                    })
                    .collect(),
            };
            let r = Simulation::run_uniform(config(seed), w, |_| Immediate).expect("ok");
            let user = r.run.users_view();
            if !msgorder_runs::limit_sets::in_x_co(&user) {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "channels never reordered — not adversarial");
    }

    /// A protocol that buffers everything and never delivers.
    struct BlackHole;
    impl Protocol for BlackHole {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: ProcessId,
            _msg: MessageId,
            _tag: Vec<u8>,
        ) {
        }
    }

    #[test]
    fn black_hole_is_non_quiescent() {
        let w = Workload::uniform_random(3, 5, 2);
        let r = Simulation::run_uniform(config(4), w, |_| BlackHole).expect("ok");
        assert!(r.completed, "queue drains, messages stay undelivered");
        assert!(!r.run.is_quiescent(), "liveness violation is visible");
        assert!(!r.run.is_complete());
    }

    /// Echo control traffic: each user frame triggers one control ping.
    struct Pinger;
    impl Protocol for Pinger {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, vec![1, 2, 3, 4]);
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
            ctx.send_control(from, vec![9; 8]);
        }
    }

    #[test]
    fn stats_count_tags_and_control() {
        let w = Workload::uniform_random(3, 10, 11);
        let r = Simulation::run_uniform(config(5), w, |_| Pinger).expect("ok");
        assert_eq!(r.stats.user_messages, 10);
        assert_eq!(r.stats.tag_bytes, 40);
        assert_eq!(r.stats.control_messages, 10);
        assert_eq!(r.stats.control_bytes, 80);
        assert_eq!(r.stats.control_per_user(), 1.0);
        assert_eq!(r.stats.tag_bytes_per_user(), 4.0);
    }

    /// Delays every delivery by a timer tick.
    struct TimerDelay {
        pending: Vec<MessageId>,
    }
    impl Protocol for TimerDelay {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            self.pending.push(msg);
            ctx.set_timer(50, msg.0 as u64);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, id: u64) {
            let msg = MessageId(id as usize);
            if let Some(pos) = self.pending.iter().position(|m| *m == msg) {
                self.pending.remove(pos);
                ctx.deliver(msg);
            }
        }
    }

    #[test]
    fn timers_fire_and_inhibition_is_measured() {
        let w = Workload::uniform_random(3, 8, 13);
        let r = Simulation::run_uniform(config(6), w, |_| TimerDelay {
            pending: Vec::new(),
        })
        .expect("ok");
        assert!(r.run.is_quiescent());
        assert!(r.stats.mean_inhibition() >= 50.0);
    }

    #[test]
    fn step_limit_detects_livelock() {
        /// Ping-pong forever.
        struct Livelock;
        impl Protocol for Livelock {
            fn on_init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node().0 == 0 {
                    ctx.send_control(ProcessId(1), vec![0]);
                }
            }
            fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
                ctx.send_user(msg, Vec::new());
            }
            fn on_user_frame(
                &mut self,
                ctx: &mut Ctx<'_>,
                _from: ProcessId,
                msg: MessageId,
                _tag: Vec<u8>,
            ) {
                ctx.deliver(msg);
            }
            fn on_control_frame(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, bytes: Vec<u8>) {
                ctx.send_control(from, bytes);
            }
        }
        let w = Workload::uniform_random(2, 1, 0);
        let e = Simulation::new(config(7), w, |_| Livelock)
            .with_step_limit(500)
            .run()
            .expect_err("step-limit exhaustion is a structured error");
        match &e.kind {
            SimErrorKind::StepLimit { steps, frontier } => {
                assert_eq!(*steps, 500);
                assert!(frontier.step_limited);
                // The one user message delivers immediately; only the
                // control ping-pong livelocks, so the frontier is empty.
                assert_eq!(frontier.stuck_count(), 0);
            }
            other => panic!("wrong error kind: {other:?}"),
        }
        assert_eq!(e.kind.discriminant_name(), "step-limit");
        assert!(e.trace.is_some(), "partial run still captured");
    }

    #[test]
    fn undelivered_messages_get_liveness_blame() {
        let w = Workload::uniform_random(3, 5, 2);
        let r = Simulation::run_uniform(config(4), w, |_| BlackHole).expect("ok");
        let v = r.liveness.expect("non-quiescent run carries a verdict");
        assert!(!v.step_limited, "queue drained normally");
        assert_eq!(v.stuck_count(), 5, "all five messages pending");
        for s in &v.stuck {
            assert_eq!(s.stage, crate::liveness::StuckStage::Deliver);
            assert_eq!(s.cause, crate::liveness::StuckCause::ProtocolInhibited);
        }
        assert_eq!(v.classes(), vec!["deliver:protocol-inhibited".to_owned()]);
    }

    #[test]
    fn quiescent_runs_have_no_liveness_verdict() {
        let w = Workload::uniform_random(3, 10, 7);
        let r = Simulation::run_uniform(config(1), w, |_| Immediate).expect("ok");
        assert!(r.liveness.is_none());
    }

    #[test]
    fn captured_run_respects_wall_clock_causality() {
        let w = Workload::uniform_random(3, 30, 17);
        let r = Simulation::run_uniform(config(8), w, |_| Immediate).expect("ok");
        // The captured run passed SystemRun validation (no cycles, no
        // spurious receives) — spot-check an invariant: every message
        // was received after it was sent.
        for m in r.run.messages() {
            use msgorder_runs::{EventKind, SystemEvent};
            assert!(r.run.happens_before(
                SystemEvent::new(m.id, EventKind::Send),
                SystemEvent::new(m.id, EventKind::Receive)
            ));
        }
    }

    /// Delivers every user frame twice — a protocol implementation bug
    /// that used to abort the whole process.
    struct DoubleDeliver;
    impl Protocol for DoubleDeliver {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
            ctx.deliver(msg);
        }
    }

    #[test]
    fn protocol_bug_becomes_counterexample_not_abort() {
        let w = Workload::uniform_random(3, 5, 2);
        let e = Simulation::run_uniform(config(3), w, |_| DoubleDeliver)
            .expect_err("double delivery must be detected");
        assert!(matches!(e.kind, SimErrorKind::InvalidDelivery(_)), "{e}");
        assert!(e.msg.is_some(), "counterexample names the message");
        let trace = e.trace.as_ref().expect("partial trace is buildable");
        assert!(
            !trace.messages().is_empty(),
            "trace still lists the workload"
        );
        assert_eq!(e.stats.delivered, 1, "one valid delivery before the bug");
    }

    /// Sends a message it does not own.
    struct Thief;
    impl Protocol for Thief {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            // Deliberately misroute: claim ownership on the wrong node.
            if ctx.node().0 != ctx.meta(msg).src.0 {
                unreachable!("requests arrive at the owner");
            }
            ctx.send_user(msg, Vec::new());
            ctx.send_user(msg, Vec::new()); // double send
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    #[test]
    fn double_send_is_a_structured_error() {
        let w = Workload::uniform_random(2, 3, 1);
        let e = Simulation::run_uniform(SimConfig::new(2, LatencyModel::Fixed(5), 1), w, |_| Thief)
            .expect_err("double send must be detected");
        assert!(matches!(e.kind, SimErrorKind::InvalidSend(_)), "{e}");
    }

    #[test]
    fn resend_before_send_is_reported() {
        struct EagerResend;
        impl Protocol for EagerResend {
            fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
                ctx.resend_user(msg, Vec::new()); // never sent it
            }
            fn on_user_frame(
                &mut self,
                _ctx: &mut Ctx<'_>,
                _from: ProcessId,
                _msg: MessageId,
                _tag: Vec<u8>,
            ) {
            }
        }
        let w = Workload::uniform_random(2, 1, 0);
        let e = Simulation::run_uniform(SimConfig::new(2, LatencyModel::Fixed(1), 0), w, |_| {
            EagerResend
        })
        .expect_err("resend before send");
        assert_eq!(e.kind, SimErrorKind::ResendBeforeSend);
    }

    /// Records every observed event; optionally halts at the first
    /// delivery.
    struct Recorder {
        events: Vec<(SystemEvent, usize, u64)>,
        halt_on_deliver: bool,
    }
    impl RunObserver for Recorder {
        fn on_event(
            &mut self,
            view: &StreamingRun,
            ev: SystemEvent,
            index: usize,
            time: u64,
        ) -> bool {
            // Events appended by one dispatch are notified as a batch
            // after it returns, so the view may already be a few events
            // ahead — but never behind.
            assert!(index < view.event_count(), "view includes the event");
            assert!(view.contains(ev), "event visible in the live prefix");
            self.events.push((ev, index, time));
            !(self.halt_on_deliver && ev.kind == RunEventKind::Deliver)
        }
    }

    #[test]
    fn run_streaming_observes_every_event_in_order() {
        let w = Workload::uniform_random(3, 20, 19);
        let mut obs = Recorder {
            events: Vec::new(),
            halt_on_deliver: false,
        };
        let r = Simulation::new(config(2), w.clone(), |_| Immediate)
            .run_streaming(&mut obs)
            .expect("no protocol bug");
        assert!(r.completed && !r.halted);
        assert!(r.run.is_quiescent() && r.run.is_complete());
        assert_eq!(obs.events.len(), 80, "4 events per message");
        for (i, (_, index, _)) in obs.events.iter().enumerate() {
            assert_eq!(*index, i, "indices are the global append order");
        }
        let times: Vec<u64> = obs.events.iter().map(|&(_, _, t)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times monotone");

        // The streaming path is observationally identical to the plain
        // one: same stats, same user view.
        let plain = Simulation::run_uniform(config(2), w, |_| Immediate).expect("ok");
        assert_eq!(plain.stats, r.stats);
        assert_eq!(
            plain.run.users_view().relation_pairs(),
            r.run.users_view().relation_pairs()
        );
    }

    #[test]
    fn observer_halt_stops_simulation_early() {
        let w = Workload::uniform_random(3, 20, 19);
        let mut obs = Recorder {
            events: Vec::new(),
            halt_on_deliver: true,
        };
        let r = Simulation::new(config(2), w, |_| Immediate)
            .run_streaming(&mut obs)
            .expect("no protocol bug");
        assert!(r.halted && !r.completed);
        assert_eq!(
            obs.events
                .iter()
                .filter(|(ev, _, _)| ev.kind == RunEventKind::Deliver)
                .count(),
            1,
            "halted at the first delivery"
        );
        assert!(
            r.run.event_count() < 80,
            "most of the run was never executed"
        );
    }

    #[test]
    fn same_tick_events_dispatch_in_schedule_order_across_runs() {
        // All frames take exactly one tick: every arrival at t+1 ties on
        // time and must fall back to the monotone sequence number, so two
        // identical runs dispatch identically.
        let w = Workload {
            sends: (0..12)
                .map(|i| SendSpec {
                    at: 0,
                    src: i % 3,
                    dst: (i + 1) % 3,
                    color: None,
                })
                .collect(),
        };
        let cfg = SimConfig::new(3, LatencyModel::Fixed(1), 5);
        let a = Simulation::run_uniform(cfg.clone(), w.clone(), |_| Immediate).expect("ok");
        let b = Simulation::run_uniform(cfg, w, |_| Immediate).expect("ok");
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.run.users_view().relation_pairs(),
            b.run.users_view().relation_pairs()
        );
        assert_eq!(a.stats.end_time, 1, "everything resolves on tick 1");
    }
}

//! Structured simulation failures: counterexamples instead of aborts.
//!
//! A protocol implementation bug used to `panic!` inside the kernel and
//! kill the whole process — one bad trace aborted an entire experiment
//! sweep. Instead, the kernel now *poisons* the world on the first
//! invalid action and surfaces a [`SimError`] carrying the offending
//! message, the simulated time, the partial captured run (the
//! counterexample trace), and the stats accumulated so far.

use crate::latency::LatencyOverflow;
use crate::liveness::LivenessVerdict;
use crate::stats::Stats;
use msgorder_runs::{MessageId, ProcessId, RunError, SystemRun};

/// The result of running a simulation: a completed [`SimResult`] or a
/// structured counterexample.
///
/// [`SimResult`]: crate::SimResult
pub type SimOutcome = Result<crate::SimResult, SimError>;

/// What kind of protocol (or kernel-capture) bug was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimErrorKind {
    /// `Ctx::send_user` called by a process that does not own the
    /// message.
    SendFromNonOwner {
        /// The process that actually owns the message.
        owner: ProcessId,
    },
    /// `Ctx::deliver` called at a process that is not the message's
    /// destination.
    DeliverAtNonDestination {
        /// The message's true destination.
        destination: ProcessId,
    },
    /// `Ctx::send_user` rejected by the run builder (double send, send
    /// before request, …).
    InvalidSend(RunError),
    /// `Ctx::deliver` rejected by the run builder (double delivery,
    /// delivery before receive, …).
    InvalidDelivery(RunError),
    /// A workload send request could not be recorded (kernel/workload
    /// inconsistency).
    InvalidRequest(RunError),
    /// A frame arrival could not be recorded (kernel/network
    /// inconsistency).
    InvalidReceive(RunError),
    /// `Ctx::resend_user` called for a message that was never sent (or
    /// by a non-owner).
    ResendBeforeSend,
    /// The captured run failed final validation.
    InvalidRun(RunError),
    /// A latency sample overflowed `u64` — the frame could never be
    /// dispatched and would have wedged the event queue.
    LatencyOverflow(LatencyOverflow),
    /// Scheduling a frame at `now + delay` overflowed simulated time.
    TimeOverflow {
        /// The in-transit delay that pushed `now` past `u64::MAX`.
        delay: u64,
    },
    /// A replayed run requested more network decisions than the trace
    /// recorded — the setup being replayed does not match the recording.
    ReplayExhausted,
    /// A real-transport host failed to dispatch an event to its remote
    /// protocol instance (connection lost past the reconnect budget, a
    /// malformed reply, a client gone for good). Only produced by the
    /// realtime kernel — the in-simulator path never fails this way.
    HostFailure {
        /// What the transport reported.
        detail: String,
    },
    /// The step limit tripped before the event queue drained: a
    /// livelocked (or wedged) protocol. Carries the liveness blame
    /// analysis of everything still pending at the limit.
    StepLimit {
        /// The step limit that was exhausted.
        steps: usize,
        /// Blame analysis of the pending frontier (possibly empty: a
        /// pure control-frame livelock leaves no user message pending).
        frontier: LivenessVerdict,
    },
}

impl SimErrorKind {
    /// A stable kebab-case discriminant name — the identity the
    /// counterexample shrinker preserves across reductions (two errors
    /// of the same discriminant are "the same bug" for shrinking).
    pub fn discriminant_name(&self) -> &'static str {
        match self {
            SimErrorKind::SendFromNonOwner { .. } => "send-from-non-owner",
            SimErrorKind::DeliverAtNonDestination { .. } => "deliver-at-non-destination",
            SimErrorKind::InvalidSend(_) => "invalid-send",
            SimErrorKind::InvalidDelivery(_) => "invalid-delivery",
            SimErrorKind::InvalidRequest(_) => "invalid-request",
            SimErrorKind::InvalidReceive(_) => "invalid-receive",
            SimErrorKind::ResendBeforeSend => "resend-before-send",
            SimErrorKind::InvalidRun(_) => "invalid-run",
            SimErrorKind::LatencyOverflow(_) => "latency-overflow",
            SimErrorKind::TimeOverflow { .. } => "time-overflow",
            SimErrorKind::ReplayExhausted => "replay-exhausted",
            SimErrorKind::HostFailure { .. } => "host-failure",
            SimErrorKind::StepLimit { .. } => "step-limit",
        }
    }

    /// The liveness verdict attached to this error, if it carries one.
    pub fn liveness(&self) -> Option<&LivenessVerdict> {
        match self {
            SimErrorKind::StepLimit { frontier, .. } => Some(frontier),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimErrorKind::SendFromNonOwner { owner } => {
                write!(f, "send_user from a non-owner process (owner is {owner:?})")
            }
            SimErrorKind::DeliverAtNonDestination { destination } => write!(
                f,
                "deliver at a non-destination process (destination is {destination:?})"
            ),
            SimErrorKind::InvalidSend(e) => write!(f, "invalid send: {e}"),
            SimErrorKind::InvalidDelivery(e) => write!(f, "invalid delivery: {e}"),
            SimErrorKind::InvalidRequest(e) => write!(f, "invalid send request: {e}"),
            SimErrorKind::InvalidReceive(e) => write!(f, "invalid frame receive: {e}"),
            SimErrorKind::ResendBeforeSend => {
                write!(f, "resend of a message that was never sent")
            }
            SimErrorKind::InvalidRun(e) => write!(f, "captured run failed validation: {e}"),
            SimErrorKind::LatencyOverflow(o) => write!(f, "{o}"),
            SimErrorKind::TimeOverflow { delay } => {
                write!(
                    f,
                    "simulated time overflow scheduling a frame {delay} ticks out"
                )
            }
            SimErrorKind::ReplayExhausted => {
                write!(
                    f,
                    "replay decision log exhausted: run diverged from the recording"
                )
            }
            SimErrorKind::HostFailure { detail } => {
                write!(f, "transport host failure: {detail}")
            }
            SimErrorKind::StepLimit { steps, frontier } => {
                write!(
                    f,
                    "step limit ({steps}) exhausted with {} user message(s) pending",
                    frontier.stuck_count()
                )?;
                if let Some(class) = frontier.primary_class() {
                    write!(f, " [{class}]")?;
                }
                Ok(())
            }
        }
    }
}

/// A counterexample: where and when a simulation went wrong.
#[derive(Debug, Clone)]
pub struct SimError {
    /// What went wrong.
    pub kind: SimErrorKind,
    /// The process whose protocol instance triggered the error.
    pub node: ProcessId,
    /// The offending message, when the error concerns one.
    pub msg: Option<MessageId>,
    /// Simulated time at which the error occurred.
    pub time: u64,
    /// The partial run captured up to (but excluding) the invalid
    /// action — the counterexample trace. `None` only if even the
    /// partial run failed to build.
    pub trace: Option<SystemRun>,
    /// Stats accumulated up to the error.
    pub stats: Stats,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol bug at t={} on {:?}", self.time, self.node)?;
        if let Some(m) = self.msg {
            write!(f, " ({m})")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_time_node_and_message() {
        let e = SimError {
            kind: SimErrorKind::SendFromNonOwner {
                owner: ProcessId(2),
            },
            node: ProcessId(0),
            msg: Some(MessageId(7)),
            time: 41,
            trace: None,
            stats: Stats::default(),
        };
        let s = e.to_string();
        assert!(s.contains("t=41"), "{s}");
        assert!(s.contains("non-owner"), "{s}");
    }
}

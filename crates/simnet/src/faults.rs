//! Network fault models: message loss, duplication, partitions, crashes.
//!
//! The paper's protocol classes (§3.2) are defined over asynchronous
//! non-FIFO networks; a [`FaultModel`] makes the channel *adversarial*
//! rather than merely reordering. All fault decisions are sampled from a
//! dedicated RNG stream seeded from the simulation seed, so faulty runs
//! are exactly reproducible — and so that a quiet fault model (all
//! probabilities zero, no schedules) leaves the kernel's main RNG stream
//! untouched and every simulation bit-identical to the fault-free
//! kernel.

use serde::{Deserialize, Serialize};

/// A structured rejection of an ill-formed fault configuration —
/// surfaced at the API boundary instead of a CLI-only check or a panic
/// deep inside the kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A probability was NaN or outside `[0, 1]`.
    InvalidProbability {
        /// Which knob: `"drop"`, `"duplication"`, `"corruption"`,
        /// `"forgery"`, `"stale-replay"`, or `"reordering"`.
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A partition references a process outside `0..processes`, or
    /// partitions itself, or has an empty window (`until <= from`).
    InvalidPartition(Partition),
    /// A crash schedule references a process outside `0..processes` or
    /// restarts at (or before) the crash tick.
    InvalidCrash(CrashSchedule),
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::InvalidProbability { knob, value } => {
                write!(f, "{knob} probability {value} not in [0, 1]")
            }
            FaultConfigError::InvalidPartition(p) => write!(
                f,
                "invalid partition P{}<->P{} over [{}, {}): endpoints must be distinct \
                 in-range processes and the window non-empty",
                p.a, p.b, p.from, p.until
            ),
            FaultConfigError::InvalidCrash(c) => write!(
                f,
                "invalid crash of P{} at t={}{}: process must be in range and any \
                 restart strictly after the crash",
                c.process,
                c.at,
                match c.restart {
                    Some(r) => format!(" (restart t={r})"),
                    None => String::new(),
                }
            ),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// A symmetric link partition: frames between processes `a` and `b`
/// (either direction) are dropped while `from <= now < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// First tick at which the link is down (inclusive).
    pub from: u64,
    /// First tick at which the link is healed (exclusive).
    pub until: u64,
}

/// A process crash window: the process is down from `at` until `restart`
/// (or forever if `restart` is `None`). While down, arriving frames are
/// lost and the process executes nothing; timers and send requests that
/// come due are deferred to the restart tick (or dropped on a permanent
/// crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// The crashing process.
    pub process: usize,
    /// First tick at which the process is down (inclusive).
    pub at: u64,
    /// Tick at which it restarts (exclusive end of the down window), or
    /// `None` for a permanent crash.
    pub restart: Option<u64>,
}

/// Adversarial (byzantine-flavored) wire faults layered on top of the
/// benign loss/duplication model: the channel does not merely lose or
/// delay frames, it actively mutates, forges, and replays them.
///
/// All knobs are per-frame probabilities in `[0, 1]`; a quiet model
/// (all zero, the default) draws nothing from the fault RNG stream, so
/// runs stay bit-identical to the pre-adversarial kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversarialModel {
    /// Per-frame payload-corruption probability: a seeded single-bit
    /// flip in the frame's tag/control payload (lengths are preserved).
    pub corrupt: f64,
    /// Per-control-frame forgery probability: an extra, mutated copy of
    /// the frame is synthesized and delivered alongside the original.
    pub forge: f64,
    /// Per-frame stale-replay probability: a byte-exact copy of the
    /// frame is re-delivered far in the future — across crash/restart
    /// epochs when the schedule has them.
    pub replay_stale: f64,
    /// Per-frame reordering-burst probability: the frame's latency is
    /// inflated by an extra independently sampled burst, forcing deep
    /// reordering against its channel peers.
    pub reorder: f64,
}

impl AdversarialModel {
    /// `true` if no adversarial knob can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.corrupt == 0.0 && self.forge == 0.0 && self.replay_stale == 0.0 && self.reorder == 0.0
    }

    /// Validates every knob as a probability.
    ///
    /// # Errors
    /// The first offending knob, by name.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (knob, value) in [
            ("corruption", self.corrupt),
            ("forgery", self.forge),
            ("stale-replay", self.replay_stale),
            ("reordering", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::InvalidProbability { knob, value });
            }
        }
        Ok(())
    }
}

/// What the network does to frames beyond delaying them.
///
/// The default model is *quiet*: no loss, no duplication, no partitions,
/// no crashes — the kernel behaves exactly as it would without any fault
/// layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultModel {
    /// Per-frame drop probability in `[0, 1]`, applied to every user and
    /// control frame independently.
    pub drop: f64,
    /// Per-frame duplication probability in `[0, 1]`: with this
    /// probability a second copy of the frame is scheduled with an
    /// independent latency.
    pub duplicate: f64,
    /// Timed link partitions.
    pub partitions: Vec<Partition>,
    /// Process crash/restart schedules.
    pub crashes: Vec<CrashSchedule>,
    /// Adversarial wire faults (corruption, forgery, stale replay,
    /// reordering bursts).
    pub adversarial: AdversarialModel,
}

// Hand-written (de)serialization: the `adversarial` field is emitted
// only when noisy, so every trace recorded before the adversarial layer
// existed — and every quiet-model trace after it, including the pinned
// golden artifacts — keeps byte-identical JSON.
impl Serialize for FaultModel {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("drop", self.drop.to_json_value());
        m.insert("duplicate", self.duplicate.to_json_value());
        m.insert("partitions", self.partitions.to_json_value());
        m.insert("crashes", self.crashes.to_json_value());
        if !self.adversarial.is_quiet() {
            m.insert("adversarial", self.adversarial.to_json_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for FaultModel {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(FaultModel {
            drop: Deserialize::from_json_value(&v["drop"])?,
            duplicate: Deserialize::from_json_value(&v["duplicate"])?,
            partitions: Deserialize::from_json_value(&v["partitions"])?,
            crashes: Deserialize::from_json_value(&v["crashes"])?,
            adversarial: match v.get_object_key("adversarial") {
                Some(a) => Deserialize::from_json_value(a)?,
                None => AdversarialModel::default(),
            },
        })
    }
}

impl FaultModel {
    /// The quiet model: a perfect wire.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Sets the per-frame drop probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`] (NaN fails the range check too — it compares
    /// false to everything).
    pub fn with_drop(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "drop",
                value: p,
            });
        }
        self.drop = p;
        Ok(self)
    }

    /// Sets the per-frame duplication probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`].
    pub fn with_duplication(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "duplication",
                value: p,
            });
        }
        self.duplicate = p;
        Ok(self)
    }

    /// Sets the per-frame payload-corruption probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`].
    pub fn with_corruption(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "corruption",
                value: p,
            });
        }
        self.adversarial.corrupt = p;
        Ok(self)
    }

    /// Sets the per-control-frame forgery probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`].
    pub fn with_forgery(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "forgery",
                value: p,
            });
        }
        self.adversarial.forge = p;
        Ok(self)
    }

    /// Sets the per-frame stale-replay probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`].
    pub fn with_stale_replay(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "stale-replay",
                value: p,
            });
        }
        self.adversarial.replay_stale = p;
        Ok(self)
    }

    /// Sets the per-frame reordering-burst probability.
    ///
    /// # Errors
    /// Rejects NaN and anything outside `[0, 1]` with a structured
    /// [`FaultConfigError`].
    pub fn with_reordering(mut self, p: f64) -> Result<Self, FaultConfigError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultConfigError::InvalidProbability {
                knob: "reordering",
                value: p,
            });
        }
        self.adversarial.reorder = p;
        Ok(self)
    }

    /// Adds a symmetric partition between `a` and `b` over `[from, until)`.
    pub fn with_partition(mut self, a: usize, b: usize, from: u64, until: u64) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Adds a crash of `process` at tick `at`, restarting at `restart`
    /// (or never, if `None`).
    pub fn with_crash(mut self, process: usize, at: u64, restart: Option<u64>) -> Self {
        self.crashes.push(CrashSchedule {
            process,
            at,
            restart,
        });
        self
    }

    /// Checks the schedules against a concrete process count: partition
    /// endpoints and crash targets must exist, partition windows must be
    /// non-empty, crashes must restart strictly after they happen. The
    /// builder-validated probabilities (benign *and* adversarial) are
    /// rechecked too, since the fields are public and a deserialized
    /// model never went through the builders.
    ///
    /// # Errors
    /// The first offending knob, [`Partition`], or [`CrashSchedule`].
    pub fn validate_for(&self, processes: usize) -> Result<(), FaultConfigError> {
        for (knob, value) in [("drop", self.drop), ("duplication", self.duplicate)] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::InvalidProbability { knob, value });
            }
        }
        self.adversarial.validate()?;
        for p in &self.partitions {
            if p.a >= processes || p.b >= processes || p.a == p.b || p.until <= p.from {
                return Err(FaultConfigError::InvalidPartition(*p));
            }
        }
        for c in &self.crashes {
            let bad_restart = matches!(c.restart, Some(r) if r <= c.at);
            if c.process >= processes || bad_restart {
                return Err(FaultConfigError::InvalidCrash(*c));
            }
        }
        Ok(())
    }

    /// `true` if this model can never perturb a run: the kernel takes
    /// the exact pre-fault code path.
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.adversarial.is_quiet()
    }

    /// Is the `from -> to` link severed by a partition at time `t`?
    pub fn link_blocked(&self, from: usize, to: usize, t: u64) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == from && p.b == to) || (p.a == to && p.b == from)) && t >= p.from && t < p.until
        })
    }

    /// Is `process` down at time `t`? Returns `Some(restart)` with the
    /// scheduled restart tick (`None` inside means a permanent crash),
    /// or `None` if the process is up.
    pub fn down_until(&self, process: usize, t: u64) -> Option<Option<u64>> {
        self.crashes
            .iter()
            .filter(|c| c.process == process && t >= c.at)
            .find(|c| match c.restart {
                None => true,
                Some(r) => t < r,
            })
            .map(|c| c.restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        assert!(FaultModel::none().is_quiet());
        assert!(FaultModel::default().is_quiet());
    }

    #[test]
    fn builders_mark_model_noisy() {
        assert!(!FaultModel::none().with_drop(0.1).unwrap().is_quiet());
        assert!(!FaultModel::none().with_duplication(0.1).unwrap().is_quiet());
        assert!(!FaultModel::none().with_partition(0, 1, 5, 10).is_quiet());
        assert!(!FaultModel::none().with_crash(2, 100, None).is_quiet());
        // Zero probabilities alone stay quiet.
        assert!(FaultModel::none()
            .with_drop(0.0)
            .unwrap()
            .with_duplication(0.0)
            .unwrap()
            .is_quiet());
    }

    #[test]
    fn probabilities_rejected_with_structured_errors() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = FaultModel::none().with_drop(bad).unwrap_err();
            match e {
                FaultConfigError::InvalidProbability { knob, value } => {
                    assert_eq!(knob, "drop");
                    assert!(value.is_nan() == bad.is_nan() && (value.is_nan() || value == bad));
                }
                other => panic!("wrong error: {other:?}"),
            }
            let e = FaultModel::none().with_duplication(bad).unwrap_err();
            assert!(
                matches!(
                    e,
                    FaultConfigError::InvalidProbability {
                        knob: "duplication",
                        ..
                    }
                ),
                "{e:?}"
            );
            assert!(e.to_string().contains("not in [0, 1]"), "{e}");
        }
        // Boundary values are accepted.
        assert!(FaultModel::none().with_drop(0.0).is_ok());
        assert!(FaultModel::none().with_drop(1.0).is_ok());
        assert!(FaultModel::none().with_duplication(1.0).is_ok());
    }

    #[test]
    fn schedules_validated_against_process_count() {
        assert!(FaultModel::none()
            .with_partition(0, 1, 5, 10)
            .with_crash(2, 100, Some(200))
            .validate_for(3)
            .is_ok());
        // Endpoint out of range.
        let e = FaultModel::none()
            .with_partition(0, 3, 5, 10)
            .validate_for(3)
            .unwrap_err();
        assert!(matches!(e, FaultConfigError::InvalidPartition(_)), "{e:?}");
        // Self-partition and empty window.
        assert!(FaultModel::none()
            .with_partition(1, 1, 5, 10)
            .validate_for(3)
            .is_err());
        assert!(FaultModel::none()
            .with_partition(0, 1, 10, 10)
            .validate_for(3)
            .is_err());
        // Crash target out of range; restart not after crash.
        let e = FaultModel::none()
            .with_crash(5, 10, None)
            .validate_for(3)
            .unwrap_err();
        assert!(matches!(e, FaultConfigError::InvalidCrash(_)), "{e:?}");
        assert!(FaultModel::none()
            .with_crash(0, 10, Some(10))
            .validate_for(3)
            .is_err());
        assert!(FaultModel::none()
            .with_crash(0, 10, Some(11))
            .validate_for(3)
            .is_ok());
    }

    #[test]
    fn adversarial_builders_mark_model_noisy() {
        assert!(!FaultModel::none().with_corruption(0.1).unwrap().is_quiet());
        assert!(!FaultModel::none().with_forgery(0.1).unwrap().is_quiet());
        assert!(!FaultModel::none()
            .with_stale_replay(0.1)
            .unwrap()
            .is_quiet());
        assert!(!FaultModel::none().with_reordering(0.1).unwrap().is_quiet());
        // All-zero adversarial knobs keep the whole model quiet.
        assert!(FaultModel::none()
            .with_corruption(0.0)
            .unwrap()
            .with_forgery(0.0)
            .unwrap()
            .with_stale_replay(0.0)
            .unwrap()
            .with_reordering(0.0)
            .unwrap()
            .is_quiet());
    }

    #[test]
    fn adversarial_probabilities_rejected_with_knob_names() {
        for (knob, build) in [
            (
                "corruption",
                (|p| FaultModel::none().with_corruption(p)) as fn(f64) -> _,
            ),
            ("forgery", |p| FaultModel::none().with_forgery(p)),
            ("stale-replay", |p| FaultModel::none().with_stale_replay(p)),
            ("reordering", |p| FaultModel::none().with_reordering(p)),
        ] {
            for bad in [-0.1, 1.5, f64::NAN] {
                let e = build(bad).unwrap_err();
                assert!(
                    matches!(e, FaultConfigError::InvalidProbability { knob: k, .. } if k == knob),
                    "{knob}: {e:?}"
                );
            }
            assert!(build(0.0).is_ok());
            assert!(build(1.0).is_ok());
        }
    }

    #[test]
    fn validate_for_rechecks_probabilities() {
        // Fields are public: an out-of-range knob set directly (or via a
        // crafted trace) must be caught at validation time.
        let mut f = FaultModel::none();
        f.adversarial.forge = 2.0;
        let e = f.validate_for(3).unwrap_err();
        assert!(
            matches!(
                e,
                FaultConfigError::InvalidProbability {
                    knob: "forgery",
                    ..
                }
            ),
            "{e:?}"
        );
        let mut f = FaultModel::none();
        f.drop = -1.0;
        assert!(f.validate_for(3).is_err());
    }

    #[test]
    fn quiet_model_serializes_without_adversarial_key() {
        let quiet = FaultModel::none().with_drop(0.15).unwrap();
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(!json.contains("adversarial"), "{json}");
        // Legacy JSON (no adversarial key) deserializes to a quiet
        // adversarial sub-model.
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, quiet);
        assert!(back.adversarial.is_quiet());
    }

    #[test]
    fn noisy_adversarial_round_trips() {
        let noisy = FaultModel::none()
            .with_corruption(0.25)
            .unwrap()
            .with_stale_replay(0.1)
            .unwrap()
            .with_crash(1, 100, Some(500));
        let json = serde_json::to_string(&noisy).unwrap();
        assert!(json.contains("adversarial"), "{json}");
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, noisy);
    }

    #[test]
    fn partitions_are_symmetric_and_windowed() {
        let f = FaultModel::none().with_partition(0, 2, 10, 20);
        assert!(f.link_blocked(0, 2, 10));
        assert!(f.link_blocked(2, 0, 19));
        assert!(!f.link_blocked(0, 2, 9), "before the window");
        assert!(!f.link_blocked(0, 2, 20), "until is exclusive");
        assert!(!f.link_blocked(0, 1, 15), "unrelated link");
    }

    #[test]
    fn crash_windows() {
        let f = FaultModel::none()
            .with_crash(1, 10, Some(20))
            .with_crash(2, 5, None);
        assert_eq!(f.down_until(1, 9), None, "before crash");
        assert_eq!(f.down_until(1, 10), Some(Some(20)));
        assert_eq!(f.down_until(1, 19), Some(Some(20)));
        assert_eq!(f.down_until(1, 20), None, "restarted");
        assert_eq!(f.down_until(2, 5), Some(None), "permanent");
        assert_eq!(f.down_until(2, 1_000_000), Some(None));
        assert_eq!(f.down_until(0, 50), None, "other processes unaffected");
    }
}

//! Channel latency models.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a frame spends in transit. All models are sampled from the
/// simulation's seeded RNG, so runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every frame takes exactly this long — channels behave FIFO.
    Fixed(u64),
    /// Uniform in `[lo, hi]` — frames reorder freely (the adversarial
    /// default for protocol testing).
    Uniform {
        /// Minimum latency (inclusive).
        lo: u64,
        /// Maximum latency (inclusive).
        hi: u64,
    },
    /// Uniform in `[lo, hi]` but occasionally (probability `1/slow_every`)
    /// multiplied by `slow_factor` — models stragglers that force deep
    /// reordering.
    Straggler {
        /// Minimum base latency.
        lo: u64,
        /// Maximum base latency.
        hi: u64,
        /// One in `slow_every` frames straggles; `0` disables straggling
        /// entirely.
        slow_every: u32,
        /// Multiplier applied to stragglers.
        slow_factor: u64,
    },
}

/// A latency computation exceeded `u64` — saturating would silently pin
/// the frame at `t = u64::MAX` and wedge the event queue, so the kernel
/// surfaces this as a structured [`SimError`] instead.
///
/// [`SimError`]: crate::SimError
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyOverflow {
    /// The base latency that was being scaled.
    pub base: u64,
    /// The straggler multiplier that overflowed it.
    pub factor: u64,
}

impl std::fmt::Display for LatencyOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency overflow: {} * {} exceeds u64",
            self.base, self.factor
        )
    }
}

impl LatencyModel {
    /// Samples a latency (at least 1 tick so causality is never
    /// instantaneous).
    ///
    /// Straggler multiplication is checked: a product past `u64::MAX`
    /// returns [`LatencyOverflow`] rather than saturating, because a
    /// frame scheduled at `u64::MAX` can never be dispatched and every
    /// later event would be starved behind it.
    pub fn sample(&self, rng: &mut StdRng) -> Result<u64, LatencyOverflow> {
        let raw = match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LatencyModel::Straggler {
                lo,
                hi,
                slow_every,
                slow_factor,
            } => {
                let base = rng.gen_range(lo..=hi);
                if slow_every > 0 && rng.gen_ratio(1, slow_every) {
                    base.checked_mul(slow_factor).ok_or(LatencyOverflow {
                        base,
                        factor: slow_factor,
                    })?
                } else {
                    base
                }
            }
        };
        Ok(raw.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(LatencyModel::Fixed(7).sample(&mut rng), Ok(7));
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let d = LatencyModel::Uniform { lo: 5, hi: 9 }
                .sample(&mut rng)
                .unwrap();
            assert!((5..=9).contains(&d));
        }
    }

    #[test]
    fn zero_latency_clamped_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(LatencyModel::Fixed(0).sample(&mut rng), Ok(1));
    }

    #[test]
    fn straggler_sometimes_slow() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::Straggler {
            lo: 10,
            hi: 10,
            slow_every: 3,
            slow_factor: 50,
        };
        let samples: Vec<u64> = (0..100).map(|_| m.sample(&mut rng).unwrap()).collect();
        assert!(samples.contains(&10));
        assert!(samples.contains(&500));
    }

    #[test]
    fn straggler_zero_means_never() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = LatencyModel::Straggler {
            lo: 10,
            hi: 10,
            slow_every: 0,
            slow_factor: 50,
        };
        for _ in 0..200 {
            assert_eq!(
                m.sample(&mut rng),
                Ok(10),
                "slow_every = 0 must never straggle"
            );
        }
    }

    #[test]
    fn straggler_one_means_always() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = LatencyModel::Straggler {
            lo: 10,
            hi: 10,
            slow_every: 1,
            slow_factor: 50,
        };
        for _ in 0..50 {
            assert_eq!(
                m.sample(&mut rng),
                Ok(500),
                "slow_every = 1 straggles every frame"
            );
        }
    }

    #[test]
    fn straggler_overflow_is_structured_not_saturated() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = LatencyModel::Straggler {
            lo: u64::MAX / 2,
            hi: u64::MAX / 2,
            slow_every: 1,
            slow_factor: 3,
        };
        assert_eq!(
            m.sample(&mut rng),
            Err(LatencyOverflow {
                base: u64::MAX / 2,
                factor: 3,
            })
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LatencyModel::Uniform { lo: 1, hi: 1000 };
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| m.sample(&mut rng).unwrap()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| m.sample(&mut rng).unwrap()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrips_through_serde() {
        for m in [
            LatencyModel::Fixed(3),
            LatencyModel::Uniform { lo: 1, hi: 500 },
            LatencyModel::Straggler {
                lo: 1,
                hi: 20,
                slow_every: 7,
                slow_factor: 100,
            },
        ] {
            let bytes = serde_json::to_vec(&m).unwrap();
            let back: LatencyModel = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(m, back);
        }
    }
}

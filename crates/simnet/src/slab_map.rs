//! [`SortedSlab`] — a flat ordered map for hashable protocol state.
//!
//! The deduplicating explorer fingerprints protocol state through
//! `std::hash::Hash` ([`encode_protocol`](crate::explore)); a
//! `BTreeMap` there means the hasher pointer-chases tree nodes on every
//! canonicalization. `SortedSlab` keeps the same canonical semantics —
//! entries ordered by key, order-independent equality and hashing — in
//! one contiguous `Vec<(K, V)>`, so the KeyCache walks (and hashes)
//! adjacent words instead of a tree. Protocol maps are tiny (per-peer
//! sequence counters, a handful of in-flight frames), which makes the
//! `O(n)` shifts of sorted-vector insertion cheaper in practice than
//! tree rebalancing, and lookups a branch-predictable binary search.
//!
//! Serde encodes a slab exactly like the `BTreeMap` it replaces — a
//! JSON object keyed by the stringified keys in ascending order — so
//! wire tags and golden traces are byte-identical across the swap.

use serde::{Deserialize, Error, MapKey, Serialize, Value};

/// An ordered map stored as a key-sorted `Vec<(K, V)>`.
///
/// Drop-in for the `BTreeMap` patterns protocol state uses: `Hash`,
/// `Eq` and iteration all follow ascending key order, so any two slabs
/// holding the same entries are indistinguishable — the property the
/// explorer's configuration dedup relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortedSlab<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SortedSlab<K, V> {
    fn default() -> Self {
        SortedSlab {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord, V> SortedSlab<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SortedSlab::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable lookup of `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value under `key`, inserting `make()` first if absent — the
    /// `entry(k).or_insert_with(make)` pattern.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SortedSlab<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = SortedSlab::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a, K, V> IntoIterator for &'a SortedSlab<K, V> {
    type Item = &'a (K, V);
    type IntoIter = std::slice::Iter<'a, (K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for SortedSlab<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = serde::Map::new();
        for (k, v) in &self.entries {
            m.insert(k.to_key(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for SortedSlab<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::BTreeMap;
    use std::hash::{Hash, Hasher};

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SortedSlab::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3u64, "c"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(2, "B"), Some("b"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&2), Some(&"B"));
        assert_eq!(m.get(&9), None);
        *m.get_mut(&1).unwrap() = "A";
        assert_eq!(m.remove(&1), Some("A"));
        assert_eq!(m.remove(&1), None);
        let keys: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3], "ascending key order");
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut m: SortedSlab<usize, u64> = SortedSlab::new();
        *m.get_or_insert_with(7, || 0) += 1;
        *m.get_or_insert_with(7, || 100) += 1;
        assert_eq!(m.get(&7), Some(&2));
    }

    /// Equal contents hash equal regardless of insertion order — the
    /// canonical-digest property the explorer dedup requires.
    #[test]
    fn hash_is_insertion_order_independent() {
        let a: SortedSlab<usize, u64> = [(1, 10), (2, 20), (3, 30)].into_iter().collect();
        let b: SortedSlab<usize, u64> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        assert_eq!(a, b);
        let digest = |m: &SortedSlab<usize, u64>| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
    }

    /// The serde encoding is byte-identical to the `BTreeMap` this type
    /// replaces, keeping wire tags and golden traces stable.
    #[test]
    fn serializes_like_btreemap() {
        let slab: SortedSlab<usize, Vec<u64>> =
            [(2, vec![5, 6]), (0, vec![1])].into_iter().collect();
        let tree: BTreeMap<usize, Vec<u64>> = [(2, vec![5, 6]), (0, vec![1])].into_iter().collect();
        let a = serde_json::to_vec(&slab).unwrap();
        let b = serde_json::to_vec(&tree).unwrap();
        assert_eq!(a, b);
        let back: SortedSlab<usize, Vec<u64>> = serde_json::from_slice(&a).unwrap();
        assert_eq!(back, slab);
    }
}

//! Workloads: timed user send requests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One user send request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendSpec {
    /// When the user invokes the send (`x.s*`).
    pub at: u64,
    /// Sending process.
    pub src: usize,
    /// Receiving process.
    pub dst: usize,
    /// Optional message color (red markers, handoff, ...).
    pub color: Option<String>,
}

/// A batch of user send requests driven into the simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// The requests; the kernel sorts them by time.
    pub sends: Vec<SendSpec>,
}

impl Workload {
    /// `n` messages between uniformly random distinct process pairs, at
    /// uniformly random times in `[0, 10n)`.
    pub fn uniform_random(processes: usize, n: usize, seed: u64) -> Workload {
        assert!(processes >= 2, "need at least two processes");
        let mut rng = StdRng::seed_from_u64(seed);
        let sends = (0..n)
            .map(|_| {
                let src = rng.gen_range(0..processes);
                let mut dst = rng.gen_range(0..processes);
                while dst == src {
                    dst = rng.gen_range(0..processes);
                }
                SendSpec {
                    at: rng.gen_range(0..(10 * n as u64).max(1)),
                    src,
                    dst,
                    color: None,
                }
            })
            .collect();
        Workload { sends }
    }

    /// A bursty client-server pattern: all clients fire volleys at a
    /// single server at nearly the same instants — maximal reordering
    /// pressure per destination.
    pub fn client_server(processes: usize, bursts: usize, per_burst: usize, seed: u64) -> Workload {
        assert!(processes >= 2, "need at least two processes");
        let mut rng = StdRng::seed_from_u64(seed);
        let server = 0usize;
        let mut sends = Vec::new();
        for b in 0..bursts {
            let t0 = (b as u64) * 1_000;
            for _ in 0..per_burst {
                let src = rng.gen_range(1..processes);
                sends.push(SendSpec {
                    at: t0 + rng.gen_range(0..5),
                    src,
                    dst: server,
                    color: None,
                });
            }
        }
        Workload { sends }
    }

    /// A causal-relay chain: P0 messages P1, P1 relays to P2, ... —
    /// stresses cross-channel causal delivery. Requests are spaced so
    /// each hop's send happens after the previous delivery would
    /// typically land.
    pub fn relay_chain(processes: usize, rounds: usize) -> Workload {
        assert!(processes >= 2, "need at least two processes");
        let mut sends = Vec::new();
        for round in 0..rounds {
            for hop in 0..processes - 1 {
                sends.push(SendSpec {
                    at: (round * processes + hop) as u64 * 500,
                    src: hop,
                    dst: hop + 1,
                    color: None,
                });
            }
        }
        Workload { sends }
    }

    /// Mixed traffic with every `marker_every`-th message colored — for
    /// the flush-channel experiments.
    pub fn with_markers(
        processes: usize,
        n: usize,
        marker_every: usize,
        color: &str,
        seed: u64,
    ) -> Workload {
        let mut w = Workload::uniform_random(processes, n, seed);
        for (i, s) in w.sends.iter_mut().enumerate() {
            if marker_every > 0 && i % marker_every == marker_every - 1 {
                s.color = Some(color.to_owned());
            }
        }
        w
    }

    /// Broadcast rounds: each round one random origin "broadcasts" by
    /// requesting `n - 1` unicasts (one per other process) at the same
    /// instant. This is the multicast shape the paper's closing remark
    /// points at; the BSS causal-broadcast protocol consumes it.
    ///
    /// All the unicasts of one broadcast share the color
    /// `bcast<round>` so verifiers can group them.
    pub fn broadcast_rounds(processes: usize, rounds: usize, seed: u64) -> Workload {
        assert!(processes >= 2, "need at least two processes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sends = Vec::new();
        for round in 0..rounds {
            let origin = rng.gen_range(0..processes);
            // A jittered instant inside the round's own window, so the
            // instants of different broadcasts never collide (one
            // instant per origin identifies one broadcast's fan-out).
            let at = round as u64 * 200 + rng.gen_range(0..180);
            for dst in 0..processes {
                if dst != origin {
                    sends.push(SendSpec {
                        at,
                        src: origin,
                        dst,
                        color: Some(format!("bcast{round}")),
                    });
                }
            }
        }
        Workload { sends }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_shape() {
        let w = Workload::uniform_random(4, 50, 9);
        assert_eq!(w.len(), 50);
        assert!(w
            .sends
            .iter()
            .all(|s| s.src != s.dst && s.src < 4 && s.dst < 4));
    }

    #[test]
    fn uniform_random_deterministic() {
        assert_eq!(
            Workload::uniform_random(3, 20, 5),
            Workload::uniform_random(3, 20, 5)
        );
    }

    #[test]
    fn client_server_targets_server() {
        let w = Workload::client_server(4, 3, 5, 1);
        assert_eq!(w.len(), 15);
        assert!(w.sends.iter().all(|s| s.dst == 0 && s.src != 0));
    }

    #[test]
    fn relay_chain_hops() {
        let w = Workload::relay_chain(3, 2);
        assert_eq!(w.len(), 4);
        assert_eq!((w.sends[0].src, w.sends[0].dst), (0, 1));
        assert_eq!((w.sends[1].src, w.sends[1].dst), (1, 2));
    }

    #[test]
    fn markers_colored() {
        let w = Workload::with_markers(3, 10, 5, "red", 2);
        let reds: Vec<usize> = w
            .sends
            .iter()
            .enumerate()
            .filter(|(_, s)| s.color.as_deref() == Some("red"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reds, vec![4, 9]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_process_rejected() {
        let _ = Workload::uniform_random(1, 5, 0);
    }

    #[test]
    fn broadcast_rounds_fan_out() {
        let w = Workload::broadcast_rounds(4, 3, 1);
        assert_eq!(w.len(), 9, "3 rounds x 3 receivers");
        // each round: same origin, same time, distinct destinations
        for round in 0..3 {
            let color = format!("bcast{round}");
            let group: Vec<_> = w
                .sends
                .iter()
                .filter(|s| s.color.as_deref() == Some(&color))
                .collect();
            assert_eq!(group.len(), 3);
            assert!(group.iter().all(|s| s.src == group[0].src));
            assert!(group.iter().all(|s| s.at == group[0].at));
            let mut dsts: Vec<usize> = group.iter().map(|s| s.dst).collect();
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), 3);
        }
    }
}

//! The transport-agnostic protocol/host boundary (DESIGN.md §13).
//!
//! The kernel drives protocols through [`Ctx`], which historically
//! borrowed the simulator's `World` directly — so a protocol instance
//! could only ever run *inside* the simulator. This module extracts the
//! boundary: a protocol consumes framed inbound events ([`HostEvent`])
//! and emits outbound frames plus delivery decisions ([`HostAction`]),
//! with no kernel types in the signature. Any `impl Protocol` is a
//! [`ProtocolHost`] for free (the blanket impl routes events through a
//! buffering [`Ctx`]), which is what lets the six registry protocols and
//! the reliable link run unmodified under both the simnet kernel and a
//! real socket runtime.
//!
//! The split mirrors febft's `poll`/`process_message` ordering-protocol
//! interface: the *host* owns I/O, time, and scheduling; the *protocol*
//! owns ordering state and answers each event with a batch of actions
//! that the host applies (and journals) at one logical instant.

use crate::kernel::{Ctx, Protocol, RejectReason};
use crate::workload::Workload;
use msgorder_runs::{MessageId, MessageMeta, ProcessId};
use serde::{Deserialize, Serialize};

/// One framed inbound event a host feeds to a protocol instance.
///
/// These are exactly the protocol-visible occurrences of the simnet
/// kernel — init, send request (`x.s*` just executed), user frame
/// arrival (`x.r*` just executed), control frame arrival, timer — but
/// carry no kernel types, so they serialize onto a wire unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostEvent {
    /// One-time initialization, before any other event.
    Init,
    /// The user requested a send of `msg` (the host already recorded
    /// `x.s*`).
    Request {
        /// The requested workload message.
        msg: MessageId,
    },
    /// A user frame arrived (the host already recorded `x.r*`).
    UserFrame {
        /// Sending process.
        from: ProcessId,
        /// The workload message on the frame.
        msg: MessageId,
        /// Piggybacked protocol tag bytes.
        tag: Vec<u8>,
    },
    /// A control frame arrived.
    ControlFrame {
        /// Sending process.
        from: ProcessId,
        /// Opaque control payload.
        bytes: Vec<u8>,
    },
    /// A timer set via [`HostAction::SetTimer`] fired.
    Timer {
        /// The protocol's timer id.
        id: u64,
    },
}

/// One outbound action a protocol emits in response to a [`HostEvent`]:
/// a frame to put on the wire, a delivery decision, or a timer request.
///
/// The host applies the whole batch at the event's logical time and is
/// responsible for validation (ownership, double delivery, …) — under
/// the simnet kernel invalid actions poison the run into a structured
/// counterexample exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostAction {
    /// Execute the send `x.s` of `msg`, piggybacking `tag`.
    SendUser {
        /// The message to send.
        msg: MessageId,
        /// Piggybacked tag bytes.
        tag: Vec<u8>,
    },
    /// Retransmit a previously sent user frame.
    ResendUser {
        /// The message to retransmit.
        msg: MessageId,
        /// Fresh tag bytes for the retransmitted copy.
        tag: Vec<u8>,
    },
    /// Execute the delivery `x.r` of `msg`.
    Deliver {
        /// The message to deliver.
        msg: MessageId,
    },
    /// Send a control frame.
    SendControl {
        /// Destination process.
        to: ProcessId,
        /// Opaque control payload.
        bytes: Vec<u8>,
    },
    /// Retransmit a control frame.
    ResendControl {
        /// Destination process.
        to: ProcessId,
        /// The retransmitted payload.
        bytes: Vec<u8>,
    },
    /// Request a timer callback after `delay` ticks.
    SetTimer {
        /// Ticks until the timer fires (clamped to ≥ 1 by the host).
        delay: u64,
        /// The protocol's timer id, echoed back in
        /// [`HostEvent::Timer`].
        id: u64,
    },
    /// Record that an incoming frame was refused (corrupted, forged,
    /// stale, or replayed) rather than acted on.
    RejectFrame {
        /// The claimed sender of the rejected frame.
        from: ProcessId,
        /// Why the frame was refused.
        reason: RejectReason,
    },
}

impl HostAction {
    /// Whether applying this action puts a frame on the wire (and thus
    /// consumes one transmit decision in the kernel).
    pub fn is_transmit(&self) -> bool {
        matches!(
            self,
            HostAction::SendUser { .. }
                | HostAction::ResendUser { .. }
                | HostAction::SendControl { .. }
                | HostAction::ResendControl { .. }
        )
    }
}

/// The protocol-side view of a host: static facts (node id, process
/// count, workload message metadata), the current logical time, and the
/// action buffer the protocol writes into.
///
/// A host keeps one `HostEnv` per protocol instance, updates
/// [`set_now`](HostEnv::set_now) before each event, and drains the
/// emitted actions with [`take_actions`](HostEnv::take_actions) after.
#[derive(Debug, Clone)]
pub struct HostEnv {
    pub(crate) node: usize,
    pub(crate) processes: usize,
    pub(crate) now: u64,
    /// This process's crash/restart epoch (0 until its first restart);
    /// the host's supervisor is authoritative.
    pub(crate) epoch: u64,
    pub(crate) metas: Vec<MessageMeta>,
    pub(crate) actions: Vec<HostAction>,
}

impl HostEnv {
    /// An environment for process `node` of `processes`, with workload
    /// message metadata derived from `workload` (ids are assigned in
    /// workload order, matching the kernel's numbering).
    pub fn new(node: usize, processes: usize, workload: &Workload) -> HostEnv {
        let metas = workload
            .sends
            .iter()
            .enumerate()
            .map(|(i, spec)| MessageMeta {
                id: MessageId(i),
                src: ProcessId(spec.src),
                dst: ProcessId(spec.dst),
                color: spec.color.clone(),
            })
            .collect();
        HostEnv {
            node,
            processes,
            now: 0,
            epoch: 0,
            metas,
            actions: Vec::new(),
        }
    }

    /// This environment's process id.
    pub fn node(&self) -> ProcessId {
        ProcessId(self.node)
    }

    /// The logical time the next event executes at.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sets the logical time of the next event (the host's clock is
    /// authoritative; protocols only read it via [`Ctx::now`]).
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// This process's crash/restart epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the crash/restart epoch (the host's supervisor bumps this
    /// when it restarts the process; protocols read it via
    /// [`Ctx::epoch`]).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Drains the actions the protocol emitted since the last call, in
    /// emission order.
    pub fn take_actions(&mut self) -> Vec<HostAction> {
        std::mem::take(&mut self.actions)
    }

    pub(crate) fn push(&mut self, action: HostAction) {
        self.actions.push(action);
    }
}

/// A protocol instance viewed through the transport-agnostic boundary:
/// consume one framed inbound event, emit outbound frames and delivery
/// decisions into the environment's action buffer.
///
/// Every [`Protocol`] implements this for free via the blanket impl —
/// including `Box<dyn Protocol>`, so registry-instantiated protocols
/// drive real transports unmodified.
pub trait ProtocolHost {
    /// Processes `ev`, appending emitted actions to `env`.
    fn process_event(&mut self, env: &mut HostEnv, ev: HostEvent);
}

impl<P: Protocol + ?Sized> ProtocolHost for P {
    fn process_event(&mut self, env: &mut HostEnv, ev: HostEvent) {
        let mut ctx = Ctx::host(env);
        match ev {
            HostEvent::Init => self.on_init(&mut ctx),
            HostEvent::Request { msg } => self.on_send_request(&mut ctx, msg),
            HostEvent::UserFrame { from, msg, tag } => self.on_user_frame(&mut ctx, from, msg, tag),
            HostEvent::ControlFrame { from, bytes } => self.on_control_frame(&mut ctx, from, bytes),
            HostEvent::Timer { id } => self.on_timer(&mut ctx, id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SendSpec;

    /// Send-and-deliver-immediately, with a control ping per frame.
    struct Chatty;
    impl Protocol for Chatty {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, vec![7]);
            ctx.set_timer(10, 99);
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
            ctx.send_control(from, vec![1, 2]);
        }
    }

    fn workload() -> Workload {
        Workload {
            sends: vec![SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            }],
        }
    }

    #[test]
    fn blanket_impl_buffers_actions_in_emission_order() {
        let mut env = HostEnv::new(0, 2, &workload());
        env.set_now(5);
        let mut p = Chatty;
        p.process_event(&mut env, HostEvent::Request { msg: MessageId(0) });
        let actions = env.take_actions();
        assert_eq!(
            actions,
            vec![
                HostAction::SendUser {
                    msg: MessageId(0),
                    tag: vec![7],
                },
                HostAction::SetTimer { delay: 10, id: 99 },
            ]
        );
        assert!(env.take_actions().is_empty(), "drained");
    }

    #[test]
    fn host_ctx_reports_env_facts() {
        struct Probe;
        impl Protocol for Probe {
            fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
                assert_eq!(ctx.node(), ProcessId(0));
                assert_eq!(ctx.now(), 41);
                assert_eq!(ctx.process_count(), 2);
                assert_eq!(ctx.meta(msg).dst, ProcessId(1));
            }
            fn on_user_frame(
                &mut self,
                _ctx: &mut Ctx<'_>,
                _from: ProcessId,
                _msg: MessageId,
                _tag: Vec<u8>,
            ) {
            }
        }
        let mut env = HostEnv::new(0, 2, &workload());
        env.set_now(41);
        Probe.process_event(&mut env, HostEvent::Request { msg: MessageId(0) });
    }

    #[test]
    fn boxed_dyn_protocol_is_a_protocol_host() {
        let mut env = HostEnv::new(1, 2, &workload());
        let mut p: Box<dyn Protocol> = Box::new(Chatty);
        p.process_event(
            &mut env,
            HostEvent::UserFrame {
                from: ProcessId(0),
                msg: MessageId(0),
                tag: vec![7],
            },
        );
        let actions = env.take_actions();
        assert_eq!(actions.len(), 2);
        assert_eq!(
            actions[0],
            HostAction::Deliver { msg: MessageId(0) },
            "delivery decision travels through the boundary"
        );
        assert!(actions[1].is_transmit());
    }

    #[test]
    fn host_events_and_actions_serialize_for_the_wire() {
        let ev = HostEvent::UserFrame {
            from: ProcessId(2),
            msg: MessageId(5),
            tag: vec![0xAB, 0x01],
        };
        let json = serde_json::to_string(&ev).expect("serializes");
        let back: HostEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, ev);

        let a = HostAction::SetTimer {
            delay: 2_000,
            id: 1 << 63,
        };
        let json = serde_json::to_string(&a).expect("serializes");
        let back: HostAction = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, a);
    }
}

//! Exhaustive schedule exploration: model-check a protocol over *every*
//! network ordering of a small workload instead of sampling seeds.
//!
//! The timed kernel resolves nondeterminism with sampled latencies; the
//! explorer instead branches on **which pending event fires next** —
//! any in-flight frame or timer, or each process's next unissued
//! request — and DFS-enumerates all interleavings, cloning the whole
//! world at each branch. Every complete schedule's captured run is
//! handed to the visitor, which typically checks a specification.
//!
//! Three layers keep the search tractable beyond toy workloads (all
//! opt-in through [`ExploreOptions`]; the classic entry points
//! [`explore`], [`explore_monitored`], [`explore_dedup`] and
//! [`explore_parallel`] keep their original semantics):
//!
//! 1. **Sleep-set partial-order reduction** ([`ExploreOptions::por`]).
//!    Two enabled events *commute* iff they dispatch at different
//!    processes under a quiet fault model: a dispatch at `p` only
//!    mutates `protocols[p]`, `p`'s slice of the captured run, and
//!    per-message state no co-enabled event at another node can touch.
//!    Sleep sets (Godefroid) then prune every interleaving of commuting
//!    dispatches but one, preserving the *set* of terminal
//!    configurations and therefore the set of distinct runs — and in
//!    particular every violating configuration.
//! 2. **A work-stealing frontier** sharded by state fingerprint
//!    ([`ExploreOptions::threads`]). Workers run depth-first on their
//!    own deque and donate subtrees whenever the global queue runs low,
//!    so threads stay busy all the way to the leaves instead of only
//!    across top-level branches.
//! 3. **Incremental state keys** ([`ExploreOptions::dedup`]). The
//!    canonical configuration key is maintained per dispatch (per-node
//!    protocol encodings, per-process run chains, a mirrored pool
//!    encoding) instead of re-hashed from scratch, together with a
//!    128-bit rolling fingerprint. The seen-set can be exact
//!    (full keys), or compact (fingerprints only) with an optional
//!    bound and disk spill so state counts can exceed RAM.
//!
//! Under exploration the clock is frozen at `0`: event times are then
//! path-independent, which is what makes commuting prefixes reach
//! byte-identical configurations. Schedules still explode
//! combinatorially; keep workloads small and use `cap` (the count of
//! *completed schedules*; the search stops once reached).

use crate::error::SimError;
use crate::faults::FaultModel;
use crate::kernel::{EventKind, KernelEvent, Protocol, Scheduled, SimConfig, Simulation};
use crate::liveness::{self, LivenessVerdict};
use crate::workload::Workload;
use msgorder_runs::{StreamingRun, SystemEvent, SystemRun};
use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::hash::{Hash, Hasher};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Complete schedules visited.
    pub schedules: usize,
    /// Whether the cap, the depth bound, or a full bounded seen-set
    /// stopped the search early.
    pub truncated: bool,
    /// Prefixes condemned by the [`PrefixMonitor`] (and therefore never
    /// extended). Zero for the unmonitored entry points. Under
    /// partial-order reduction this counts condemned *representatives*,
    /// not every condemned interleaving, so it is ≤ the unreduced
    /// count.
    pub pruned: usize,
    /// A protocol bug found along some schedule, with its counterexample
    /// trace; the search stops at the first one.
    pub error: Option<Box<SimError>>,
    /// Complete schedules that ended *non-quiescent* — the protocol
    /// inhibited some message forever along that interleaving.
    pub non_live: usize,
    /// Blame analysis of the first non-quiescent schedule encountered
    /// (under several threads, "first" is whichever worker got there
    /// first).
    pub first_stall: Option<Box<LivenessVerdict>>,
    /// Distinct configurations inserted into the seen-set. Zero when
    /// deduplication is off.
    pub states: usize,
    /// Interior states whose every enabled event was slept — the
    /// branches partial-order reduction never expanded.
    pub sleep_skipped: usize,
    /// Seen-set segments spilled to disk (compact mode with a spill
    /// path).
    pub spilled: usize,
}

impl Exploration {
    fn empty() -> Exploration {
        Exploration {
            schedules: 0,
            truncated: false,
            pruned: 0,
            error: None,
            non_live: 0,
            first_stall: None,
            states: 0,
            sleep_skipped: 0,
            spilled: 0,
        }
    }
}

/// How the explorer's seen-set stores visited configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DedupMode {
    /// No seen-set: a pure (possibly sleep-set-reduced) DFS.
    Off,
    /// Full canonical keys: two configurations merge iff their key
    /// material is byte-identical, so a merge can never lose a
    /// reachable schedule. Unbounded memory.
    Exact,
    /// 128-bit fingerprints only. A fingerprint collision could merge
    /// two distinct configurations (probability ~`n²/2¹²⁸`), so this
    /// mode trades a vanishing soundness risk for a fraction of the
    /// memory — and can be bounded and spilled to disk.
    Compact {
        /// Maximum fingerprints held in RAM across all shards;
        /// `0` means unlimited. When a shard fills and no spill path is
        /// set (or nothing in it can be flushed), the search marks
        /// itself `truncated` and stops entering *new* states.
        max_states: usize,
        /// Directory for overflow segment files. On overflow,
        /// fully-explored fingerprints are flushed as sorted segments
        /// and membership checks fall back to a seek-and-scan with an
        /// in-memory sparse index. Each exploration writes into its own
        /// `run-<pid>-<n>` subdirectory of this path (concurrent runs
        /// sharing a spill directory can never collide) and removes the
        /// subdirectory when the search ends — even when it aborts
        /// mid-way, since cleanup rides the seen-set's `Drop`.
        spill: Option<PathBuf>,
    },
}

/// Tuning knobs for [`explore_with`] / [`explore_parallel_with`] /
/// [`explore_monitored_with`].
///
/// Deduplication (either mode) requires a quiet [`FaultModel`]: the
/// probabilistic fault stream is part of the configuration but cannot
/// be keyed, so the `_with` entry points panic on that combination.
/// Partial-order reduction with non-quiet faults silently degrades to
/// the full search instead — fault verdicts make same-channel events
/// rediscoverable in any order, so no two events are treated as
/// independent.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stop after this many completed schedules (`usize::MAX` = never).
    pub cap: usize,
    /// Enable sleep-set partial-order reduction.
    pub por: bool,
    /// Worker threads (`<= 1` = sequential). Only
    /// [`explore_parallel_with`] honours this; the `FnMut` entry points
    /// are sequential by construction.
    pub threads: usize,
    /// Seen-set mode.
    pub dedup: DedupMode,
    /// Maximum schedule depth (dispatches per schedule) before a branch
    /// is truncated; guards protocols that self-schedule forever when
    /// no seen-set breaks the cycle.
    pub max_depth: usize,
    /// Fault model the explored world runs under. The clock is frozen
    /// at `0`, so only verdicts observable at `t = 0` apply
    /// (probabilistic loss/duplication still fire per transmit).
    pub faults: FaultModel,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            cap: usize::MAX,
            por: false,
            threads: 1,
            dedup: DedupMode::Off,
            max_depth: 100_000,
            faults: FaultModel::none(),
        }
    }
}

impl ExploreOptions {
    fn assert_valid(&self) {
        assert!(
            self.dedup == DedupMode::Off || self.faults.is_quiet(),
            "configuration deduplication requires a quiet fault model: \
             the probabilistic fault stream is part of the configuration \
             but cannot be keyed"
        );
    }

    /// Whether partial-order reduction is actually in force.
    fn por_effective(&self) -> bool {
        self.por && self.faults.is_quiet()
    }
}

/// An online check over growing run prefixes, used by
/// [`explore_monitored`] to cut schedule sub-trees the moment they are
/// known bad.
///
/// Cloned at every branch point (so implementations should keep their
/// state small); fed each run event in the order the explored schedule
/// executes it. Returning `false` *condemns* the prefix: because
/// forbidden-predicate violations are monotone under run extension,
/// every schedule extending a condemned prefix would violate too, so
/// the whole sub-tree is pruned.
///
/// Under partial-order reduction the monitor must additionally be
/// insensitive to the order of *commuting* events (true of any check
/// over the run's partial order, like [`OnlineMonitor`]): a condemned
/// representative then implies every sleep-skipped sibling order is
/// condemned too, so pruning them unseen is sound.
///
/// [`OnlineMonitor`]: ../protocols/verify/struct.OnlineMonitor.html
pub trait PrefixMonitor: Clone {
    /// Whether the monitor actually inspects events. The explorer skips
    /// journaling entirely for monitors that never look (the internal
    /// no-op monitor of the unmonitored entry points).
    const ACTIVE: bool = true;

    /// Called once per executed run event. Return `false` to condemn.
    fn on_event(&mut self, view: &StreamingRun, ev: SystemEvent) -> bool;
}

/// The monitor of the unmonitored entry points: never condemns, and
/// `ACTIVE = false` keeps run-event journaling off.
#[derive(Clone, Copy)]
struct NoMonitor;

impl PrefixMonitor for NoMonitor {
    const ACTIVE: bool = false;
    fn on_event(&mut self, _view: &StreamingRun, _ev: SystemEvent) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Classic entry points (original semantics, now wrappers over the engine)
// ---------------------------------------------------------------------------

/// Exhaustively explores every schedule of `workload` under the
/// protocol, invoking `visit` with each complete run. `visit` may
/// return `false` to stop early (e.g. after finding a violation).
///
/// Per-process request order is preserved (a user issues its sends in
/// workload order); everything else — frame arrival order across and
/// within channels, timer firing order — is fully interleaved.
///
/// # Panics
/// Panics if a protocol livelocks within a schedule (more dispatches
/// than `10_000` pending at once), which would make exploration
/// meaningless.
pub fn explore<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    let opts = ExploreOptions {
        cap,
        ..ExploreOptions::default()
    };
    let state = initial_state(processes, workload, factory, &opts.faults);
    run_sequential(state, &opts, NoMonitor, &mut visit)
}

/// Like [`explore`], but merges converging interleavings: two schedule
/// prefixes whose dispatches commute (events on different processes)
/// reach the *same* configuration, and the sub-tree below it is
/// explored only once. The set of distinct complete runs handed to
/// `visit` is identical to [`explore`]'s; `schedules` counts distinct
/// terminal configurations rather than schedules, so it is ≤ the
/// undeduplicated count.
///
/// Equivalent to [`explore_with`] with [`DedupMode::Exact`]; see there
/// for what the configuration key covers.
pub fn explore_dedup<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone + Hash,
    V: FnMut(&SystemRun) -> bool,
{
    let opts = ExploreOptions {
        cap,
        dedup: DedupMode::Exact,
        ..ExploreOptions::default()
    };
    explore_with(processes, workload, factory, &opts, &mut visit)
}

/// Like [`explore`], but carries a [`PrefixMonitor`] along every branch
/// and prunes any prefix the monitor condemns — the schedule sub-tree
/// below a detected violation is never expanded. `visit` receives only
/// the complete runs of *uncondemned* schedules;
/// [`Exploration::pruned`] counts the condemned prefixes.
///
/// # Panics
/// Panics if a protocol livelocks within a schedule (see [`explore`]).
pub fn explore_monitored<P, M, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    monitor: M,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone,
    M: PrefixMonitor,
    V: FnMut(&SystemRun) -> bool,
{
    let opts = ExploreOptions {
        cap,
        ..ExploreOptions::default()
    };
    let state = initial_state(processes, workload, factory, &opts.faults);
    run_sequential(state, &opts, monitor, &mut visit)
}

/// Like [`explore`], but across `threads` workers over a work-stealing
/// frontier. With `threads <= 1` this *is* [`explore`] — same code
/// path, same visit order. With more threads the complete-schedule
/// count (uncapped) and the multiset of runs visited are identical, but
/// visit order is nondeterministic and `visit` runs concurrently, so it
/// must be `Sync` (accumulate through atomics or a mutex). When `cap`
/// truncates the search, *which* schedules were counted before the cut
/// depends on thread timing.
///
/// # Panics
/// Propagates panics from worker threads (e.g. a livelocking protocol).
pub fn explore_parallel<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    threads: usize,
    cap: usize,
    visit: V,
) -> Exploration
where
    P: Protocol + Clone + Send,
    V: Fn(&SystemRun) -> bool + Sync,
{
    if threads <= 1 {
        return explore(processes, workload, factory, cap, |run| visit(run));
    }
    let opts = ExploreOptions {
        cap,
        threads,
        ..ExploreOptions::default()
    };
    let state = initial_state(processes, workload, factory, &opts.faults);
    run_parallel(state, &opts, NoMonitor, &visit)
}

// ---------------------------------------------------------------------------
// Options-driven entry points
// ---------------------------------------------------------------------------

/// [`explore`] with the full option set: partial-order reduction,
/// deduplication, a depth bound, and a fault model. Sequential —
/// [`ExploreOptions::threads`] is ignored here (an `FnMut` visitor
/// cannot run concurrently); use [`explore_parallel_with`] for the
/// threaded frontier.
///
/// With reduction on, `visit` sees exactly one schedule per
/// sleep-set-distinct terminal configuration: the *set* of distinct
/// runs (and so every violating configuration) matches the full
/// search's, while `schedules` shrinks to the representative count.
///
/// # Panics
/// Panics on a livelocking protocol (see [`explore`]) and on
/// deduplication combined with a non-quiet fault model (see
/// [`ExploreOptions`]).
pub fn explore_with<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    opts: &ExploreOptions,
    visit: &mut V,
) -> Exploration
where
    P: Protocol + Clone + Hash,
    V: FnMut(&SystemRun) -> bool,
{
    opts.assert_valid();
    let mut state = initial_state(processes, workload, factory, &opts.faults);
    if opts.dedup != DedupMode::Off {
        attach_cache(&mut state);
    }
    run_sequential(state, opts, NoMonitor, visit)
}

/// [`explore_with`] over the sharded work-stealing frontier. The
/// visitor runs concurrently. Uncapped and without deduplication, the
/// counters and the multiset of visited runs equal the sequential
/// search's for any thread count; with deduplication, the *set* of
/// distinct runs and the `schedules`/`states` counts still match, but
/// `pruned`/`sleep_skipped` can vary with scheduling (workers may race
/// into a state before its stored sleep set shrinks).
///
/// # Panics
/// As [`explore_with`]; worker panics propagate.
pub fn explore_parallel_with<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    opts: &ExploreOptions,
    visit: &V,
) -> Exploration
where
    P: Protocol + Clone + Hash + Send,
    V: Fn(&SystemRun) -> bool + Sync,
{
    opts.assert_valid();
    let mut state = initial_state(processes, workload, factory, &opts.faults);
    if opts.dedup != DedupMode::Off {
        attach_cache(&mut state);
    }
    if opts.threads <= 1 {
        return run_sequential(state, opts, NoMonitor, &mut |run: &SystemRun| visit(run));
    }
    run_parallel(state, opts, NoMonitor, visit)
}

/// [`explore_monitored`] with the full option set (sequential; see
/// [`explore_with`] for the threading caveat).
///
/// Condemnation composes with sleep sets: a monitor insensitive to the
/// order of commuting events condemns a representative iff it would
/// condemn every sleep-skipped sibling order, so the visitor still sees
/// exactly the uncondemned distinct runs. `pruned` counts condemned
/// representatives only.
///
/// # Panics
/// As [`explore_with`].
pub fn explore_monitored_with<P, M, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    monitor: M,
    opts: &ExploreOptions,
    visit: &mut V,
) -> Exploration
where
    P: Protocol + Clone + Hash,
    M: PrefixMonitor,
    V: FnMut(&SystemRun) -> bool,
{
    opts.assert_valid();
    let mut state = initial_state(processes, workload, factory, &opts.faults);
    if opts.dedup != DedupMode::Off {
        attach_cache(&mut state);
    }
    run_sequential(state, opts, monitor, visit)
}

// ---------------------------------------------------------------------------
// Root construction
// ---------------------------------------------------------------------------

/// Builds the explorer's root state: the initial world via the normal
/// constructor (declares all messages), with the request events pulled
/// out into per-process queues so their relative order per process is
/// preserved.
fn initial_state<P: Protocol + Clone>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    faults: &FaultModel,
) -> State<P> {
    let config = SimConfig::new(processes, crate::latency::LatencyModel::Fixed(1), 0)
        .with_faults(faults.clone());
    let sim = Simulation::new(config, workload, factory);
    let (mut world, mut protocols) = sim.into_parts();
    let mut requests: Vec<VecDeque<Scheduled>> = vec![VecDeque::new(); processes];
    let mut initial: Vec<Scheduled> = Vec::new();
    while let Some(Reverse(ev)) = world.queue.pop() {
        match ev.kind {
            EventKind::Request { .. } => requests[ev.node].push_back(ev),
            _ => initial.push(ev),
        }
    }
    for (node, protocol) in protocols.iter_mut().enumerate() {
        let mut ctx = world.ctx(node);
        protocol.on_init(&mut ctx);
    }
    while let Some(Reverse(ev)) = world.queue.pop() {
        initial.push(ev);
    }
    State {
        world,
        protocols,
        pool: initial,
        requests,
        cache: None,
    }
}

// ---------------------------------------------------------------------------
// State, transitions, and the incremental key cache
// ---------------------------------------------------------------------------

/// The identity of an enabled transition: where it dispatches and what
/// it is. The kernel's tie-breaking `seq` label is deliberately
/// excluded — two pending events with the same `(node, time, kind)`
/// have identical dispatch effects, so they are interchangeable for
/// sleep sets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TKey {
    node: usize,
    time: u64,
    kind: EventKind,
}

/// Which pending event a transition fires.
#[derive(Debug, Clone, Copy)]
enum Pick {
    /// `pool[i]` (removed by `swap_remove`).
    Pool(usize),
    /// The head of process `p`'s request queue.
    Request(usize),
}

struct State<P> {
    world: crate::kernel::World,
    protocols: Vec<P>,
    /// In-flight frames and timers, any of which may fire next.
    pool: Vec<Scheduled>,
    /// Unissued user requests per process (ordered).
    requests: Vec<VecDeque<Scheduled>>,
    /// Incrementally maintained canonical key, present iff
    /// deduplication is on.
    cache: Option<Box<KeyCache<P>>>,
}

impl<P: Protocol + Clone> State<P> {
    /// If the last dispatch poisoned the world, extracts the
    /// counterexample (with the partial trace and stats attached).
    fn take_error(&mut self) -> Option<Box<SimError>> {
        let mut e = self.world.error.take()?;
        e.trace = self.world.builder.build().ok();
        e.stats = self.world.stats.clone();
        Some(Box::new(e))
    }

    fn clone_state(&self) -> State<P> {
        State {
            world: self.world.clone(),
            protocols: self.protocols.clone(),
            pool: self.pool.clone(),
            requests: self.requests.clone(),
            cache: self.cache.clone(),
        }
    }

    /// Enumerates the enabled transitions in the classic branch order:
    /// every pool event by index, then each process's next request.
    fn transitions(&self) -> Vec<(TKey, Pick)> {
        let mut out = Vec::with_capacity(self.pool.len() + 2);
        for (i, ev) in self.pool.iter().enumerate() {
            out.push((
                TKey {
                    node: ev.node,
                    time: ev.time,
                    kind: ev.kind.clone(),
                },
                Pick::Pool(i),
            ));
        }
        for (p, q) in self.requests.iter().enumerate() {
            if let Some(ev) = q.front() {
                out.push((
                    TKey {
                        node: ev.node,
                        time: ev.time,
                        kind: ev.kind.clone(),
                    },
                    Pick::Request(p),
                ));
            }
        }
        out
    }

    /// Removes the picked pending event, mirroring the removal in the
    /// key cache.
    fn take_transition(&mut self, pick: Pick) -> Scheduled {
        match pick {
            Pick::Pool(i) => {
                if let Some(c) = &mut self.cache {
                    c.pool_remove(i);
                }
                self.pool.swap_remove(i)
            }
            Pick::Request(p) => {
                if let Some(c) = &mut self.cache {
                    c.request_pop(p);
                }
                self.requests[p]
                    .pop_front()
                    .expect("nonempty request queue")
            }
        }
    }

    /// Dispatches `ev`, feeds freshly journaled run events to the
    /// monitor and the key cache, and folds newly scheduled events into
    /// the pool. Returns `true` if the monitor condemned the prefix.
    ///
    /// The clock stays frozen at `0`: ordering is the explorer's
    /// choice, and path-independent event times are what make commuting
    /// prefixes reach identical configurations.
    fn execute<M: PrefixMonitor>(&mut self, ev: Scheduled, mon: &mut M) -> bool {
        let node = ev.node;
        self.world.dispatch(&mut self.protocols, node, ev.kind);
        let mut condemned = false;
        if self.world.record {
            // The explorer never journals wire/fault records
            // (record_wire stays off under exploration), so only run
            // events appear. Every run event journaled during a
            // dispatch at `node` belongs to `node`'s process sequence,
            // so the cache chains stay per-process-ordered.
            let fresh = std::mem::take(&mut self.world.fresh);
            for entry in fresh {
                if let KernelEvent::Run { ev, .. } = entry {
                    if let Some(c) = &mut self.cache {
                        c.chain_append(node, &ev);
                    }
                    if M::ACTIVE && !condemned && !mon.on_event(&self.world.builder, ev) {
                        condemned = true;
                    }
                }
            }
        }
        if let Some(c) = &mut self.cache {
            let enc = c.enc;
            c.set_proto(node, enc(&self.protocols[node]));
        }
        while let Some(Reverse(nev)) = self.world.queue.pop() {
            if let Some(c) = &mut self.cache {
                c.pool_push(&nev);
            }
            self.pool.push(nev);
        }
        assert!(
            self.pool.len() < 10_000,
            "protocol generates unbounded traffic under exploration"
        );
        condemned
    }
}

/// A [`Hasher`] that records every byte fed to it instead of mixing
/// them down to 64 bits. Feeding a component's `Hash` impl through it
/// yields the component's full canonical encoding, so two states key
/// equal iff their hash material is identical — no truncation, no
/// collisions beyond what `Hash` itself conflates.
#[derive(Default)]
struct KeyRecorder {
    bytes: Vec<u8>,
}

impl Hasher for KeyRecorder {
    fn write(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }
    fn finish(&self) -> u64 {
        unreachable!("KeyRecorder keys are the recorded bytes, never a u64")
    }
}

fn encode_hash<T: Hash + ?Sized>(value: &T) -> Vec<u8> {
    let mut h = KeyRecorder::default();
    value.hash(&mut h);
    h.bytes
}

fn encode_protocol<P: Hash>(p: &P) -> Vec<u8> {
    encode_hash(p)
}

fn encode_scheduled(ev: &Scheduled) -> Vec<u8> {
    let mut h = KeyRecorder::default();
    (ev.time, ev.node).hash(&mut h);
    ev.kind.hash(&mut h);
    h.bytes
}

/// 128-bit FNV-1a, used as a running digest over byte chains and as
/// the per-component mixer behind the rolling state fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128(FNV128_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn of(bytes: &[u8]) -> u128 {
        let mut f = Fnv128::new();
        f.write(bytes);
        f.0
    }
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes one component digest into a fingerprint contribution. The
/// fingerprint is the wrapping *sum* of contributions, so unordered
/// components (the pool multiset) commute and removals subtract.
fn mix128(tag: u64, idx: u64, v: u128) -> u128 {
    let lo = mix64((v as u64) ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ idx.rotate_left(32));
    let hi = mix64(((v >> 64) as u64) ^ tag ^ idx.wrapping_mul(0xd134_2543_de82_ef95));
    (u128::from(hi) << 64) | u128::from(lo)
}

const TAG_CHAIN: u64 = 0x43;
const TAG_PROTO: u64 = 0x50;
const TAG_POOL: u64 = 0x4f;
const TAG_REQ: u64 = 0x52;

/// The incrementally maintained canonical configuration key.
///
/// A configuration is determined (within one exploration, whose root is
/// fixed) by: the per-process chains of run events journaled since the
/// root (the captured run is an order-independent function of them),
/// the per-node protocol states, the multiset of pending pool events,
/// and how many requests each process has issued. Kernel bookkeeping is
/// excluded on the same grounds as before: sequence labels only break
/// heap ties the explorer ignores, stats are not visitor-observable,
/// the latency RNG is never consulted under `Fixed` latency, and the
/// fault RNG is behaviourally inert under the quiet fault models
/// deduplication is restricted to.
///
/// Each dispatch updates only the dispatching node's protocol encoding,
/// appends to one chain, and mirrors pool pushes/removals — O(changed)
/// instead of re-encoding every `BTreeMap` from scratch. Alongside the
/// exact bytes, a 128-bit rolling fingerprint (`fp`) is kept as a
/// commutative sum of per-component mixes; it shards the seen-set and
/// *is* the key in compact mode.
struct KeyCache<P> {
    enc: fn(&P) -> Vec<u8>,
    /// Per-process canonical encodings of run events since the root, in
    /// dispatch order.
    chains: Vec<Vec<u8>>,
    /// Running digest over each chain.
    chain_fp: Vec<Fnv128>,
    /// Per-node protocol encodings.
    proto: Vec<Vec<u8>>,
    proto_fp: Vec<u128>,
    /// Mirrors `State::pool` index-for-index.
    pool: Vec<Vec<u8>>,
    pool_fp: Vec<u128>,
    /// Requests issued per process (with the fixed root workload, this
    /// pins the remaining queue).
    popped: Vec<u64>,
    /// The rolling fingerprint.
    fp: u128,
}

impl<P> Clone for KeyCache<P> {
    fn clone(&self) -> Self {
        KeyCache {
            enc: self.enc,
            chains: self.chains.clone(),
            chain_fp: self.chain_fp.clone(),
            proto: self.proto.clone(),
            proto_fp: self.proto_fp.clone(),
            pool: self.pool.clone(),
            pool_fp: self.pool_fp.clone(),
            popped: self.popped.clone(),
            fp: self.fp,
        }
    }
}

impl<P> KeyCache<P> {
    fn new(protocols: &[P], pool: &[Scheduled], processes: usize, enc: fn(&P) -> Vec<u8>) -> Self {
        let chains = vec![Vec::new(); processes];
        let chain_fp = vec![Fnv128::new(); processes];
        let proto: Vec<Vec<u8>> = protocols.iter().map(enc).collect();
        let proto_fp: Vec<u128> = proto.iter().map(|b| Fnv128::of(b)).collect();
        let pool_enc: Vec<Vec<u8>> = pool.iter().map(encode_scheduled).collect();
        let pool_fp: Vec<u128> = pool_enc.iter().map(|b| Fnv128::of(b)).collect();
        let popped = vec![0u64; processes];
        let mut fp = 0u128;
        for (p, cf) in chain_fp.iter().enumerate() {
            fp = fp.wrapping_add(mix128(TAG_CHAIN, p as u64, cf.0));
        }
        for (i, &pf) in proto_fp.iter().enumerate() {
            fp = fp.wrapping_add(mix128(TAG_PROTO, i as u64, pf));
        }
        for &ef in &pool_fp {
            fp = fp.wrapping_add(mix128(TAG_POOL, 0, ef));
        }
        for (p, &c) in popped.iter().enumerate() {
            fp = fp.wrapping_add(mix128(TAG_REQ, p as u64, u128::from(c)));
        }
        KeyCache {
            enc,
            chains,
            chain_fp,
            proto,
            proto_fp,
            pool: pool_enc,
            pool_fp,
            popped,
            fp,
        }
    }

    fn chain_append(&mut self, p: usize, ev: &SystemEvent) {
        let bytes = encode_hash(ev);
        self.fp = self
            .fp
            .wrapping_sub(mix128(TAG_CHAIN, p as u64, self.chain_fp[p].0));
        self.chains[p].extend_from_slice(&bytes);
        self.chain_fp[p].write(&bytes);
        self.fp = self
            .fp
            .wrapping_add(mix128(TAG_CHAIN, p as u64, self.chain_fp[p].0));
    }

    fn set_proto(&mut self, node: usize, bytes: Vec<u8>) {
        self.fp = self
            .fp
            .wrapping_sub(mix128(TAG_PROTO, node as u64, self.proto_fp[node]));
        self.proto_fp[node] = Fnv128::of(&bytes);
        self.proto[node] = bytes;
        self.fp = self
            .fp
            .wrapping_add(mix128(TAG_PROTO, node as u64, self.proto_fp[node]));
    }

    fn pool_push(&mut self, ev: &Scheduled) {
        let bytes = encode_scheduled(ev);
        let f = Fnv128::of(&bytes);
        self.fp = self.fp.wrapping_add(mix128(TAG_POOL, 0, f));
        self.pool.push(bytes);
        self.pool_fp.push(f);
    }

    fn pool_remove(&mut self, i: usize) {
        self.fp = self.fp.wrapping_sub(mix128(TAG_POOL, 0, self.pool_fp[i]));
        self.pool.swap_remove(i);
        self.pool_fp.swap_remove(i);
    }

    fn request_pop(&mut self, p: usize) {
        self.fp = self
            .fp
            .wrapping_sub(mix128(TAG_REQ, p as u64, u128::from(self.popped[p])));
        self.popped[p] += 1;
        self.fp = self
            .fp
            .wrapping_add(mix128(TAG_REQ, p as u64, u128::from(self.popped[p])));
    }

    /// The full canonical key. Like the original dedup key it is the
    /// complete hash material, not a digest: a digest collision would
    /// silently merge two *distinct* configurations and could prune a
    /// reachable violating schedule, which is unacceptable for a model
    /// checker. All components are length-prefixed so the encoding is
    /// injective; the pool is canonicalized by sorting its per-event
    /// encodings (it is an unordered multiset, and commuting prefixes
    /// produce it in different orders).
    fn full_key(&self) -> Vec<u8> {
        let mut h = KeyRecorder::default();
        self.chains.len().hash(&mut h);
        for c in &self.chains {
            c.len().hash(&mut h);
            h.bytes.extend_from_slice(c);
        }
        for b in &self.proto {
            b.len().hash(&mut h);
            h.bytes.extend_from_slice(b);
        }
        let mut pool_keys: Vec<&Vec<u8>> = self.pool.iter().collect();
        pool_keys.sort_unstable();
        pool_keys.len().hash(&mut h);
        for k in pool_keys {
            k.len().hash(&mut h);
            h.bytes.extend_from_slice(k);
        }
        for &c in &self.popped {
            c.hash(&mut h);
        }
        h.bytes
    }
}

fn attach_cache<P: Protocol + Clone + Hash>(state: &mut State<P>) {
    let processes = state.requests.len();
    state.cache = Some(Box::new(KeyCache::new(
        &state.protocols,
        &state.pool,
        processes,
        encode_protocol::<P>,
    )));
}

// ---------------------------------------------------------------------------
// Seen-set: sharded, exact or compact, optionally bounded + spillable
// ---------------------------------------------------------------------------

enum SeenVerdict {
    /// New state: explore it.
    Enter,
    /// Revisited with a smaller sleep set than stored: re-explore with
    /// the intersection (Godefroid's rule; the stored set strictly
    /// shrinks, so re-exploration terminates even on cyclic graphs).
    EnterWith(Vec<TKey>),
    /// Already explored at least as permissively: prune.
    Prune,
    /// The bounded table is full and nothing could be spilled.
    Full,
}

/// Distinguishes concurrent explorations inside one process; combined
/// with the pid it makes every run's spill subdirectory unique, so two
/// searches (or an aborted search and its retry) sharing a spill path
/// can never collide on segment file names.
static SPILL_RUN: AtomicU64 = AtomicU64::new(0);

struct SeenShards {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    exact: bool,
    /// Per-shard live-entry bound (`usize::MAX` = unbounded).
    shard_cap: usize,
    /// This run's private spill subdirectory (`<spill>/run-<pid>-<n>`),
    /// created lazily by the first segment write and removed on drop.
    spill: Option<PathBuf>,
}

impl Drop for SeenShards {
    fn drop(&mut self) {
        // Segments keep their files open — on Unix, unlinking while open
        // is fine, and the handles die with `self.shards` right after.
        // Removal failure only leaks a temp directory; nothing to report.
        if let Some(dir) = &self.spill {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One exact-mode bucket: the full configuration key plus the stored
/// sleep set the subset rule compares against.
type ExactEntry = (Vec<u8>, Vec<TKey>);

#[derive(Default)]
struct Shard {
    /// Exact mode: fingerprint buckets of (full key, stored sleep set).
    exact: HashMap<u128, Vec<ExactEntry>>,
    /// Compact mode: fingerprint → stored sleep set.
    compact: HashMap<u128, Vec<TKey>>,
    /// Distinct states ever inserted (spilling does not decrement).
    inserted: usize,
    segments: Vec<Segment>,
    spill_failed: bool,
}

/// Applies the sleep-set subset rule to a revisited state. With
/// reduction off both sets are empty and this is a plain prune.
fn por_rule(stored: &mut Vec<TKey>, sleep: &[TKey], por: bool) -> SeenVerdict {
    if !por || stored.iter().all(|u| sleep.contains(u)) {
        return SeenVerdict::Prune;
    }
    let inter: Vec<TKey> = stored
        .iter()
        .filter(|u| sleep.contains(u))
        .cloned()
        .collect();
    stored.clone_from(&inter);
    SeenVerdict::EnterWith(inter)
}

impl SeenShards {
    fn new(dedup: &DedupMode, threads: usize) -> Option<SeenShards> {
        let (exact, max_states, spill) = match dedup {
            DedupMode::Off => return None,
            DedupMode::Exact => (true, 0usize, None),
            DedupMode::Compact { max_states, spill } => {
                let run_dir = spill.as_ref().map(|dir| {
                    dir.join(format!(
                        "run-{}-{}",
                        std::process::id(),
                        SPILL_RUN.fetch_add(1, Ordering::Relaxed)
                    ))
                });
                (false, *max_states, run_dir)
            }
        };
        let n = if threads <= 1 {
            1
        } else {
            (threads * 4).next_power_of_two()
        };
        let shard_cap = if max_states == 0 {
            usize::MAX
        } else {
            max_states.div_ceil(n)
        };
        Some(SeenShards {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n - 1,
            exact,
            shard_cap,
            spill,
        })
    }

    fn check<P>(&self, state: &State<P>, sleep: &[TKey], por: bool) -> SeenVerdict {
        let cache = state
            .cache
            .as_ref()
            .expect("deduplication requires the key cache");
        let fp = cache.fp;
        let idx = fold_fp(fp) & self.mask;
        let mut shard = self.shards[idx]
            .lock()
            .expect("no worker panicked in the seen-set");
        if self.exact {
            let key = cache.full_key();
            let bucket = shard.exact.entry(fp).or_default();
            if let Some((_, stored)) = bucket.iter_mut().find(|(k, _)| *k == key) {
                return por_rule(stored, sleep, por);
            }
            bucket.push((key, sleep.to_vec()));
            shard.inserted += 1;
            return SeenVerdict::Enter;
        }
        // Compact: spilled segments hold only fully-explored states
        // (stored sleep ∅ ⊆ anything), so a segment hit always prunes.
        if shard.segments.iter_mut().any(|s| s.contains(fp)) {
            return SeenVerdict::Prune;
        }
        if let Some(stored) = shard.compact.get_mut(&fp) {
            return por_rule(stored, sleep, por);
        }
        if shard.compact.len() >= self.shard_cap {
            if self.spill.is_none()
                || shard.spill_failed
                || !shard.flush(self.spill.as_ref().expect("checked"), idx)
            {
                return SeenVerdict::Full;
            }
            if shard.compact.len() >= self.shard_cap {
                // Nothing was flushable: every live entry still carries
                // a sleep set the subset rule may need.
                return SeenVerdict::Full;
            }
        }
        shard.compact.insert(fp, sleep.to_vec());
        shard.inserted += 1;
        SeenVerdict::Enter
    }

    /// `(distinct states inserted, segments spilled)`.
    fn totals(&self) -> (usize, usize) {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("no worker panicked in the seen-set");
                (s.inserted, s.segments.len())
            })
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    }
}

fn fold_fp(fp: u128) -> usize {
    ((fp as u64) ^ ((fp >> 64) as u64)) as usize
}

impl Shard {
    /// Flushes every fully-explored (empty-sleep) fingerprint to a new
    /// sorted segment file. Returns `false` (and poisons spilling) on
    /// any I/O failure — the caller then treats the table as full,
    /// which only truncates, never unsoundly prunes.
    fn flush(&mut self, dir: &Path, shard_idx: usize) -> bool {
        let flushable: Vec<u128> = self
            .compact
            .iter()
            .filter(|(_, sleep)| sleep.is_empty())
            .map(|(&fp, _)| fp)
            .collect();
        if flushable.is_empty() {
            return true; // nothing to do; caller re-checks occupancy
        }
        let mut fps = flushable;
        fps.sort_unstable();
        let path = dir.join(format!(
            "seen-{shard_idx:03}-{:04}.seg",
            self.segments.len()
        ));
        match Segment::write(&path, &fps) {
            Ok(seg) => {
                for fp in &fps {
                    self.compact.remove(fp);
                }
                self.segments.push(seg);
                true
            }
            Err(_) => {
                self.spill_failed = true;
                false
            }
        }
    }
}

/// One spilled sorted run of fingerprints with a sparse in-memory
/// index (every [`SEG_STRIDE`]-th key), looked up by seek-and-scan.
struct Segment {
    file: File,
    index: Vec<u128>,
    len: usize,
    first: u128,
    last: u128,
}

const SEG_STRIDE: usize = 256;

impl Segment {
    fn write(path: &std::path::Path, fps: &[u128]) -> std::io::Result<Segment> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut buf = Vec::with_capacity(fps.len() * 16);
        for fp in fps {
            buf.extend_from_slice(&fp.to_le_bytes());
        }
        file.write_all(&buf)?;
        file.flush()?;
        let index: Vec<u128> = fps.iter().step_by(SEG_STRIDE).copied().collect();
        Ok(Segment {
            file,
            index,
            len: fps.len(),
            first: fps[0],
            last: *fps.last().expect("nonempty segment"),
        })
    }

    /// Membership test. An I/O error reads as "absent", which merely
    /// re-explores a subtree — sound, never unsound.
    fn contains(&mut self, fp: u128) -> bool {
        if self.len == 0 || fp < self.first || fp > self.last {
            return false;
        }
        let block = match self.index.binary_search(&fp) {
            Ok(_) => return true,
            Err(0) => return false,
            Err(i) => i - 1,
        };
        let start = block * SEG_STRIDE;
        let count = SEG_STRIDE.min(self.len - start);
        if self
            .file
            .seek(SeekFrom::Start((start * 16) as u64))
            .is_err()
        {
            return false;
        }
        let mut buf = vec![0u8; count * 16];
        if self.file.read_exact(&mut buf).is_err() {
            return false;
        }
        buf.chunks_exact(16)
            .any(|c| u128::from_le_bytes(c.try_into().expect("16-byte chunk")) == fp)
    }
}

// ---------------------------------------------------------------------------
// The unified DFS engine
// ---------------------------------------------------------------------------

/// Per-exploration environment shared by every worker.
struct Env<'e> {
    por: bool,
    max_depth: usize,
    seen: Option<&'e SeenShards>,
}

/// Where the engine reports progress: sequential accumulation into an
/// [`Exploration`], or shared atomics for the threaded frontier.
trait Sink<P: Protocol + Clone> {
    /// A cooperative stop was requested (early-stop visitor, error, or
    /// a worker hitting the cap).
    fn stopped(&self) -> bool;
    /// Entry gate, called once per state; `false` aborts the traversal
    /// (the sequential cap check lives here).
    fn enter(&mut self) -> bool;
    /// A terminal configuration; returns `false` to stop the search.
    fn leaf(&mut self, state: &mut State<P>) -> bool;
    fn error(&mut self, e: Box<SimError>);
    fn condemned(&mut self);
    fn sleep_skip(&mut self);
    fn truncate(&mut self);
}

/// One unit of donated work on the threaded frontier.
struct Job<P, M> {
    state: State<P>,
    sleep: Vec<TKey>,
    mon: M,
    depth: usize,
}

/// The sharded work-stealing frontier. Workers pop their own shard
/// LIFO (depth-first, cache-warm) and steal other shards FIFO (oldest,
/// biggest subtrees). `pending` counts queued *and* in-flight jobs, so
/// `pending == 0` with empty queues is the termination condition.
struct Frontier<P, M> {
    shards: Vec<Mutex<VecDeque<Job<P, M>>>>,
    pending: AtomicUsize,
    queued: AtomicUsize,
    rr: AtomicUsize,
    /// Donate while fewer than this many jobs are queued.
    low_water: usize,
}

impl<P, M> Frontier<P, M> {
    fn new(threads: usize) -> Frontier<P, M> {
        Frontier {
            shards: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            low_water: threads * 2,
        }
    }

    /// Whether a busy worker should donate a subtree instead of
    /// recursing into it.
    fn hungry(&self) -> bool {
        self.queued.load(Ordering::Relaxed) < self.low_water
    }

    fn push(&self, job: Job<P, M>) {
        let shard = job
            .state
            .cache
            .as_ref()
            .map(|c| fold_fp(c.fp))
            .unwrap_or_else(|| self.rr.fetch_add(1, Ordering::Relaxed))
            % self.shards.len();
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.shards[shard]
            .lock()
            .expect("no worker panicked holding a frontier shard")
            .push_back(job);
    }

    fn pop(&self, worker: usize) -> Option<Job<P, M>> {
        let n = self.shards.len();
        let own = self.shards[worker % n]
            .lock()
            .expect("no worker panicked holding a frontier shard")
            .pop_back();
        if let Some(job) = own {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for k in 1..n {
            let stolen = self.shards[(worker + k) % n]
                .lock()
                .expect("no worker panicked holding a frontier shard")
                .pop_front();
            if let Some(job) = stolen {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

/// The engine: one recursive DFS shared by every mode. `sleep` is this
/// state's sleep set (empty without reduction); `frontier` is `Some`
/// only on the threaded path, where explorable children may be donated
/// instead of recursed into. Returns `false` to abort the traversal.
fn dfs<P, M, S>(
    state: &mut State<P>,
    mut sleep: Vec<TKey>,
    mon: &M,
    depth: usize,
    env: &Env<'_>,
    sink: &mut S,
    frontier: Option<&Frontier<P, M>>,
) -> bool
where
    P: Protocol + Clone,
    M: PrefixMonitor,
    S: Sink<P>,
{
    if sink.stopped() || !sink.enter() {
        return false;
    }
    let trans = state.transitions();
    if trans.is_empty() {
        // A leaf always arrives with an empty effective sleep set
        // (sleep members stay enabled, and nothing is enabled here), so
        // it is stored fully explored and every revisit prunes: leaves
        // are counted once per distinct terminal configuration.
        if let Some(seen) = env.seen {
            match seen.check(state, &[], env.por) {
                SeenVerdict::Enter | SeenVerdict::EnterWith(_) => {}
                SeenVerdict::Prune => return true,
                SeenVerdict::Full => {
                    sink.truncate();
                    return true;
                }
            }
        }
        return sink.leaf(state);
    }
    if depth >= env.max_depth {
        sink.truncate();
        return true;
    }
    if let Some(seen) = env.seen {
        match seen.check(state, &sleep, env.por) {
            SeenVerdict::Enter => {}
            SeenVerdict::EnterWith(s) => sleep = s,
            SeenVerdict::Prune => return true,
            SeenVerdict::Full => {
                sink.truncate();
                return true;
            }
        }
    }
    let explorable: Vec<usize> = if env.por && !sleep.is_empty() {
        (0..trans.len())
            .filter(|&i| !sleep.contains(&trans[i].0))
            .collect()
    } else {
        (0..trans.len()).collect()
    };
    if explorable.is_empty() {
        sink.sleep_skip();
        return true;
    }
    let last = explorable.len() - 1;
    // Transitions executed before the current sibling (the classic
    // "done" set): a later sibling's child sleeps on each earlier
    // independent one, because every order putting that one first is
    // covered by the earlier sibling's subtree.
    let mut done: Vec<TKey> = Vec::new();
    for (j, &ti) in explorable.iter().enumerate() {
        if sink.stopped() {
            return false;
        }
        let (t_key, pick) = (&trans[ti].0, trans[ti].1);
        let mut next = state.clone_state();
        let ev = next.take_transition(pick);
        let mut child_mon = mon.clone();
        let condemned = next.execute(ev, &mut child_mon);
        if let Some(e) = next.take_error() {
            sink.error(e);
            return false;
        }
        if condemned {
            // Condemnation is monotone and order-insensitive over
            // commuting events, so sleeping `t_key` in later siblings
            // stays sound: those skipped orders would be condemned too.
            sink.condemned();
            if env.por {
                done.push(t_key.clone());
            }
            continue;
        }
        let child_sleep: Vec<TKey> = if env.por {
            sleep
                .iter()
                .chain(done.iter())
                .filter(|u| u.node != t_key.node)
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        if let Some(f) = frontier {
            if j < last && f.hungry() {
                f.push(Job {
                    state: next,
                    sleep: child_sleep,
                    mon: child_mon,
                    depth: depth + 1,
                });
                if env.por {
                    done.push(t_key.clone());
                }
                continue;
            }
        }
        if !dfs(
            &mut next,
            child_sleep,
            &child_mon,
            depth + 1,
            env,
            sink,
            frontier,
        ) {
            return false;
        }
        if env.por {
            done.push(t_key.clone());
        }
    }
    true
}

/// Accounts a complete schedule's liveness: a leaf whose run is
/// non-quiescent wedged under this interleaving.
fn note_leaf_liveness<P>(state: &State<P>, exp: &mut Exploration) {
    if let Some(v) = liveness::analyze(&state.world, false) {
        exp.non_live += 1;
        if exp.first_stall.is_none() {
            exp.first_stall = Some(Box::new(v));
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential driver
// ---------------------------------------------------------------------------

struct SeqSink<'a, V> {
    exp: &'a mut Exploration,
    visit: &'a mut V,
    cap: usize,
}

impl<P, V> Sink<P> for SeqSink<'_, V>
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    fn stopped(&self) -> bool {
        false
    }
    fn enter(&mut self) -> bool {
        if self.exp.schedules >= self.cap {
            self.exp.truncated = true;
            return false;
        }
        true
    }
    fn leaf(&mut self, state: &mut State<P>) -> bool {
        self.exp.schedules += 1;
        note_leaf_liveness(state, self.exp);
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        (self.visit)(&run)
    }
    fn error(&mut self, e: Box<SimError>) {
        self.exp.error = Some(e);
    }
    fn condemned(&mut self) {
        self.exp.pruned += 1;
    }
    fn sleep_skip(&mut self) {
        self.exp.sleep_skipped += 1;
    }
    fn truncate(&mut self) {
        self.exp.truncated = true;
    }
}

fn run_sequential<P, M, V>(
    mut state: State<P>,
    opts: &ExploreOptions,
    mon: M,
    visit: &mut V,
) -> Exploration
where
    P: Protocol + Clone,
    M: PrefixMonitor,
    V: FnMut(&SystemRun) -> bool,
{
    state.world.record = M::ACTIVE || state.cache.is_some();
    let mut exp = Exploration::empty();
    let seen = SeenShards::new(&opts.dedup, 1);
    let env = Env {
        por: opts.por_effective(),
        max_depth: opts.max_depth,
        seen: seen.as_ref(),
    };
    {
        let mut sink = SeqSink {
            exp: &mut exp,
            visit,
            cap: opts.cap,
        };
        let _ = dfs(
            &mut state,
            Vec::new(),
            &mon,
            0,
            &env,
            &mut sink,
            None::<&Frontier<P, M>>,
        );
    }
    if let Some(seen) = &seen {
        let (states, spilled) = seen.totals();
        exp.states = states;
        exp.spilled = spilled;
    }
    exp
}

// ---------------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------------

struct SharedCounters {
    schedules: AtomicUsize,
    non_live: AtomicUsize,
    pruned: AtomicUsize,
    sleep_skipped: AtomicUsize,
    truncated: AtomicBool,
    stopped: AtomicBool,
    stall: Mutex<Option<Box<LivenessVerdict>>>,
    error: Mutex<Option<Box<SimError>>>,
}

impl SharedCounters {
    fn new() -> SharedCounters {
        SharedCounters {
            schedules: AtomicUsize::new(0),
            non_live: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            sleep_skipped: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            stall: Mutex::new(None),
            error: Mutex::new(None),
        }
    }

    fn into_exploration(self) -> Exploration {
        Exploration {
            schedules: self.schedules.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            error: self
                .error
                .into_inner()
                .expect("no worker panicked holding the error slot"),
            non_live: self.non_live.load(Ordering::Relaxed),
            first_stall: self
                .stall
                .into_inner()
                .expect("no worker panicked holding the stall slot"),
            states: 0,
            sleep_skipped: self.sleep_skipped.load(Ordering::Relaxed),
            spilled: 0,
        }
    }
}

struct ParSink<'a, V> {
    c: &'a SharedCounters,
    visit: &'a V,
    cap: usize,
}

impl<P, V> Sink<P> for ParSink<'_, V>
where
    P: Protocol + Clone,
    V: Fn(&SystemRun) -> bool + Sync,
{
    fn stopped(&self) -> bool {
        self.c.stopped.load(Ordering::Relaxed)
    }
    fn enter(&mut self) -> bool {
        true
    }
    fn leaf(&mut self, state: &mut State<P>) -> bool {
        // Claim a schedule slot with a compare-exchange loop so the
        // count can never overshoot the cap.
        let mut cur = self.c.schedules.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                self.c.truncated.store(true, Ordering::Relaxed);
                self.c.stopped.store(true, Ordering::Relaxed);
                return false;
            }
            match self.c.schedules.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if let Some(v) = liveness::analyze(&state.world, false) {
            self.c.non_live.fetch_add(1, Ordering::Relaxed);
            self.c
                .stall
                .lock()
                .expect("no worker panicked holding the stall slot")
                .get_or_insert_with(|| Box::new(v));
        }
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        if !(self.visit)(&run) {
            self.c.stopped.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }
    fn error(&mut self, e: Box<SimError>) {
        self.c
            .error
            .lock()
            .expect("no worker panicked holding the error slot")
            .get_or_insert(e);
        self.c.stopped.store(true, Ordering::Relaxed);
    }
    fn condemned(&mut self) {
        self.c.pruned.fetch_add(1, Ordering::Relaxed);
    }
    fn sleep_skip(&mut self) {
        self.c.sleep_skipped.fetch_add(1, Ordering::Relaxed);
    }
    fn truncate(&mut self) {
        self.c.truncated.store(true, Ordering::Relaxed);
    }
}

fn run_parallel<P, M, V>(
    mut root: State<P>,
    opts: &ExploreOptions,
    mon: M,
    visit: &V,
) -> Exploration
where
    P: Protocol + Clone + Send,
    M: PrefixMonitor + Send,
    V: Fn(&SystemRun) -> bool + Sync,
{
    root.world.record = M::ACTIVE || root.cache.is_some();
    let threads = opts.threads.max(2);
    let seen = SeenShards::new(&opts.dedup, threads);
    let env = Env {
        por: opts.por_effective(),
        max_depth: opts.max_depth,
        seen: seen.as_ref(),
    };
    let shared = SharedCounters::new();
    let frontier: Frontier<P, M> = Frontier::new(threads);
    frontier.push(Job {
        state: root,
        sleep: Vec::new(),
        mon,
        depth: 0,
    });
    std::thread::scope(|s| {
        for w in 0..threads {
            let frontier = &frontier;
            let shared = &shared;
            let env = &env;
            let cap = opts.cap;
            s.spawn(move || {
                let mut sink = ParSink {
                    c: shared,
                    visit,
                    cap,
                };
                loop {
                    if shared.stopped.load(Ordering::Relaxed) {
                        break;
                    }
                    let Some(job) = frontier.pop(w) else {
                        if frontier.pending.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                        std::thread::sleep(std::time::Duration::from_micros(20));
                        continue;
                    };
                    let Job {
                        mut state,
                        sleep,
                        mon,
                        depth,
                    } = job;
                    let _ = dfs(
                        &mut state,
                        sleep,
                        &mon,
                        depth,
                        env,
                        &mut sink,
                        Some(frontier),
                    );
                    frontier.pending.fetch_sub(1, Ordering::SeqCst);
                }
            });
        }
    });
    let mut exp = shared.into_exploration();
    if let Some(seen) = &seen {
        let (states, spilled) = seen.totals();
        exp.states = states;
        exp.spilled = spilled;
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SendSpec;
    use msgorder_runs::{MessageId, ProcessId};
    use std::collections::{BTreeMap, BTreeSet, HashSet};

    #[derive(Clone, Hash)]
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut crate::Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut crate::Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    #[derive(Clone, Hash)]
    struct Sink2;
    impl Protocol for Sink2 {
        fn on_send_request(&mut self, ctx: &mut crate::Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            _ctx: &mut crate::Ctx<'_>,
            _from: ProcessId,
            _msg: MessageId,
            _tag: Vec<u8>,
        ) {
            // Never delivers: every schedule wedges.
        }
    }

    #[test]
    fn exploration_counts_non_live_schedules_with_blame() {
        let exp = explore(2, two_same_channel(), |_| Sink2, 10_000, |_| true);
        assert!(exp.error.is_none());
        assert!(exp.schedules > 0);
        assert_eq!(
            exp.non_live, exp.schedules,
            "a sink protocol wedges every interleaving"
        );
        let stall = exp.first_stall.expect("blame for the first stall");
        assert_eq!(stall.stuck_count(), 2);
        assert_eq!(
            stall.classes(),
            vec!["deliver:protocol-inhibited".to_owned()]
        );

        // A live protocol reports none.
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |_| true);
        assert_eq!(exp.non_live, 0);
        assert!(exp.first_stall.is_none());

        // The parallel front end aggregates the same counts.
        let par = explore_parallel(2, two_same_channel(), |_| Sink2, 4, 10_000, |_| true);
        assert_eq!(par.non_live, par.schedules);
        assert!(par.first_stall.is_some());
    }

    fn two_same_channel() -> Workload {
        Workload {
            sends: vec![
                SendSpec {
                    at: 0,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 1,
                    src: 0,
                    dst: 1,
                    color: None,
                },
            ],
        }
    }

    #[test]
    fn counts_all_interleavings_of_two_messages() {
        // Events for the immediate protocol: req0 (triggers send),
        // arrival0, req1, arrival1 — requests of the same process are
        // ordered, arrivals are free: schedules = interleavings of
        // [a0] and [a1] relative to req order... enumerate and check a
        // known property instead of an exact count: both delivery
        // orders must occur.
        let mut saw_in_order = false;
        let mut saw_inverted = false;
        let exp = explore(
            2,
            two_same_channel(),
            |_| Immediate,
            10_000,
            |run| {
                let user = run.users_view();
                use msgorder_runs::UserEvent;
                if user.before(
                    UserEvent::deliver(MessageId(0)),
                    UserEvent::deliver(MessageId(1)),
                ) {
                    saw_in_order = true;
                } else {
                    saw_inverted = true;
                }
                true
            },
        );
        assert!(!exp.truncated);
        assert!(exp.schedules >= 2);
        assert!(saw_in_order && saw_inverted, "explorer must reorder frames");
    }

    #[test]
    fn every_explored_run_is_quiescent_for_live_protocol() {
        let exp = explore(
            2,
            two_same_channel(),
            |_| Immediate,
            10_000,
            |run| {
                assert!(run.is_quiescent());
                true
            },
        );
        assert!(exp.schedules > 0);
    }

    #[test]
    fn early_stop_works() {
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |_| false);
        assert_eq!(exp.schedules, 1);
    }

    #[test]
    fn cap_truncates() {
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec {
                    at: i,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        };
        let exp = explore(2, w, |_| Immediate, 3, |_| true);
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 3);
    }

    /// A workload whose messages fan out to different destinations, so
    /// interleavings genuinely commute and dedup has something to merge.
    fn fan_out() -> Workload {
        Workload {
            sends: vec![
                SendSpec {
                    at: 0,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 1,
                    src: 0,
                    dst: 2,
                    color: None,
                },
                SendSpec {
                    at: 2,
                    src: 0,
                    dst: 1,
                    color: None,
                },
            ],
        }
    }

    /// Canonical fingerprint of a run for set comparison across
    /// exploration strategies.
    fn fingerprint(run: &SystemRun) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = run
            .users_view()
            .relation_pairs()
            .into_iter()
            .map(|(a, b)| (format!("{a:?}"), format!("{b:?}")))
            .collect();
        pairs.sort();
        pairs
    }

    fn run_set(exp_runs: &BTreeSet<Vec<(String, String)>>) -> usize {
        exp_runs.len()
    }

    #[test]
    fn dedup_visits_same_distinct_runs_with_fewer_configurations() {
        let mut plain_runs = BTreeSet::new();
        let plain = explore(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                plain_runs.insert(fingerprint(run));
                true
            },
        );
        let mut dedup_runs = BTreeSet::new();
        let dedup = explore_dedup(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                dedup_runs.insert(fingerprint(run));
                true
            },
        );
        assert_eq!(plain_runs, dedup_runs, "dedup must not lose runs");
        assert!(
            dedup.schedules < plain.schedules,
            "commuting interleavings must merge: {} !< {}",
            dedup.schedules,
            plain.schedules
        );
        assert!(dedup.states > 0, "dedup reports the state count");
        assert!(run_set(&dedup_runs) > 0);
    }

    /// One successor state per enabled branch, in the engine's order.
    fn branch_states<P: Protocol + Clone>(state: &State<P>) -> Vec<State<P>> {
        let mut out = Vec::new();
        for (_, pick) in state.transitions() {
            let mut next = state.clone_state();
            let ev = next.take_transition(pick);
            let mut mon = NoMonitor;
            next.execute(ev, &mut mon);
            out.push(next);
        }
        out
    }

    fn canonical_key<P>(state: &State<P>) -> Vec<u8> {
        state
            .cache
            .as_ref()
            .expect("cache attached at the root")
            .full_key()
    }

    /// Walks the whole configuration graph, collecting the canonical
    /// key of every distinct configuration reached.
    fn collect_keys(state: &State<Immediate>, seen: &mut HashSet<Vec<u8>>) {
        for next in branch_states(state) {
            if seen.insert(canonical_key(&next)) {
                collect_keys(&next, seen);
            }
        }
    }

    #[test]
    fn dedup_key_survives_collisions_that_kill_a_truncated_hash() {
        // Regression for the 64-bit-digest dedup key: a digest collision
        // silently merges two distinct configurations, and in a model
        // checker that can prune a reachable *violating* schedule. The
        // canonical key is the full hash material, so distinct
        // configurations always key distinct — demonstrated here by
        // pigeonhole: over an 8-bit truncation of the same material,
        // collisions are guaranteed once we have > 256 distinct
        // configurations, yet every full key stays unique.
        let w = Workload {
            sends: (0..5)
                .map(|i| SendSpec {
                    at: i,
                    src: (i as usize) % 3,
                    dst: ((i as usize) + 1) % 3,
                    color: None,
                })
                .collect(),
        };
        let mut root = initial_state(3, w, |_| Immediate, &FaultModel::none());
        attach_cache(&mut root);
        root.world.record = true;
        let mut keys = HashSet::new();
        keys.insert(canonical_key(&root));
        collect_keys(&root, &mut keys);
        assert!(
            keys.len() > 256,
            "need > 256 distinct configurations for the pigeonhole \
             argument, got {}",
            keys.len()
        );
        // Truncate each canonical key to 8 bits the way any fixed-width
        // digest would: distinct configurations now collide...
        let truncated: HashSet<u8> = keys
            .iter()
            .map(|k| {
                use std::collections::hash_map::DefaultHasher;
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                h.finish() as u8
            })
            .collect();
        assert!(
            truncated.len() < keys.len(),
            "a truncated digest must collide on this many configurations"
        );
        // ...while the full canonical keys are all distinct by
        // construction (they are the deduplicating set itself).
    }

    #[test]
    fn incremental_fingerprint_is_path_independent() {
        // Two commuting prefixes must reach byte-identical keys and the
        // same rolling fingerprint; distinct configurations must not.
        let mut root = initial_state(3, fan_out(), |_| Immediate, &FaultModel::none());
        attach_cache(&mut root);
        root.world.record = true;
        let mut by_key: HashMap<Vec<u8>, u128> = HashMap::new();
        fn walk(state: &State<Immediate>, by_key: &mut HashMap<Vec<u8>, u128>) {
            let key = canonical_key(state);
            let fp = state.cache.as_ref().expect("cache").fp;
            if let Some(prev) = by_key.insert(key, fp) {
                assert_eq!(prev, fp, "same key must imply same fingerprint");
                return;
            }
            for next in branch_states(state) {
                walk(&next, by_key);
            }
        }
        walk(&root, &mut by_key);
        // Many distinct configurations, and (with ~2^128 space) no
        // fingerprint collisions among them at this scale.
        let fps: HashSet<u128> = by_key.values().copied().collect();
        assert!(by_key.len() > 10);
        assert_eq!(fps.len(), by_key.len(), "unexpected fingerprint collision");
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let seq = explore(3, fan_out(), |_| Immediate, usize::MAX, |_| true);
        for threads in [1, 2, 4] {
            let par = explore_parallel(3, fan_out(), |_| Immediate, threads, usize::MAX, |_| true);
            assert_eq!(par.schedules, seq.schedules, "threads = {threads}");
            assert!(!par.truncated);
        }
    }

    #[test]
    fn parallel_visits_same_run_multiset() {
        let mut seq_runs: BTreeMap<Vec<(String, String)>, usize> = BTreeMap::new();
        explore(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                *seq_runs.entry(fingerprint(run)).or_default() += 1;
                true
            },
        );
        let par_runs = Mutex::new(BTreeMap::<Vec<(String, String)>, usize>::new());
        explore_parallel(
            3,
            fan_out(),
            |_| Immediate,
            4,
            usize::MAX,
            |run| {
                *par_runs
                    .lock()
                    .expect("no visitor panicked")
                    .entry(fingerprint(run))
                    .or_default() += 1;
                true
            },
        );
        assert_eq!(seq_runs, par_runs.into_inner().expect("final read"));
    }

    /// Condemns any prefix whose deliveries on the (0 → 1) channel are
    /// out of send order — an online FIFO check via the live `▷`.
    #[derive(Clone)]
    struct FifoCheck;
    impl PrefixMonitor for FifoCheck {
        fn on_event(&mut self, view: &StreamingRun, ev: SystemEvent) -> bool {
            use msgorder_runs::{EventKind, UserEvent};
            if ev.kind != EventKind::Deliver {
                return true;
            }
            // Any earlier-sent, later-delivered same-channel message?
            for other in view.completed() {
                let (a, b) = (*other, ev.msg);
                if a != b
                    && view.before(UserEvent::send(b), UserEvent::send(a))
                    && view.before(UserEvent::deliver(a), UserEvent::deliver(b))
                {
                    return false;
                }
            }
            true
        }
    }

    #[test]
    fn monitored_exploration_prunes_condemned_prefixes() {
        let mut plain_total = 0usize;
        let mut plain_fifo = 0usize;
        explore(
            2,
            two_same_channel(),
            |_| Immediate,
            usize::MAX,
            |run| {
                plain_total += 1;
                let user = run.users_view();
                if user.before(
                    msgorder_runs::UserEvent::deliver(MessageId(0)),
                    msgorder_runs::UserEvent::deliver(MessageId(1)),
                ) {
                    plain_fifo += 1;
                }
                true
            },
        );
        let mut visited = 0usize;
        let exp = explore_monitored(
            2,
            two_same_channel(),
            |_| Immediate,
            FifoCheck,
            usize::MAX,
            |run| {
                visited += 1;
                let user = run.users_view();
                assert!(
                    user.before(
                        msgorder_runs::UserEvent::deliver(MessageId(0)),
                        msgorder_runs::UserEvent::deliver(MessageId(1)),
                    ),
                    "condemned schedules must not reach the visitor"
                );
                true
            },
        );
        assert!(exp.error.is_none());
        assert_eq!(exp.schedules, visited);
        assert_eq!(visited, plain_fifo, "every FIFO schedule still visited");
        assert!(exp.pruned > 0, "violating prefixes were cut");
        assert!(
            exp.schedules < plain_total,
            "pruning must reduce the visited count"
        );
    }

    #[test]
    fn parallel_cap_never_overshoots() {
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec {
                    at: i,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        };
        let exp = explore_parallel(2, w, |_| Immediate, 4, 3, |_| true);
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 3);
    }

    // ------------------------------------------------------------------
    // Partial-order reduction
    // ------------------------------------------------------------------

    fn por_opts() -> ExploreOptions {
        ExploreOptions {
            por: true,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn por_visits_same_run_set_with_fewer_schedules() {
        let mut plain_runs = BTreeSet::new();
        let plain = explore(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                plain_runs.insert(fingerprint(run));
                true
            },
        );
        let mut por_runs = BTreeSet::new();
        let por = explore_with(
            3,
            fan_out(),
            |_| Immediate,
            &por_opts(),
            &mut |run: &SystemRun| {
                por_runs.insert(fingerprint(run));
                true
            },
        );
        assert_eq!(plain_runs, por_runs, "reduction must not lose runs");
        assert!(
            por.schedules < plain.schedules,
            "commuting interleavings must be skipped: {} !< {}",
            por.schedules,
            plain.schedules
        );
        assert!(!por.truncated);
    }

    #[test]
    fn por_with_dedup_agrees_with_exact_dedup() {
        let mut exact_runs = BTreeSet::new();
        let exact = explore_dedup(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                exact_runs.insert(fingerprint(run));
                true
            },
        );
        let mut both_runs = BTreeSet::new();
        let opts = ExploreOptions {
            por: true,
            dedup: DedupMode::Exact,
            ..ExploreOptions::default()
        };
        let both = explore_with(
            3,
            fan_out(),
            |_| Immediate,
            &opts,
            &mut |run: &SystemRun| {
                both_runs.insert(fingerprint(run));
                true
            },
        );
        assert_eq!(exact_runs, both_runs, "POR over dedup must not lose runs");
        assert_eq!(
            both.schedules, exact.schedules,
            "terminal configurations are counted once either way"
        );
        assert!(both.states <= exact.states);
    }

    #[test]
    fn compact_dedup_matches_exact_counts() {
        let exact = explore_dedup(3, fan_out(), |_| Immediate, usize::MAX, |_| true);
        let opts = ExploreOptions {
            dedup: DedupMode::Compact {
                max_states: 0,
                spill: None,
            },
            ..ExploreOptions::default()
        };
        let compact = explore_with(3, fan_out(), |_| Immediate, &opts, &mut |_: &SystemRun| {
            true
        });
        assert_eq!(compact.schedules, exact.schedules);
        assert_eq!(compact.states, exact.states);
        assert!(!compact.truncated);
    }

    #[test]
    fn bounded_seen_set_without_spill_truncates() {
        let opts = ExploreOptions {
            dedup: DedupMode::Compact {
                max_states: 4,
                spill: None,
            },
            ..ExploreOptions::default()
        };
        let exp = explore_with(3, fan_out(), |_| Immediate, &opts, &mut |_: &SystemRun| {
            true
        });
        assert!(exp.truncated, "a full bounded table must truncate");
        assert!(
            exp.states <= 8,
            "inserts stop at the bound, got {}",
            exp.states
        );
    }

    #[test]
    fn spilling_seen_set_completes_the_search() {
        let dir = std::env::temp_dir().join(format!("msgorder-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let exact = explore_dedup(3, fan_out(), |_| Immediate, usize::MAX, |_| true);
        let opts = ExploreOptions {
            dedup: DedupMode::Compact {
                max_states: 8,
                spill: Some(dir.clone()),
            },
            ..ExploreOptions::default()
        };
        let spilled = explore_with(3, fan_out(), |_| Immediate, &opts, &mut |_: &SystemRun| {
            true
        });
        assert!(!spilled.truncated, "spilling must keep the search complete");
        assert_eq!(spilled.schedules, exact.schedules);
        assert_eq!(spilled.states, exact.states);
        assert!(
            spilled.spilled > 0,
            "the tiny bound must force segments out"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_seen_sets_get_distinct_spill_dirs() {
        // Regression: segment files used to be written straight into the
        // user-supplied directory with non-unique names, so two live (or
        // one aborted + one retried) explorations collided.
        let mode = DedupMode::Compact {
            max_states: 8,
            spill: Some(std::env::temp_dir().join("msgorder-spill-shared")),
        };
        let a = SeenShards::new(&mode, 1).expect("compact mode has a seen-set");
        let b = SeenShards::new(&mode, 1).expect("compact mode has a seen-set");
        assert_ne!(
            a.spill, b.spill,
            "two runs sharing a spill path must not share segment files"
        );
    }

    #[test]
    fn spill_run_directories_are_cleaned_up_on_drop() {
        let dir = std::env::temp_dir().join(format!("msgorder-spill-drop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExploreOptions {
            dedup: DedupMode::Compact {
                max_states: 8,
                spill: Some(dir.clone()),
            },
            ..ExploreOptions::default()
        };
        for _ in 0..2 {
            let exp = explore_with(3, fan_out(), |_| Immediate, &opts, &mut |_: &SystemRun| {
                true
            });
            assert!(exp.spilled > 0, "the tiny bound must force segments out");
        }
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "segment dirs leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn monitored_por_preserves_the_uncondemned_run_set() {
        // The satellite edge case: the monitor halts inside a branch
        // whose commuting siblings were sleep-skipped. The visitor-
        // observed run set must still match plain monitored search.
        let w = Workload {
            sends: vec![
                SendSpec {
                    at: 0,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 1,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 2,
                    src: 0,
                    dst: 2,
                    color: None,
                },
            ],
        };
        let mut plain_runs = BTreeSet::new();
        explore_monitored(
            3,
            w.clone(),
            |_| Immediate,
            FifoCheck,
            usize::MAX,
            |run| {
                plain_runs.insert(fingerprint(run));
                true
            },
        );
        let mut por_runs = BTreeSet::new();
        let exp = explore_monitored_with(
            3,
            w,
            |_| Immediate,
            FifoCheck,
            &por_opts(),
            &mut |run: &SystemRun| {
                por_runs.insert(fingerprint(run));
                true
            },
        );
        assert_eq!(
            plain_runs, por_runs,
            "sleep sets must not change what the monitor lets through"
        );
        assert!(exp.pruned > 0, "the monitor still condemns representatives");
    }

    #[test]
    fn non_quiet_faults_disable_por() {
        // Crash/restart (or any fault) invalidates node-locality, so
        // reduction silently degrades to the full search.
        let faults = FaultModel::none().with_crash(1, 1, Some(5));
        let full = ExploreOptions {
            faults: faults.clone(),
            ..ExploreOptions::default()
        };
        let with_por = ExploreOptions {
            por: true,
            faults,
            ..ExploreOptions::default()
        };
        let a = explore_with(3, fan_out(), |_| Immediate, &full, &mut |_: &SystemRun| {
            true
        });
        let b = explore_with(
            3,
            fan_out(),
            |_| Immediate,
            &with_por,
            &mut |_: &SystemRun| true,
        );
        assert_eq!(a.schedules, b.schedules, "POR must be inert under faults");
        assert_eq!(b.sleep_skipped, 0);
    }

    #[test]
    #[should_panic(expected = "quiet fault model")]
    fn dedup_with_faults_panics() {
        let opts = ExploreOptions {
            dedup: DedupMode::Exact,
            faults: FaultModel::none().with_crash(0, 1, None),
            ..ExploreOptions::default()
        };
        let _ = explore_with(
            2,
            two_same_channel(),
            |_| Immediate,
            &opts,
            &mut |_: &SystemRun| true,
        );
    }

    #[test]
    fn cap_zero_and_depth_bound_interact_soundly() {
        // cap = 0: truncated before anything completes.
        let opts = ExploreOptions {
            cap: 0,
            por: true,
            ..ExploreOptions::default()
        };
        let exp = explore_with(3, fan_out(), |_| Immediate, &opts, &mut |_: &SystemRun| {
            true
        });
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 0);
        // max_depth = 1: no schedule of this workload completes in one
        // dispatch, so everything truncates; a deeper bound finishes.
        let shallow = ExploreOptions {
            max_depth: 1,
            por: true,
            ..ExploreOptions::default()
        };
        let exp = explore_with(
            3,
            fan_out(),
            |_| Immediate,
            &shallow,
            &mut |_: &SystemRun| true,
        );
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 0);
        let deep = ExploreOptions {
            max_depth: 64,
            por: true,
            ..ExploreOptions::default()
        };
        let exp = explore_with(3, fan_out(), |_| Immediate, &deep, &mut |_: &SystemRun| {
            true
        });
        assert!(!exp.truncated);
        assert!(exp.schedules > 0);
    }

    #[test]
    fn threaded_por_matches_sequential_por() {
        let mut seq_runs: BTreeMap<Vec<(String, String)>, usize> = BTreeMap::new();
        let seq = explore_with(
            3,
            fan_out(),
            |_| Immediate,
            &por_opts(),
            &mut |run: &SystemRun| {
                *seq_runs.entry(fingerprint(run)).or_default() += 1;
                true
            },
        );
        for threads in [2, 4] {
            let opts = ExploreOptions {
                por: true,
                threads,
                ..ExploreOptions::default()
            };
            let par_runs = Mutex::new(BTreeMap::<Vec<(String, String)>, usize>::new());
            let par =
                explore_parallel_with(3, fan_out(), |_| Immediate, &opts, &|run: &SystemRun| {
                    *par_runs
                        .lock()
                        .expect("no visitor panicked")
                        .entry(fingerprint(run))
                        .or_default() += 1;
                    true
                });
            assert_eq!(par.schedules, seq.schedules, "threads = {threads}");
            assert_eq!(
                seq_runs,
                par_runs.into_inner().expect("final read"),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn threaded_dedup_counts_terminal_configurations_once() {
        let exact = explore_dedup(3, fan_out(), |_| Immediate, usize::MAX, |_| true);
        let opts = ExploreOptions {
            por: true,
            threads: 4,
            dedup: DedupMode::Exact,
            ..ExploreOptions::default()
        };
        let par = explore_parallel_with(3, fan_out(), |_| Immediate, &opts, &|_: &SystemRun| true);
        assert_eq!(par.schedules, exact.schedules);
        assert!(par.states <= exact.states);
    }
}

//! Exhaustive schedule exploration: model-check a protocol over *every*
//! network ordering of a small workload instead of sampling seeds.
//!
//! The timed kernel resolves nondeterminism with sampled latencies; the
//! explorer instead branches on **which pending event fires next** —
//! any in-flight frame or timer, or each process's next unissued
//! request — and DFS-enumerates all interleavings, cloning the whole
//! world at each branch. Every complete schedule's captured run is
//! handed to the visitor, which typically checks a specification.
//!
//! Schedules explode combinatorially; keep workloads to a handful of
//! messages and use `cap` (the count of *completed schedules*; the
//! search stops once reached).

use crate::error::SimError;
use crate::kernel::{EventKind, KernelEvent, Protocol, Scheduled, SimConfig, Simulation};
use crate::liveness::{self, LivenessVerdict};
use crate::workload::Workload;
use msgorder_runs::{StreamingRun, SystemEvent, SystemRun};
use std::cmp::Reverse;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Complete schedules visited.
    pub schedules: usize,
    /// Whether the cap stopped the search early.
    pub truncated: bool,
    /// Prefixes condemned by the [`PrefixMonitor`] (and therefore never
    /// extended). Zero for the unmonitored entry points.
    pub pruned: usize,
    /// A protocol bug found along some schedule, with its counterexample
    /// trace; the search stops at the first one.
    pub error: Option<Box<SimError>>,
    /// Complete schedules that ended *non-quiescent* — the protocol
    /// inhibited some message forever along that interleaving.
    pub non_live: usize,
    /// Blame analysis of the first non-quiescent schedule encountered
    /// (under [`explore_parallel`] with several threads, "first" is
    /// whichever worker got there first).
    pub first_stall: Option<Box<LivenessVerdict>>,
}

/// An online check over growing run prefixes, used by
/// [`explore_monitored`] to cut schedule sub-trees the moment they are
/// known bad.
///
/// Cloned at every branch point (so implementations should keep their
/// state small); fed each run event in the order the explored schedule
/// executes it. Returning `false` *condemns* the prefix: because
/// forbidden-predicate violations are monotone under run extension,
/// every schedule extending a condemned prefix would violate too, so
/// the whole sub-tree is pruned.
pub trait PrefixMonitor: Clone {
    /// Called once per executed run event. Return `false` to condemn.
    fn on_event(&mut self, view: &StreamingRun, ev: SystemEvent) -> bool;
}

/// Exhaustively explores every schedule of `workload` under the
/// protocol, invoking `visit` with each complete run. `visit` may
/// return `false` to stop early (e.g. after finding a violation).
///
/// Per-process request order is preserved (a user issues its sends in
/// workload order); everything else — frame arrival order across and
/// within channels, timer firing order — is fully interleaved.
///
/// # Panics
/// Panics if a protocol livelocks within a schedule (more dispatches
/// than `10_000`), which would make exploration meaningless.
pub fn explore<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    let mut state = initial_state(processes, workload, factory);
    let mut exp = Exploration {
        schedules: 0,
        truncated: false,
        pruned: 0,
        error: None,
        non_live: 0,
        first_stall: None,
    };
    dfs(&mut state, cap, &mut exp, &mut visit);
    exp
}

/// Like [`explore`], but merges converging interleavings: two schedule
/// prefixes whose dispatches commute (events on different processes)
/// reach the *same* configuration, and the sub-tree below it is
/// explored only once. The set of distinct complete runs handed to
/// `visit` is identical to [`explore`]'s; `schedules` counts distinct
/// terminal configurations rather than schedules, so it is ≤ the
/// undeduplicated count.
///
/// Requires `P: Hash` — a configuration is keyed by the captured run so
/// far, the protocol states, the simulated clock, and the pending
/// events (an unordered multiset for the pool, ordered queues for the
/// per-process requests). Bookkeeping that cannot influence future
/// branching or run capture (event sequence labels, stats) is excluded
/// so that commuting prefixes actually collide.
pub fn explore_dedup<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone + Hash,
    V: FnMut(&SystemRun) -> bool,
{
    let mut state = initial_state(processes, workload, factory);
    let mut exp = Exploration {
        schedules: 0,
        truncated: false,
        pruned: 0,
        error: None,
        non_live: 0,
        first_stall: None,
    };
    let mut visited = HashSet::new();
    visited.insert(state.dedup_key());
    dfs_dedup(&mut state, cap, &mut exp, &mut visited, &mut visit);
    exp
}

/// Like [`explore`], but carries a [`PrefixMonitor`] along every branch
/// and prunes any prefix the monitor condemns — the schedule sub-tree
/// below a detected violation is never expanded. `visit` receives only
/// the complete runs of *uncondemned* schedules;
/// [`Exploration::pruned`] counts the condemned prefixes.
///
/// # Panics
/// Panics if a protocol livelocks within a schedule (see [`explore`]).
pub fn explore_monitored<P, M, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    monitor: M,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone,
    M: PrefixMonitor,
    V: FnMut(&SystemRun) -> bool,
{
    let mut state = initial_state(processes, workload, factory);
    state.world.record = true;
    let mut exp = Exploration {
        schedules: 0,
        truncated: false,
        pruned: 0,
        error: None,
        non_live: 0,
        first_stall: None,
    };
    let mut mon = monitor;
    if drain_into_monitor(&mut state, &mut mon) {
        exp.pruned = 1;
        return exp;
    }
    dfs_monitored(&mut state, &mon, cap, &mut exp, &mut visit);
    exp
}

/// Accounts a complete schedule's liveness: a leaf whose run is
/// non-quiescent wedged under this interleaving (the explorer has no
/// faults, so the blame is always the protocol's inhibition).
fn note_leaf_liveness<P>(state: &State<P>, exp: &mut Exploration) {
    if let Some(v) = liveness::analyze(&state.world, false) {
        exp.non_live += 1;
        if exp.first_stall.is_none() {
            exp.first_stall = Some(Box::new(v));
        }
    }
}

/// Feeds the journal of freshly executed run events to the monitor.
/// Returns `true` if the monitor condemned the prefix.
fn drain_into_monitor<P, M: PrefixMonitor>(state: &mut State<P>, mon: &mut M) -> bool {
    let fresh = std::mem::take(&mut state.world.fresh);
    for entry in fresh {
        // The explorer never journals wire/fault records (record_wire
        // stays off under exploration), so only run events appear.
        if let KernelEvent::Run { ev, .. } = entry {
            if !mon.on_event(&state.world.builder, ev) {
                return true;
            }
        }
    }
    false
}

/// Like [`explore`], but fans the top-level branches of the DFS out
/// across `threads` scoped worker threads. With `threads <= 1` this
/// *is* [`explore`] — same code path, same visit order. With more
/// threads the complete-schedule count (uncapped) and the multiset of
/// runs visited are identical, but visit order is nondeterministic and
/// `visit` runs concurrently, so it must be `Sync` (accumulate through
/// atomics or a mutex). When `cap` truncates the search, *which*
/// schedules were counted before the cut depends on thread timing.
///
/// # Panics
/// Propagates panics from worker threads (e.g. a livelocking protocol).
pub fn explore_parallel<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    threads: usize,
    cap: usize,
    visit: V,
) -> Exploration
where
    P: Protocol + Clone + Send,
    V: Fn(&SystemRun) -> bool + Sync,
{
    if threads <= 1 {
        return explore(processes, workload, factory, cap, |run| visit(run));
    }
    let state = initial_state(processes, workload, factory);
    let branches = branch_states(&state);
    if branches.is_empty() {
        // Nothing is pending: the empty schedule is the only schedule.
        if cap == 0 {
            return Exploration {
                schedules: 0,
                truncated: true,
                pruned: 0,
                error: None,
                non_live: 0,
                first_stall: None,
            };
        }
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        visit(&run);
        return Exploration {
            schedules: 1,
            truncated: false,
            pruned: 0,
            error: None,
            non_live: 0,
            first_stall: None,
        };
    }
    let schedules = AtomicUsize::new(0);
    let non_live = AtomicUsize::new(0);
    let stall: Mutex<Option<Box<LivenessVerdict>>> = Mutex::new(None);
    let truncated = AtomicBool::new(false);
    let stopped = AtomicBool::new(false);
    let error: Mutex<Option<Box<SimError>>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<State<P>>>> =
        branches.into_iter().map(|b| Mutex::new(Some(b))).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(slots.len()) {
            s.spawn(|| loop {
                if stopped.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let mut branch = slots[i]
                    .lock()
                    .expect("no worker panicked holding the slot")
                    .take()
                    .expect("each slot is claimed once");
                dfs_shared(
                    &mut branch,
                    cap,
                    &schedules,
                    &non_live,
                    &stall,
                    &truncated,
                    &stopped,
                    &error,
                    &visit,
                );
            });
        }
    });
    Exploration {
        schedules: schedules.load(Ordering::Relaxed),
        truncated: truncated.load(Ordering::Relaxed),
        pruned: 0,
        error: error
            .into_inner()
            .expect("no worker panicked holding the error slot"),
        non_live: non_live.load(Ordering::Relaxed),
        first_stall: stall
            .into_inner()
            .expect("no worker panicked holding the stall slot"),
    }
}

/// Builds the explorer's root state: the initial world via the normal
/// constructor (declares all messages), with the request events pulled
/// out into per-process queues so their relative order per process is
/// preserved.
fn initial_state<P: Protocol + Clone>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
) -> State<P> {
    let config = SimConfig::new(processes, crate::latency::LatencyModel::Fixed(1), 0);
    let sim = Simulation::new(config, workload, factory);
    let (mut world, mut protocols) = sim.into_parts();
    let mut requests: Vec<VecDeque<Scheduled>> = vec![VecDeque::new(); processes];
    let mut initial: Vec<Scheduled> = Vec::new();
    while let Some(Reverse(ev)) = world.queue.pop() {
        match ev.kind {
            EventKind::Request { .. } => requests[ev.node].push_back(ev),
            _ => initial.push(ev),
        }
    }
    for (node, protocol) in protocols.iter_mut().enumerate() {
        let mut ctx = world.ctx(node);
        protocol.on_init(&mut ctx);
    }
    while let Some(Reverse(ev)) = world.queue.pop() {
        initial.push(ev);
    }
    State {
        world,
        protocols,
        pool: initial,
        requests,
    }
}

/// One successor state per enabled branch: every pool event, then each
/// process's next unissued request (the same branch order as [`dfs`]).
fn branch_states<P: Protocol + Clone>(state: &State<P>) -> Vec<State<P>> {
    let mut out = Vec::new();
    for i in 0..state.pool.len() {
        let mut next = state.clone_state();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        out.push(next);
    }
    for p in 0..state.requests.len() {
        if !state.requests[p].is_empty() {
            let mut next = state.clone_state();
            let ev = next.requests[p].pop_front().expect("nonempty");
            next.step(ev);
            out.push(next);
        }
    }
    out
}

struct State<P> {
    world: crate::kernel::World,
    protocols: Vec<P>,
    /// In-flight frames and timers, any of which may fire next.
    pool: Vec<Scheduled>,
    /// Unissued user requests per process (ordered).
    requests: Vec<VecDeque<Scheduled>>,
}

impl<P: Protocol + Clone> State<P> {
    /// If the last dispatch poisoned the world, extracts the
    /// counterexample (with the partial trace and stats attached).
    fn take_error(&mut self) -> Option<Box<SimError>> {
        let mut e = self.world.error.take()?;
        e.trace = self.world.builder.build().ok();
        e.stats = self.world.stats.clone();
        Some(Box::new(e))
    }

    fn clone_state(&self) -> State<P> {
        State {
            world: self.world.clone(),
            protocols: self.protocols.clone(),
            pool: self.pool.clone(),
            requests: self.requests.clone(),
        }
    }

    fn step(&mut self, ev: Scheduled) {
        // Time is advisory under exploration: keep it monotone so stats
        // make sense, but ordering is the explorer's choice.
        self.world.now = self.world.now.max(ev.time);
        self.world.dispatch(&mut self.protocols, ev.node, ev.kind);
        // newly scheduled events join the unordered pool
        while let Some(Reverse(nev)) = self.world.queue.pop() {
            self.pool.push(nev);
        }
        assert!(
            self.pool.len() < 10_000,
            "protocol generates unbounded traffic under exploration"
        );
    }
}

/// A [`Hasher`] that records every byte fed to it instead of mixing
/// them down to 64 bits. Feeding a component's `Hash` impl through it
/// yields the component's full canonical encoding, so two states key
/// equal iff their hash material is identical — no truncation, no
/// collisions beyond what `Hash` itself conflates.
#[derive(Default)]
struct KeyRecorder {
    bytes: Vec<u8>,
}

impl Hasher for KeyRecorder {
    fn write(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }
    fn finish(&self) -> u64 {
        unreachable!("KeyRecorder keys are the recorded bytes, never a u64")
    }
}

impl<P: Protocol + Clone + Hash> State<P> {
    /// The full canonical key identifying this configuration up to
    /// everything that can influence future branching or run capture.
    ///
    /// Included: the captured run so far (the builder), the protocol
    /// states, the simulated clock, and every pending event's
    /// `(time, node, kind)`. The pool is canonicalized by *sorting* the
    /// per-event encodings — it is an unordered set of enabled events,
    /// and commuting prefixes produce it in different orders. Excluded:
    /// event sequence labels (they only break heap ties, and the
    /// explorer branches over all pool events regardless) and stats
    /// (not observable through the explorer's visitor). The RNG is
    /// untouched under exploration (fixed latency never samples), so it
    /// is excluded too.
    ///
    /// The key is the complete hash material, not a 64-bit digest: a
    /// digest collision would silently merge two *distinct*
    /// configurations and could prune a reachable violating schedule,
    /// which is unacceptable for a model checker. All component
    /// encodings are length-prefixed (std's collection `Hash` impls
    /// prefix lengths, and the variable-length pool entries are
    /// prefixed explicitly below), so the encoding is injective.
    fn dedup_key(&self) -> Vec<u8> {
        let mut h = KeyRecorder::default();
        self.world.builder.hash(&mut h);
        self.world.now.hash(&mut h);
        self.protocols.len().hash(&mut h);
        for p in &self.protocols {
            p.hash(&mut h);
        }
        let mut pool_keys: Vec<Vec<u8>> = self
            .pool
            .iter()
            .map(|ev| {
                let mut eh = KeyRecorder::default();
                (ev.time, ev.node).hash(&mut eh);
                ev.kind.hash(&mut eh);
                eh.bytes
            })
            .collect();
        pool_keys.sort_unstable();
        pool_keys.len().hash(&mut h);
        for k in pool_keys {
            k.len().hash(&mut h);
            h.bytes.extend_from_slice(&k);
        }
        for q in &self.requests {
            q.len().hash(&mut h);
            for ev in q {
                (ev.time, ev.node).hash(&mut h);
                ev.kind.hash(&mut h);
            }
        }
        h.bytes
    }
}

fn dfs<P, V>(state: &mut State<P>, cap: usize, exp: &mut Exploration, visit: &mut V) -> bool
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    if exp.schedules >= cap {
        exp.truncated = true;
        return false;
    }
    let pool_len = state.pool.len();
    let request_nodes: Vec<usize> = (0..state.requests.len())
        .filter(|&p| !state.requests[p].is_empty())
        .collect();
    if pool_len == 0 && request_nodes.is_empty() {
        exp.schedules += 1;
        note_leaf_liveness(state, exp);
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        return visit(&run);
    }
    // branch on every pool event
    for i in 0..pool_len {
        let mut next = state.clone_state();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if !dfs(&mut next, cap, exp, visit) {
            return false;
        }
    }
    // branch on each process's next request
    for p in request_nodes {
        let mut next = state.clone_state();
        let ev = next.requests[p].pop_front().expect("nonempty");
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if !dfs(&mut next, cap, exp, visit) {
            return false;
        }
    }
    true
}

/// [`dfs`] with a [`PrefixMonitor`] cloned along each branch; condemned
/// branches are pruned (counted, not descended into).
fn dfs_monitored<P, M, V>(
    state: &mut State<P>,
    monitor: &M,
    cap: usize,
    exp: &mut Exploration,
    visit: &mut V,
) -> bool
where
    P: Protocol + Clone,
    M: PrefixMonitor,
    V: FnMut(&SystemRun) -> bool,
{
    if exp.schedules >= cap {
        exp.truncated = true;
        return false;
    }
    let pool_len = state.pool.len();
    let request_nodes: Vec<usize> = (0..state.requests.len())
        .filter(|&p| !state.requests[p].is_empty())
        .collect();
    if pool_len == 0 && request_nodes.is_empty() {
        exp.schedules += 1;
        note_leaf_liveness(state, exp);
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        return visit(&run);
    }
    for i in 0..pool_len {
        let mut next = state.clone_state();
        let mut mon = monitor.clone();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if drain_into_monitor(&mut next, &mut mon) {
            exp.pruned += 1;
            continue;
        }
        if !dfs_monitored(&mut next, &mon, cap, exp, visit) {
            return false;
        }
    }
    for p in request_nodes {
        let mut next = state.clone_state();
        let mut mon = monitor.clone();
        let ev = next.requests[p].pop_front().expect("nonempty");
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if drain_into_monitor(&mut next, &mut mon) {
            exp.pruned += 1;
            continue;
        }
        if !dfs_monitored(&mut next, &mon, cap, exp, visit) {
            return false;
        }
    }
    true
}

/// [`dfs`] with configuration deduplication: a branch whose successor
/// state was already visited is pruned.
fn dfs_dedup<P, V>(
    state: &mut State<P>,
    cap: usize,
    exp: &mut Exploration,
    visited: &mut HashSet<Vec<u8>>,
    visit: &mut V,
) -> bool
where
    P: Protocol + Clone + Hash,
    V: FnMut(&SystemRun) -> bool,
{
    if exp.schedules >= cap {
        exp.truncated = true;
        return false;
    }
    let pool_len = state.pool.len();
    let request_nodes: Vec<usize> = (0..state.requests.len())
        .filter(|&p| !state.requests[p].is_empty())
        .collect();
    if pool_len == 0 && request_nodes.is_empty() {
        exp.schedules += 1;
        note_leaf_liveness(state, exp);
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        return visit(&run);
    }
    for i in 0..pool_len {
        let mut next = state.clone_state();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if visited.insert(next.dedup_key()) && !dfs_dedup(&mut next, cap, exp, visited, visit) {
            return false;
        }
    }
    for p in request_nodes {
        let mut next = state.clone_state();
        let ev = next.requests[p].pop_front().expect("nonempty");
        next.step(ev);
        if let Some(e) = next.take_error() {
            exp.error = Some(e);
            return false;
        }
        if visited.insert(next.dedup_key()) && !dfs_dedup(&mut next, cap, exp, visited, visit) {
            return false;
        }
    }
    true
}

/// [`dfs`] against shared atomic progress state, used by the workers of
/// [`explore_parallel`]. The schedule count is claimed with a
/// compare-exchange loop so it can never overshoot `cap`.
#[allow(clippy::too_many_arguments)] // one slot per shared accumulator
fn dfs_shared<P, V>(
    state: &mut State<P>,
    cap: usize,
    schedules: &AtomicUsize,
    non_live: &AtomicUsize,
    stall: &Mutex<Option<Box<LivenessVerdict>>>,
    truncated: &AtomicBool,
    stopped: &AtomicBool,
    error: &Mutex<Option<Box<SimError>>>,
    visit: &V,
) -> bool
where
    P: Protocol + Clone,
    V: Fn(&SystemRun) -> bool + Sync,
{
    if stopped.load(Ordering::Relaxed) {
        return false;
    }
    let pool_len = state.pool.len();
    let request_nodes: Vec<usize> = (0..state.requests.len())
        .filter(|&p| !state.requests[p].is_empty())
        .collect();
    if pool_len == 0 && request_nodes.is_empty() {
        let mut cur = schedules.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                truncated.store(true, Ordering::Relaxed);
                stopped.store(true, Ordering::Relaxed);
                return false;
            }
            match schedules.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if let Some(v) = liveness::analyze(&state.world, false) {
            non_live.fetch_add(1, Ordering::Relaxed);
            stall
                .lock()
                .expect("no worker panicked holding the stall slot")
                .get_or_insert_with(|| Box::new(v));
        }
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        if !visit(&run) {
            stopped.store(true, Ordering::Relaxed);
            return false;
        }
        return true;
    }
    for i in 0..pool_len {
        let mut next = state.clone_state();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        if let Some(e) = next.take_error() {
            error
                .lock()
                .expect("no worker panicked holding the error slot")
                .get_or_insert(e);
            stopped.store(true, Ordering::Relaxed);
            return false;
        }
        if !dfs_shared(
            &mut next, cap, schedules, non_live, stall, truncated, stopped, error, visit,
        ) {
            return false;
        }
    }
    for p in request_nodes {
        let mut next = state.clone_state();
        let ev = next.requests[p].pop_front().expect("nonempty");
        next.step(ev);
        if let Some(e) = next.take_error() {
            error
                .lock()
                .expect("no worker panicked holding the error slot")
                .get_or_insert(e);
            stopped.store(true, Ordering::Relaxed);
            return false;
        }
        if !dfs_shared(
            &mut next, cap, schedules, non_live, stall, truncated, stopped, error, visit,
        ) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SendSpec;
    use msgorder_runs::{MessageId, ProcessId};

    #[derive(Clone, Hash)]
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut crate::Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut crate::Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    #[derive(Clone, Hash)]
    struct Sink;
    impl Protocol for Sink {
        fn on_send_request(&mut self, ctx: &mut crate::Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            _ctx: &mut crate::Ctx<'_>,
            _from: ProcessId,
            _msg: MessageId,
            _tag: Vec<u8>,
        ) {
            // Never delivers: every schedule wedges.
        }
    }

    #[test]
    fn exploration_counts_non_live_schedules_with_blame() {
        let exp = explore(2, two_same_channel(), |_| Sink, 10_000, |_| true);
        assert!(exp.error.is_none());
        assert!(exp.schedules > 0);
        assert_eq!(
            exp.non_live, exp.schedules,
            "a sink protocol wedges every interleaving"
        );
        let stall = exp.first_stall.expect("blame for the first stall");
        assert_eq!(stall.stuck_count(), 2);
        assert_eq!(
            stall.classes(),
            vec!["deliver:protocol-inhibited".to_owned()]
        );

        // A live protocol reports none.
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |_| true);
        assert_eq!(exp.non_live, 0);
        assert!(exp.first_stall.is_none());

        // The parallel front end aggregates the same counts.
        let par = explore_parallel(2, two_same_channel(), |_| Sink, 4, 10_000, |_| true);
        assert_eq!(par.non_live, par.schedules);
        assert!(par.first_stall.is_some());
    }

    fn two_same_channel() -> Workload {
        Workload {
            sends: vec![
                SendSpec {
                    at: 0,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 1,
                    src: 0,
                    dst: 1,
                    color: None,
                },
            ],
        }
    }

    #[test]
    fn counts_all_interleavings_of_two_messages() {
        // Events for the immediate protocol: req0 (triggers send),
        // arrival0, req1, arrival1 — requests of the same process are
        // ordered, arrivals are free: schedules = interleavings of
        // [a0] and [a1] relative to req order... enumerate and check a
        // known property instead of an exact count: both delivery
        // orders must occur.
        let mut saw_in_order = false;
        let mut saw_inverted = false;
        let exp = explore(
            2,
            two_same_channel(),
            |_| Immediate,
            10_000,
            |run| {
                let user = run.users_view();
                use msgorder_runs::UserEvent;
                if user.before(
                    UserEvent::deliver(MessageId(0)),
                    UserEvent::deliver(MessageId(1)),
                ) {
                    saw_in_order = true;
                } else {
                    saw_inverted = true;
                }
                true
            },
        );
        assert!(!exp.truncated);
        assert!(exp.schedules >= 2);
        assert!(saw_in_order && saw_inverted, "explorer must reorder frames");
    }

    #[test]
    fn every_explored_run_is_quiescent_for_live_protocol() {
        let exp = explore(
            2,
            two_same_channel(),
            |_| Immediate,
            10_000,
            |run| {
                assert!(run.is_quiescent());
                true
            },
        );
        assert!(exp.schedules > 0);
    }

    #[test]
    fn early_stop_works() {
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |_| false);
        assert_eq!(exp.schedules, 1);
    }

    #[test]
    fn cap_truncates() {
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec {
                    at: i,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        };
        let exp = explore(2, w, |_| Immediate, 3, |_| true);
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 3);
    }

    /// A workload whose messages fan out to different destinations, so
    /// interleavings genuinely commute and dedup has something to merge.
    fn fan_out() -> Workload {
        Workload {
            sends: vec![
                SendSpec {
                    at: 0,
                    src: 0,
                    dst: 1,
                    color: None,
                },
                SendSpec {
                    at: 1,
                    src: 0,
                    dst: 2,
                    color: None,
                },
                SendSpec {
                    at: 2,
                    src: 0,
                    dst: 1,
                    color: None,
                },
            ],
        }
    }

    /// Canonical fingerprint of a run for set comparison across
    /// exploration strategies.
    fn fingerprint(run: &SystemRun) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = run
            .users_view()
            .relation_pairs()
            .into_iter()
            .map(|(a, b)| (format!("{a:?}"), format!("{b:?}")))
            .collect();
        pairs.sort();
        pairs
    }

    #[test]
    fn dedup_visits_same_distinct_runs_with_fewer_configurations() {
        use std::collections::BTreeSet;
        let mut plain_runs = BTreeSet::new();
        let plain = explore(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                plain_runs.insert(fingerprint(run));
                true
            },
        );
        let mut dedup_runs = BTreeSet::new();
        let dedup = explore_dedup(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                dedup_runs.insert(fingerprint(run));
                true
            },
        );
        assert_eq!(plain_runs, dedup_runs, "dedup must not lose runs");
        assert!(
            dedup.schedules < plain.schedules,
            "commuting interleavings must merge: {} !< {}",
            dedup.schedules,
            plain.schedules
        );
    }

    /// Walks the whole configuration graph, collecting the canonical
    /// dedup key of every distinct configuration reached.
    fn collect_keys(state: &State<Immediate>, seen: &mut HashSet<Vec<u8>>) {
        for next in branch_states(state) {
            if seen.insert(next.dedup_key()) {
                collect_keys(&next, seen);
            }
        }
    }

    #[test]
    fn dedup_key_survives_collisions_that_kill_a_truncated_hash() {
        // Regression for the 64-bit-digest dedup key: a digest collision
        // silently merges two distinct configurations, and in a model
        // checker that can prune a reachable *violating* schedule. The
        // canonical key is the full hash material, so distinct
        // configurations always key distinct — demonstrated here by
        // pigeonhole: over an 8-bit truncation of the same material,
        // collisions are guaranteed once we have > 256 distinct
        // configurations, yet every full key stays unique.
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec {
                    at: i,
                    src: (i as usize) % 3,
                    dst: ((i as usize) + 1) % 3,
                    color: None,
                })
                .collect(),
        };
        let root = initial_state(3, w, |_| Immediate);
        let mut keys = HashSet::new();
        keys.insert(root.dedup_key());
        collect_keys(&root, &mut keys);
        assert!(
            keys.len() > 256,
            "need > 256 distinct configurations for the pigeonhole \
             argument, got {}",
            keys.len()
        );
        // Truncate each canonical key to 8 bits the way any fixed-width
        // digest would: distinct configurations now collide...
        let truncated: HashSet<u8> = keys
            .iter()
            .map(|k| {
                use std::collections::hash_map::DefaultHasher;
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                h.finish() as u8
            })
            .collect();
        assert!(
            truncated.len() < keys.len(),
            "a truncated digest must collide on this many configurations"
        );
        // ...while the full canonical keys are all distinct by
        // construction (they are the deduplicating set itself).
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let seq = explore(3, fan_out(), |_| Immediate, usize::MAX, |_| true);
        for threads in [1, 2, 4] {
            let par = explore_parallel(3, fan_out(), |_| Immediate, threads, usize::MAX, |_| true);
            assert_eq!(par.schedules, seq.schedules, "threads = {threads}");
            assert!(!par.truncated);
        }
    }

    #[test]
    fn parallel_visits_same_run_multiset() {
        use std::collections::BTreeMap;
        let mut seq_runs: BTreeMap<Vec<(String, String)>, usize> = BTreeMap::new();
        explore(
            3,
            fan_out(),
            |_| Immediate,
            usize::MAX,
            |run| {
                *seq_runs.entry(fingerprint(run)).or_default() += 1;
                true
            },
        );
        let par_runs = Mutex::new(BTreeMap::<Vec<(String, String)>, usize>::new());
        explore_parallel(
            3,
            fan_out(),
            |_| Immediate,
            4,
            usize::MAX,
            |run| {
                *par_runs
                    .lock()
                    .expect("no visitor panicked")
                    .entry(fingerprint(run))
                    .or_default() += 1;
                true
            },
        );
        assert_eq!(seq_runs, par_runs.into_inner().expect("final read"));
    }

    /// Condemns any prefix whose deliveries on the (0 → 1) channel are
    /// out of send order — an online FIFO check via the live `▷`.
    #[derive(Clone)]
    struct FifoCheck;
    impl PrefixMonitor for FifoCheck {
        fn on_event(&mut self, view: &StreamingRun, ev: SystemEvent) -> bool {
            use msgorder_runs::{EventKind, UserEvent};
            if ev.kind != EventKind::Deliver {
                return true;
            }
            // Any earlier-sent, later-delivered same-channel message?
            for other in view.completed() {
                let (a, b) = (*other, ev.msg);
                if a != b
                    && view.before(UserEvent::send(b), UserEvent::send(a))
                    && view.before(UserEvent::deliver(a), UserEvent::deliver(b))
                {
                    return false;
                }
            }
            true
        }
    }

    #[test]
    fn monitored_exploration_prunes_condemned_prefixes() {
        let mut plain_total = 0usize;
        let mut plain_fifo = 0usize;
        explore(
            2,
            two_same_channel(),
            |_| Immediate,
            usize::MAX,
            |run| {
                plain_total += 1;
                let user = run.users_view();
                if user.before(
                    msgorder_runs::UserEvent::deliver(MessageId(0)),
                    msgorder_runs::UserEvent::deliver(MessageId(1)),
                ) {
                    plain_fifo += 1;
                }
                true
            },
        );
        let mut visited = 0usize;
        let exp = explore_monitored(
            2,
            two_same_channel(),
            |_| Immediate,
            FifoCheck,
            usize::MAX,
            |run| {
                visited += 1;
                let user = run.users_view();
                assert!(
                    user.before(
                        msgorder_runs::UserEvent::deliver(MessageId(0)),
                        msgorder_runs::UserEvent::deliver(MessageId(1)),
                    ),
                    "condemned schedules must not reach the visitor"
                );
                true
            },
        );
        assert!(exp.error.is_none());
        assert_eq!(exp.schedules, visited);
        assert_eq!(visited, plain_fifo, "every FIFO schedule still visited");
        assert!(exp.pruned > 0, "violating prefixes were cut");
        assert!(
            exp.schedules < plain_total,
            "pruning must reduce the visited count"
        );
    }

    #[test]
    fn parallel_cap_never_overshoots() {
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec {
                    at: i,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        };
        let exp = explore_parallel(2, w, |_| Immediate, 4, 3, |_| true);
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 3);
    }
}

//! Exhaustive schedule exploration: model-check a protocol over *every*
//! network ordering of a small workload instead of sampling seeds.
//!
//! The timed kernel resolves nondeterminism with sampled latencies; the
//! explorer instead branches on **which pending event fires next** —
//! any in-flight frame or timer, or each process's next unissued
//! request — and DFS-enumerates all interleavings, cloning the whole
//! world at each branch. Every complete schedule's captured run is
//! handed to the visitor, which typically checks a specification.
//!
//! Schedules explode combinatorially; keep workloads to a handful of
//! messages and use `cap` (the count of *completed schedules*; the
//! search stops once reached).

use crate::kernel::{EventKind, Protocol, Scheduled, SimConfig, Simulation};
use crate::workload::Workload;
use msgorder_runs::SystemRun;
use std::cmp::Reverse;
use std::collections::VecDeque;

/// The outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules visited.
    pub schedules: usize,
    /// Whether the cap stopped the search early.
    pub truncated: bool,
}

/// Exhaustively explores every schedule of `workload` under the
/// protocol, invoking `visit` with each complete run. `visit` may
/// return `false` to stop early (e.g. after finding a violation).
///
/// Per-process request order is preserved (a user issues its sends in
/// workload order); everything else — frame arrival order across and
/// within channels, timer firing order — is fully interleaved.
///
/// # Panics
/// Panics if a protocol livelocks within a schedule (more dispatches
/// than `10_000`), which would make exploration meaningless.
pub fn explore<P, V>(
    processes: usize,
    workload: Workload,
    factory: impl Fn(usize) -> P,
    cap: usize,
    mut visit: V,
) -> Exploration
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    // Build the initial world via the normal constructor (declares all
    // messages), then pull the request events out into per-process
    // queues so their relative order per process is preserved.
    let config = SimConfig {
        processes,
        latency: crate::latency::LatencyModel::Fixed(1),
        seed: 0,
    };
    let sim = Simulation::new(config, workload, factory);
    let (mut world, mut protocols) = sim.into_parts();
    let mut requests: Vec<VecDeque<Scheduled>> = vec![VecDeque::new(); processes];
    let mut initial: Vec<Scheduled> = Vec::new();
    while let Some(Reverse(ev)) = world.queue.pop() {
        match ev.kind {
            EventKind::Request { .. } => requests[ev.node].push_back(ev),
            _ => initial.push(ev),
        }
    }
    for node in 0..processes {
        let mut ctx = world.ctx(node);
        protocols[node].on_init(&mut ctx);
    }
    while let Some(Reverse(ev)) = world.queue.pop() {
        initial.push(ev);
    }
    let mut state = State {
        world,
        protocols,
        pool: initial,
        requests,
    };
    let mut exp = Exploration {
        schedules: 0,
        truncated: false,
    };
    dfs(&mut state, cap, &mut exp, &mut visit);
    exp
}

struct State<P> {
    world: crate::kernel::World,
    protocols: Vec<P>,
    /// In-flight frames and timers, any of which may fire next.
    pool: Vec<Scheduled>,
    /// Unissued user requests per process (ordered).
    requests: Vec<VecDeque<Scheduled>>,
}

impl<P: Protocol + Clone> State<P> {
    fn clone_state(&self) -> State<P> {
        State {
            world: self.world.clone(),
            protocols: self.protocols.clone(),
            pool: self.pool.clone(),
            requests: self.requests.clone(),
        }
    }

    fn step(&mut self, ev: Scheduled) {
        // Time is advisory under exploration: keep it monotone so stats
        // make sense, but ordering is the explorer's choice.
        self.world.now = self.world.now.max(ev.time);
        self.world.dispatch(&mut self.protocols, ev.node, ev.kind);
        // newly scheduled events join the unordered pool
        while let Some(Reverse(nev)) = self.world.queue.pop() {
            self.pool.push(nev);
        }
        assert!(
            self.pool.len() < 10_000,
            "protocol generates unbounded traffic under exploration"
        );
    }
}

fn dfs<P, V>(state: &mut State<P>, cap: usize, exp: &mut Exploration, visit: &mut V) -> bool
where
    P: Protocol + Clone,
    V: FnMut(&SystemRun) -> bool,
{
    if exp.schedules >= cap {
        exp.truncated = true;
        return false;
    }
    let pool_len = state.pool.len();
    let request_nodes: Vec<usize> = (0..state.requests.len())
        .filter(|&p| !state.requests[p].is_empty())
        .collect();
    if pool_len == 0 && request_nodes.is_empty() {
        exp.schedules += 1;
        let run = state
            .world
            .builder
            .build()
            .expect("explored runs are valid");
        return visit(&run);
    }
    // branch on every pool event
    for i in 0..pool_len {
        let mut next = state.clone_state();
        let ev = next.pool.swap_remove(i);
        next.step(ev);
        if !dfs(&mut next, cap, exp, visit) {
            return false;
        }
    }
    // branch on each process's next request
    for p in request_nodes {
        let mut next = state.clone_state();
        let ev = next.requests[p].pop_front().expect("nonempty");
        next.step(ev);
        if !dfs(&mut next, cap, exp, visit) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SendSpec;
    use msgorder_runs::{MessageId, ProcessId};

    #[derive(Clone)]
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut crate::Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut crate::Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    fn two_same_channel() -> Workload {
        Workload {
            sends: vec![
                SendSpec { at: 0, src: 0, dst: 1, color: None },
                SendSpec { at: 1, src: 0, dst: 1, color: None },
            ],
        }
    }

    #[test]
    fn counts_all_interleavings_of_two_messages() {
        // Events for the immediate protocol: req0 (triggers send),
        // arrival0, req1, arrival1 — requests of the same process are
        // ordered, arrivals are free: schedules = interleavings of
        // [a0] and [a1] relative to req order... enumerate and check a
        // known property instead of an exact count: both delivery
        // orders must occur.
        let mut saw_in_order = false;
        let mut saw_inverted = false;
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |run| {
            let user = run.users_view();
            use msgorder_runs::UserEvent;
            if user.before(
                UserEvent::deliver(MessageId(0)),
                UserEvent::deliver(MessageId(1)),
            ) {
                saw_in_order = true;
            } else {
                saw_inverted = true;
            }
            true
        });
        assert!(!exp.truncated);
        assert!(exp.schedules >= 2);
        assert!(saw_in_order && saw_inverted, "explorer must reorder frames");
    }

    #[test]
    fn every_explored_run_is_quiescent_for_live_protocol() {
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |run| {
            assert!(run.is_quiescent());
            true
        });
        assert!(exp.schedules > 0);
    }

    #[test]
    fn early_stop_works() {
        let exp = explore(2, two_same_channel(), |_| Immediate, 10_000, |_| false);
        assert_eq!(exp.schedules, 1);
    }

    #[test]
    fn cap_truncates() {
        let w = Workload {
            sends: (0..4)
                .map(|i| SendSpec { at: i, src: 0, dst: 1, color: None })
                .collect(),
        };
        let exp = explore(2, w, |_| Immediate, 3, |_| true);
        assert!(exp.truncated);
        assert_eq!(exp.schedules, 3);
    }
}

//! The realtime kernel: the simulator's event discipline paced against
//! the wall clock, driving protocol instances that live behind a
//! [`HostDriver`] (in-process, or real OS processes on real sockets).
//!
//! # Why live runs replay bit-exact
//!
//! The kernel is a *sequencer*: it keeps the exact `(time, seq)` binary
//! heap of the discrete-event simulator and dispatches one event at a
//! time, blocking on the host's reply before touching the next event.
//! Three invariants make the recorded trace indistinguishable from a
//! simulated one:
//!
//! 1. **Virtual time is authoritative.** Every event executes at its
//!    scheduled virtual time `ev.time`; the wall clock only *paces* the
//!    loop (sleep until `start + ev.time·tick`) and its lateness is
//!    accounted separately as [`DriftStats`] — it never leaks into the
//!    trace.
//! 2. **Arrival times are fixed at transmit time.** When a dispatch
//!    emits a frame, the kernel measures the wall clock *once*, converts
//!    it to ticks, and injects a [`TransmitDecision`] with
//!    `delay = max(wall+1 − now, 1)` into the same decision path replay
//!    uses. The frame's arrival is pushed into the heap at `now + delay`
//!    like any simulated frame — so the live execution order *is* the
//!    replay order by construction.
//! 3. **Dispatch is atomic.** The host call is a blocking round-trip;
//!    the returned action batch is applied at `ev.time` exactly as a
//!    simulated protocol's [`Ctx`](crate::Ctx) calls would be, through
//!    the same `World` machinery (journal, stats, fault accounting).
//!
//! Replaying the recorded decisions through [`Simulation::with_replay`]
//! therefore reproduces the identical event sequence, fingerprint, and
//! verdict — a live-socket trace rides the verify/shrink pipeline
//! unchanged (the perp-sim pacing idea from SNIPPETS.md §1, grafted
//! onto the replayable kernel).

use crate::error::{SimError, SimErrorKind};
use crate::host::{HostAction, HostEnv, HostEvent, ProtocolHost};
use crate::kernel::{
    DecisionSource, Protocol, RunObserver, SimConfig, StreamResult, TransmitDecision, World,
};
use crate::liveness;
use crate::workload::Workload;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A failure dispatching an event to a hosted protocol instance:
/// poisons the run with [`SimErrorKind::HostFailure`].
#[derive(Debug, Clone)]
pub struct HostError {
    /// The process whose host failed.
    pub node: usize,
    /// What the transport reported.
    pub detail: String,
}

impl HostError {
    /// A host error at `node`.
    pub fn new(node: usize, detail: impl Into<String>) -> HostError {
        HostError {
            node,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host failure at process {}: {}", self.node, self.detail)
    }
}

impl std::error::Error for HostError {}

/// Where the realtime kernel sends each event for processing: one
/// protocol instance per process, living wherever the driver keeps them
/// (in this process, or across sockets in real OS processes).
///
/// `dispatch` must be a *blocking* round-trip: the kernel will not move
/// to the next event until the action batch for this one is back — that
/// atomicity is what keeps live runs bit-exact under replay.
pub trait HostDriver {
    /// Processes `ev` at virtual time `now` on the protocol instance for
    /// `node`, returning the emitted actions in emission order.
    fn dispatch(
        &mut self,
        node: usize,
        ev: HostEvent,
        now: u64,
    ) -> Result<Vec<HostAction>, HostError>;
}

/// Wall-clock drift accounting for one realtime run.
///
/// Lag is measured in virtual ticks: how far past its scheduled wall
/// deadline an event actually dispatched (0 when the pacer woke on
/// time). Free-running mode (`tick == 0`) reports zero lag by
/// definition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftStats {
    /// Events dispatched.
    pub dispatches: u64,
    /// Events that dispatched at least one tick late.
    pub late: u64,
    /// Worst lag observed, in ticks.
    pub max_lag: u64,
    /// Sum of all lags, in ticks.
    pub total_lag: u64,
}

impl DriftStats {
    fn observe(&mut self, lag: u64) {
        self.dispatches += 1;
        if lag > 0 {
            self.late += 1;
            self.max_lag = self.max_lag.max(lag);
            self.total_lag += lag;
        }
    }

    /// Mean lag per dispatch, in ticks.
    pub fn mean_lag(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.total_lag as f64 / self.dispatches as f64
        }
    }
}

/// The outcome of a realtime run: the usual streaming result (or
/// counterexample) plus the wall-clock drift accounting.
#[derive(Debug)]
pub struct RealtimeOutcome {
    /// Exactly what [`Simulation::run_streaming`] would return — a live
    /// trace recorded through an observer replays against the simulator
    /// unchanged.
    ///
    /// [`Simulation::run_streaming`]: crate::Simulation::run_streaming
    pub outcome: Result<StreamResult, SimError>,
    /// Wall-clock pacing accounting.
    pub drift: DriftStats,
}

/// The wall-clock-paced kernel. Construction mirrors
/// [`Simulation::new`](crate::Simulation::new) — same message
/// numbering, same pre-queued requests, same tie-breaking — but events
/// are processed by a [`HostDriver`] instead of in-process protocol
/// instances, and the loop sleeps until each event's wall deadline
/// (`ev.time × tick`) before dispatching it.
pub struct RealtimeKernel {
    world: World,
    step_limit: usize,
    tick: Duration,
}

impl RealtimeKernel {
    /// Builds a realtime kernel for `config` and `workload`.
    ///
    /// # Panics
    /// Panics if a workload request references a process out of range.
    pub fn new(config: SimConfig, workload: &Workload) -> RealtimeKernel {
        RealtimeKernel {
            world: World::build(config, workload),
            step_limit: 1_000_000,
            tick: Duration::ZERO,
        }
    }

    /// Overrides the livelock step limit.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Sets the wall-clock duration of one virtual tick. `ZERO` (the
    /// default) free-runs: no sleeping, every frame takes one virtual
    /// tick in flight.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Wall time since `start`, in whole virtual ticks. Free-running
    /// mode pins the wall clock to the virtual clock.
    fn wall_ticks(&self, start: Instant, now: u64) -> u64 {
        if self.tick.is_zero() {
            return now;
        }
        let ticks = start.elapsed().as_nanos() / self.tick.as_nanos();
        u64::try_from(ticks).unwrap_or(u64::MAX)
    }

    /// Sleeps until `time`'s wall deadline (no-op when free-running or
    /// already past it).
    fn pace_until(&self, start: Instant, time: u64) {
        if self.tick.is_zero() {
            return;
        }
        let Some(deadline) = self.tick.as_nanos().checked_mul(u128::from(time)) else {
            return; // virtual time too large to pace — run as fast as possible
        };
        let elapsed = start.elapsed().as_nanos();
        if let Ok(remaining) = u64::try_from(deadline.saturating_sub(elapsed)) {
            if remaining > 0 {
                std::thread::sleep(Duration::from_nanos(remaining));
            }
        }
    }

    /// Dispatches one admitted event through the host and applies the
    /// returned batch: measures the wall clock once, injects one
    /// [`TransmitDecision`] per transmit-type action (arrival at
    /// `max(wall+1, now+1)`), then applies the actions at `now`.
    fn round_trip(
        &mut self,
        host: &mut dyn HostDriver,
        node: usize,
        ev: HostEvent,
        start: Instant,
        drift: &mut DriftStats,
    ) {
        let now = self.world.now;
        let actions = match host.dispatch(node, ev, now) {
            Ok(actions) => actions,
            Err(e) => {
                self.world
                    .fail(e.node, None, SimErrorKind::HostFailure { detail: e.detail });
                return;
            }
        };
        let wall = self.wall_ticks(start, now);
        drift.observe(wall.saturating_sub(now));
        let transmits = actions.iter().filter(|a| a.is_transmit()).count();
        if transmits > 0 {
            let delay = wall.saturating_add(1).saturating_sub(now).max(1);
            let decision = TransmitDecision {
                delay,
                dropped: None,
                dup_delay: None,
            };
            if let DecisionSource::Replay(log) = &mut self.world.decisions {
                log.extend(std::iter::repeat_n(decision, transmits));
            }
        }
        self.world.apply(node, actions);
    }

    /// Runs the workload through `host`, feeding every run/wire/fault
    /// event to `obs` exactly as [`Simulation::run_streaming`] does.
    ///
    /// [`Simulation::run_streaming`]: crate::Simulation::run_streaming
    pub fn run(mut self, host: &mut dyn HostDriver, obs: &mut dyn RunObserver) -> RealtimeOutcome {
        let mut drift = DriftStats::default();
        self.world.record = true;
        self.world.record_wire = obs.wants_wire();
        // All network decisions are injected just-in-time from wall
        // measurements; the sampling RNGs are never consulted.
        self.world.decisions = DecisionSource::Replay(VecDeque::new());
        let start = Instant::now();
        for node in 0..self.world.processes {
            self.round_trip(host, node, HostEvent::Init, start, &mut drift);
            if self.world.error.is_some() {
                break;
            }
        }
        let (completed, halted) = if self.world.error.is_some() {
            (false, false)
        } else if !self.world.notify_observer(obs) {
            (false, true)
        } else {
            self.drive(host, obs, start, &mut drift)
        };
        self.world.stats.end_time = self.world.now;
        self.world
            .poison_step_limit(self.step_limit, completed, halted);
        if let Some(mut e) = self.world.error.take() {
            e.trace = self.world.builder.build().ok();
            e.stats = self.world.stats.clone();
            return RealtimeOutcome {
                outcome: Err(e),
                drift,
            };
        }
        let liveness = if halted {
            None
        } else {
            liveness::analyze(&self.world, false)
        };
        RealtimeOutcome {
            outcome: Ok(StreamResult {
                run: self.world.builder,
                stats: self.world.stats,
                completed,
                halted,
                liveness,
            }),
            drift,
        }
    }

    /// The paced event loop; returns `(completed, halted)`.
    fn drive(
        &mut self,
        host: &mut dyn HostDriver,
        obs: &mut dyn RunObserver,
        start: Instant,
        drift: &mut DriftStats,
    ) -> (bool, bool) {
        let mut steps = 0usize;
        let mut completed = true;
        while let Some(Reverse(ev)) = self.world.queue.pop() {
            steps += 1;
            if steps > self.step_limit {
                completed = false;
                break;
            }
            self.pace_until(start, ev.time);
            debug_assert!(ev.time >= self.world.now, "time must not run backwards");
            self.world.now = ev.time;
            let Some(ev) = self.world.absorb_crashed(ev) else {
                continue;
            };
            self.world.stats.dispatched_events += 1;
            let node = ev.node;
            if let Some(hev) = self.world.admit(node, ev.kind) {
                self.round_trip(host, node, hev, start, drift);
            }
            if !self.world.notify_observer(obs) {
                return (false, true);
            }
            if self.world.error.is_some() {
                break;
            }
        }
        let _ = self.world.notify_observer(obs);
        (completed, false)
    }
}

/// A [`HostDriver`] keeping every protocol instance in this process —
/// the degenerate transport. Useful for tests and as the reference a
/// socket transport must be observationally equivalent to: a protocol
/// behaves identically under [`Simulation`](crate::Simulation), under
/// `InProcessHost`, and across real sockets, because all three drive the
/// same [`ProtocolHost`] objects.
pub struct InProcessHost {
    protocols: Vec<Box<dyn Protocol>>,
    envs: Vec<HostEnv>,
}

impl InProcessHost {
    /// One boxed protocol instance per process, from `factory`.
    pub fn new(
        processes: usize,
        workload: &Workload,
        factory: impl Fn(usize) -> Box<dyn Protocol>,
    ) -> InProcessHost {
        InProcessHost {
            protocols: (0..processes).map(&factory).collect(),
            envs: (0..processes)
                .map(|node| HostEnv::new(node, processes, workload))
                .collect(),
        }
    }
}

impl HostDriver for InProcessHost {
    fn dispatch(
        &mut self,
        node: usize,
        ev: HostEvent,
        now: u64,
    ) -> Result<Vec<HostAction>, HostError> {
        let env = self
            .envs
            .get_mut(node)
            .ok_or_else(|| HostError::new(node, "process id out of range"))?;
        env.set_now(now);
        self.protocols[node].process_event(env, ev);
        Ok(env.take_actions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Ctx;
    use crate::latency::LatencyModel;
    use msgorder_runs::{MessageId, ProcessId};

    /// Send and deliver immediately.
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    struct Sink;
    impl RunObserver for Sink {
        fn on_event(
            &mut self,
            _view: &msgorder_runs::StreamingRun,
            _ev: msgorder_runs::SystemEvent,
            _index: usize,
            _time: u64,
        ) -> bool {
            true
        }
    }

    fn config(n: usize) -> SimConfig {
        SimConfig::new(n, LatencyModel::Fixed(1), 0)
    }

    #[test]
    fn free_running_realtime_run_completes_quiescent() {
        let w = Workload::uniform_random(3, 20, 7);
        let mut host = InProcessHost::new(3, &w, |_| Box::new(Immediate));
        let out = RealtimeKernel::new(config(3), &w).run(&mut host, &mut Sink);
        let r = out.outcome.expect("no protocol bug");
        assert!(r.completed && !r.halted);
        assert!(r.run.is_quiescent() && r.run.is_complete());
        assert_eq!(r.stats.delivered, 20);
        assert_eq!(
            out.drift.dispatches,
            r.stats.dispatched_events as u64 + 3,
            "+init"
        );
        assert_eq!(out.drift.late, 0, "free-run never lags");
    }

    #[test]
    fn paced_run_tracks_wall_clock() {
        let w = Workload::uniform_random(2, 3, 1);
        let mut host = InProcessHost::new(2, &w, |_| Box::new(Immediate));
        let start = Instant::now();
        let out = RealtimeKernel::new(config(2), &w)
            .with_tick(Duration::from_micros(200))
            .run(&mut host, &mut Sink);
        let r = out.outcome.expect("no protocol bug");
        assert!(r.completed);
        // The last event's wall deadline must have been awaited.
        let min = Duration::from_micros(200) * u32::try_from(r.stats.end_time).expect("small");
        assert!(
            start.elapsed() >= min,
            "paced run finished before its last deadline"
        );
    }

    #[test]
    fn host_failure_poisons_with_structured_error() {
        struct Broken;
        impl HostDriver for Broken {
            fn dispatch(
                &mut self,
                node: usize,
                _ev: HostEvent,
                _now: u64,
            ) -> Result<Vec<HostAction>, HostError> {
                Err(HostError::new(node, "wire gone"))
            }
        }
        let w = Workload::uniform_random(2, 1, 0);
        let out = RealtimeKernel::new(config(2), &w).run(&mut Broken, &mut Sink);
        let e = out.outcome.expect_err("host failure is an error");
        assert!(
            matches!(&e.kind, SimErrorKind::HostFailure { detail } if detail == "wire gone"),
            "{e}"
        );
        assert_eq!(e.kind.discriminant_name(), "host-failure");
    }

    #[test]
    fn live_behavior_matches_the_simulator_on_the_same_protocol() {
        // Same protocol, same workload: the realtime kernel (free-run)
        // and the simulator agree on the logical run shape.
        let w = Workload::uniform_random(3, 12, 5);
        let mut host = InProcessHost::new(3, &w, |_| Box::new(Immediate));
        let live = RealtimeKernel::new(config(3), &w)
            .run(&mut host, &mut Sink)
            .outcome
            .expect("ok");
        let sim = crate::Simulation::run_uniform(config(3), w, |_| Immediate).expect("ok");
        assert_eq!(live.stats.user_messages, sim.stats.user_messages);
        assert_eq!(live.stats.delivered, sim.stats.delivered);
        assert!(live.run.is_quiescent());
    }
}

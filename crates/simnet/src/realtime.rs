//! The realtime kernel: the simulator's event discipline paced against
//! the wall clock, driving protocol instances that live behind a
//! [`HostDriver`] (in-process, or real OS processes on real sockets).
//!
//! # Why live runs replay bit-exact
//!
//! The kernel is a *sequencer*: it keeps the exact `(time, seq)` binary
//! heap of the discrete-event simulator and dispatches one event at a
//! time, blocking on the host's reply before touching the next event.
//! Three invariants make the recorded trace indistinguishable from a
//! simulated one:
//!
//! 1. **Virtual time is authoritative.** Every event executes at its
//!    scheduled virtual time `ev.time`; the wall clock only *paces* the
//!    loop (sleep until `start + ev.time·tick`) and its lateness is
//!    accounted separately as [`DriftStats`] — it never leaks into the
//!    trace.
//! 2. **Arrival times are fixed at transmit time.** When a dispatch
//!    emits a frame, the kernel measures the wall clock *once*, converts
//!    it to ticks, and injects a [`TransmitDecision`] with
//!    `delay = max(wall+1 − now, 1)` into the same decision path replay
//!    uses. The frame's arrival is pushed into the heap at `now + delay`
//!    like any simulated frame — so the live execution order *is* the
//!    replay order by construction.
//! 3. **Dispatch is atomic.** The host call is a blocking round-trip;
//!    the returned action batch is applied at `ev.time` exactly as a
//!    simulated protocol's [`Ctx`](crate::Ctx) calls would be, through
//!    the same `World` machinery (journal, stats, fault accounting).
//!
//! Replaying the recorded decisions through [`Simulation::with_replay`]
//! therefore reproduces the identical event sequence, fingerprint, and
//! verdict — a live-socket trace rides the verify/shrink pipeline
//! unchanged (the perp-sim pacing idea from SNIPPETS.md §1, grafted
//! onto the replayable kernel).

use crate::error::{SimError, SimErrorKind};
use crate::host::{HostAction, HostEnv, HostEvent, ProtocolHost};
use crate::kernel::{
    DecisionSource, Protocol, RunObserver, SimConfig, StreamResult, TransmitDecision, World,
};
use crate::liveness;
use crate::workload::Workload;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A failure dispatching an event to a hosted protocol instance:
/// poisons the run with [`SimErrorKind::HostFailure`].
#[derive(Debug, Clone)]
pub struct HostError {
    /// The process whose host failed.
    pub node: usize,
    /// What the transport reported.
    pub detail: String,
}

impl HostError {
    /// A host error at `node`.
    pub fn new(node: usize, detail: impl Into<String>) -> HostError {
        HostError {
            node,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host failure at process {}: {}", self.node, self.detail)
    }
}

impl std::error::Error for HostError {}

/// Where the realtime kernel sends each event for processing: one
/// protocol instance per process, living wherever the driver keeps them
/// (in this process, or across sockets in real OS processes).
///
/// `dispatch` must be a *blocking* round-trip: the kernel will not move
/// to the next event until the action batch for this one is back — that
/// atomicity is what keeps live runs bit-exact under replay.
pub trait HostDriver {
    /// Processes `ev` at virtual time `now` on the protocol instance for
    /// `node`, returning the emitted actions in emission order.
    fn dispatch(
        &mut self,
        node: usize,
        ev: HostEvent,
        now: u64,
    ) -> Result<Vec<HostAction>, HostError>;
}

/// The realtime kernel's wall-clock source: nanoseconds since an
/// arbitrary epoch fixed no later than the kernel's construction.
///
/// The default is [`MonotonicClock`]; tests inject scripted clocks to
/// exercise drift accounting, including clocks that step backwards
/// (NTP slew, VM pause) — which real deployments do see and which the
/// kernel must *surface*, not clamp away.
pub trait WallClock: Send {
    /// The current reading, in nanoseconds. Readings are compared
    /// against earlier ones; a smaller value is counted as a backwards
    /// clock step, never silently discarded.
    fn now_nanos(&mut self) -> u64;
}

/// The default [`WallClock`]: `Instant::elapsed` since construction,
/// monotone by the standard library's contract.
#[derive(Debug)]
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    /// Starts the clock now.
    pub fn new() -> MonotonicClock {
        MonotonicClock(Instant::now())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl WallClock for MonotonicClock {
    fn now_nanos(&mut self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Wall-clock drift accounting for one realtime run.
///
/// *Lag* is measured in virtual ticks: how far past its scheduled wall
/// deadline an event actually dispatched (0 when the pacer woke on
/// time). *Drift* is the signed version of the same quantity: negative
/// drift means the wall clock read **earlier** than the virtual
/// schedule — which on a monotone clock only happens transiently, but
/// on a stepping clock (NTP, VM pause) is a real signal. Backwards
/// raw readings are counted separately in `clock_went_backwards`.
/// Free-running mode (`tick == 0`) reports zero lag by definition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftStats {
    /// Events dispatched.
    pub dispatches: u64,
    /// Events that dispatched at least one tick late.
    pub late: u64,
    /// Worst lag observed, in ticks.
    pub max_lag: u64,
    /// Sum of all lags, in ticks.
    pub total_lag: u64,
    /// Most negative drift observed, in ticks (0 if drift never went
    /// negative). Negative drift was silently clamped to zero before
    /// signed tracking existed — a backwards wall clock looked like a
    /// perfectly punctual run.
    pub min_drift: i64,
    /// Most positive drift observed, in ticks (0 if never late).
    pub max_drift: i64,
    /// Raw clock readings that were smaller than the reading before
    /// them — each one is a wall clock stepping backwards mid-run.
    pub clock_went_backwards: u64,
}

impl DriftStats {
    fn observe(&mut self, drift: i64) {
        self.dispatches += 1;
        if drift > 0 {
            self.late += 1;
            let lag = drift as u64;
            self.max_lag = self.max_lag.max(lag);
            self.total_lag += lag;
        }
        self.min_drift = self.min_drift.min(drift);
        self.max_drift = self.max_drift.max(drift);
    }

    /// Mean lag per dispatch, in ticks.
    pub fn mean_lag(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.total_lag as f64 / self.dispatches as f64
        }
    }
}

/// The outcome of a realtime run: the usual streaming result (or
/// counterexample) plus the wall-clock drift accounting.
#[derive(Debug)]
pub struct RealtimeOutcome {
    /// Exactly what [`Simulation::run_streaming`] would return — a live
    /// trace recorded through an observer replays against the simulator
    /// unchanged.
    ///
    /// [`Simulation::run_streaming`]: crate::Simulation::run_streaming
    pub outcome: Result<StreamResult, SimError>,
    /// Wall-clock pacing accounting.
    pub drift: DriftStats,
}

/// The wall-clock-paced kernel. Construction mirrors
/// [`Simulation::new`](crate::Simulation::new) — same message
/// numbering, same pre-queued requests, same tie-breaking — but events
/// are processed by a [`HostDriver`] instead of in-process protocol
/// instances, and the loop sleeps until each event's wall deadline
/// (`ev.time × tick`) before dispatching it.
pub struct RealtimeKernel {
    world: World,
    step_limit: usize,
    tick: Duration,
    clock: Box<dyn WallClock>,
    /// Epoch reading taken when the run starts; elapsed time is every
    /// later reading minus this, *signed* — a backwards-stepping clock
    /// produces negative elapsed time rather than a silent clamp.
    epoch: u64,
    last_reading: u64,
    backwards_steps: u64,
}

impl RealtimeKernel {
    /// Builds a realtime kernel for `config` and `workload`.
    ///
    /// # Panics
    /// Panics if a workload request references a process out of range.
    pub fn new(config: SimConfig, workload: &Workload) -> RealtimeKernel {
        RealtimeKernel {
            world: World::build(config, workload),
            step_limit: 1_000_000,
            tick: Duration::ZERO,
            clock: Box::new(MonotonicClock::new()),
            epoch: 0,
            last_reading: 0,
            backwards_steps: 0,
        }
    }

    /// Overrides the livelock step limit.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Sets the wall-clock duration of one virtual tick. `ZERO` (the
    /// default) free-runs: no sleeping, every frame takes one virtual
    /// tick in flight.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Replaces the wall-clock source (tests inject scripted clocks;
    /// deployments keep the default [`MonotonicClock`]).
    pub fn with_clock(mut self, clock: impl WallClock + 'static) -> Self {
        self.clock = Box::new(clock);
        self
    }

    /// Reads the clock, counting backwards steps against the previous
    /// raw reading, and returns signed nanoseconds since the epoch.
    fn elapsed_nanos(&mut self) -> i128 {
        let reading = self.clock.now_nanos();
        if reading < self.last_reading {
            self.backwards_steps += 1;
        }
        self.last_reading = reading;
        i128::from(reading) - i128::from(self.epoch)
    }

    /// Wall time since the epoch, in whole virtual ticks (signed —
    /// negative when the clock stepped back past the epoch).
    /// Free-running mode pins the wall clock to the virtual clock.
    fn wall_ticks(&mut self, now: u64) -> i64 {
        if self.tick.is_zero() {
            return i64::try_from(now).unwrap_or(i64::MAX);
        }
        let ticks = self.elapsed_nanos() / self.tick.as_nanos() as i128;
        i64::try_from(ticks).unwrap_or(if ticks > 0 { i64::MAX } else { i64::MIN })
    }

    /// Sleeps until `time`'s wall deadline (no-op when free-running or
    /// already past it).
    fn pace_until(&mut self, time: u64) {
        if self.tick.is_zero() {
            return;
        }
        let Some(deadline) = self.tick.as_nanos().checked_mul(u128::from(time)) else {
            return; // virtual time too large to pace — run as fast as possible
        };
        let elapsed = self.elapsed_nanos();
        let remaining = i128::try_from(deadline).unwrap_or(i128::MAX) - elapsed;
        if let (Ok(remaining), true) = (u64::try_from(remaining), remaining > 0) {
            std::thread::sleep(Duration::from_nanos(remaining));
        }
    }

    /// Dispatches one admitted event through the host and applies the
    /// returned batch: measures the wall clock once, injects one
    /// [`TransmitDecision`] per transmit-type action (arrival at
    /// `max(wall+1, now+1)`), then applies the actions at `now`.
    fn round_trip(
        &mut self,
        host: &mut dyn HostDriver,
        node: usize,
        ev: HostEvent,
        drift: &mut DriftStats,
    ) {
        let now = self.world.now;
        let actions = match host.dispatch(node, ev, now) {
            Ok(actions) => actions,
            Err(e) => {
                self.world
                    .fail(e.node, None, SimErrorKind::HostFailure { detail: e.detail });
                return;
            }
        };
        let wall = self.wall_ticks(now);
        drift.observe(wall.saturating_sub_unsigned(now));
        drift.clock_went_backwards = self.backwards_steps;
        let transmits = actions.iter().filter(|a| a.is_transmit()).count();
        if transmits > 0 {
            // Arrival stays in the future even when the wall clock reads
            // behind (or has stepped backwards past) the virtual clock.
            let delay = (wall.saturating_add(1).saturating_sub_unsigned(now)).max(1);
            let decision = TransmitDecision {
                delay: u64::try_from(delay).unwrap_or(1).max(1),
                dropped: None,
                dup_delay: None,
                corrupt: None,
                forge: None,
                replay_delay: None,
                reorder_extra: 0,
            };
            if let DecisionSource::Replay(log) = &mut self.world.decisions {
                log.extend(std::iter::repeat_n(decision, transmits));
            }
        }
        self.world.apply(node, actions);
    }

    /// Runs the workload through `host`, feeding every run/wire/fault
    /// event to `obs` exactly as [`Simulation::run_streaming`] does.
    ///
    /// [`Simulation::run_streaming`]: crate::Simulation::run_streaming
    pub fn run(mut self, host: &mut dyn HostDriver, obs: &mut dyn RunObserver) -> RealtimeOutcome {
        let mut drift = DriftStats::default();
        self.world.record = true;
        self.world.record_wire = obs.wants_wire();
        // All network decisions are injected just-in-time from wall
        // measurements; the sampling RNGs are never consulted.
        self.world.decisions = DecisionSource::Replay(VecDeque::new());
        self.epoch = self.clock.now_nanos();
        self.last_reading = self.epoch;
        for node in 0..self.world.processes {
            self.round_trip(host, node, HostEvent::Init, &mut drift);
            if self.world.error.is_some() {
                break;
            }
        }
        let (completed, halted) = if self.world.error.is_some() {
            (false, false)
        } else if !self.world.notify_observer(obs) {
            (false, true)
        } else {
            self.drive(host, obs, &mut drift)
        };
        self.world.stats.end_time = self.world.now;
        self.world
            .poison_step_limit(self.step_limit, completed, halted);
        if let Some(mut e) = self.world.error.take() {
            e.trace = self.world.builder.build().ok();
            e.stats = self.world.stats.clone();
            return RealtimeOutcome {
                outcome: Err(e),
                drift,
            };
        }
        let liveness = if halted {
            None
        } else {
            liveness::analyze(&self.world, false)
        };
        RealtimeOutcome {
            outcome: Ok(StreamResult {
                run: self.world.builder,
                stats: self.world.stats,
                completed,
                halted,
                liveness,
            }),
            drift,
        }
    }

    /// The paced event loop; returns `(completed, halted)`.
    fn drive(
        &mut self,
        host: &mut dyn HostDriver,
        obs: &mut dyn RunObserver,
        drift: &mut DriftStats,
    ) -> (bool, bool) {
        let mut steps = 0usize;
        let mut completed = true;
        while let Some(Reverse(ev)) = self.world.queue.pop() {
            steps += 1;
            if steps > self.step_limit {
                completed = false;
                break;
            }
            self.pace_until(ev.time);
            debug_assert!(ev.time >= self.world.now, "time must not run backwards");
            self.world.now = ev.time;
            let Some(ev) = self.world.absorb_crashed(ev) else {
                continue;
            };
            self.world.stats.dispatched_events += 1;
            let node = ev.node;
            if let Some(hev) = self.world.admit(node, ev.kind) {
                self.round_trip(host, node, hev, drift);
            }
            if !self.world.notify_observer(obs) {
                return (false, true);
            }
            if self.world.error.is_some() {
                break;
            }
        }
        let _ = self.world.notify_observer(obs);
        (completed, false)
    }
}

/// A [`HostDriver`] keeping every protocol instance in this process —
/// the degenerate transport. Useful for tests and as the reference a
/// socket transport must be observationally equivalent to: a protocol
/// behaves identically under [`Simulation`](crate::Simulation), under
/// `InProcessHost`, and across real sockets, because all three drive the
/// same [`ProtocolHost`] objects.
pub struct InProcessHost {
    protocols: Vec<Box<dyn Protocol>>,
    envs: Vec<HostEnv>,
}

impl InProcessHost {
    /// One boxed protocol instance per process, from `factory`.
    pub fn new(
        processes: usize,
        workload: &Workload,
        factory: impl Fn(usize) -> Box<dyn Protocol>,
    ) -> InProcessHost {
        InProcessHost {
            protocols: (0..processes).map(&factory).collect(),
            envs: (0..processes)
                .map(|node| HostEnv::new(node, processes, workload))
                .collect(),
        }
    }
}

impl HostDriver for InProcessHost {
    fn dispatch(
        &mut self,
        node: usize,
        ev: HostEvent,
        now: u64,
    ) -> Result<Vec<HostAction>, HostError> {
        let env = self
            .envs
            .get_mut(node)
            .ok_or_else(|| HostError::new(node, "process id out of range"))?;
        env.set_now(now);
        self.protocols[node].process_event(env, ev);
        Ok(env.take_actions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Ctx;
    use crate::latency::LatencyModel;
    use msgorder_runs::{MessageId, ProcessId};

    /// Send and deliver immediately.
    struct Immediate;
    impl Protocol for Immediate {
        fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
            ctx.send_user(msg, Vec::new());
        }
        fn on_user_frame(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: ProcessId,
            msg: MessageId,
            _tag: Vec<u8>,
        ) {
            ctx.deliver(msg);
        }
    }

    struct Sink;
    impl RunObserver for Sink {
        fn on_event(
            &mut self,
            _view: &msgorder_runs::StreamingRun,
            _ev: msgorder_runs::SystemEvent,
            _index: usize,
            _time: u64,
        ) -> bool {
            true
        }
    }

    fn config(n: usize) -> SimConfig {
        SimConfig::new(n, LatencyModel::Fixed(1), 0)
    }

    #[test]
    fn free_running_realtime_run_completes_quiescent() {
        let w = Workload::uniform_random(3, 20, 7);
        let mut host = InProcessHost::new(3, &w, |_| Box::new(Immediate));
        let out = RealtimeKernel::new(config(3), &w).run(&mut host, &mut Sink);
        let r = out.outcome.expect("no protocol bug");
        assert!(r.completed && !r.halted);
        assert!(r.run.is_quiescent() && r.run.is_complete());
        assert_eq!(r.stats.delivered, 20);
        assert_eq!(
            out.drift.dispatches,
            r.stats.dispatched_events as u64 + 3,
            "+init"
        );
        assert_eq!(out.drift.late, 0, "free-run never lags");
    }

    #[test]
    fn paced_run_tracks_wall_clock() {
        let w = Workload::uniform_random(2, 3, 1);
        let mut host = InProcessHost::new(2, &w, |_| Box::new(Immediate));
        let start = Instant::now();
        let out = RealtimeKernel::new(config(2), &w)
            .with_tick(Duration::from_micros(200))
            .run(&mut host, &mut Sink);
        let r = out.outcome.expect("no protocol bug");
        assert!(r.completed);
        // The last event's wall deadline must have been awaited.
        let min = Duration::from_micros(200) * u32::try_from(r.stats.end_time).expect("small");
        assert!(
            start.elapsed() >= min,
            "paced run finished before its last deadline"
        );
    }

    /// A wall clock that steps backwards by a fixed amount on every
    /// reading after the first — the NTP-slew/VM-pause shape the drift
    /// accounting must surface instead of clamping to zero.
    struct BackwardsClock {
        reading: u64,
        step: u64,
        reads: u64,
    }

    impl WallClock for BackwardsClock {
        fn now_nanos(&mut self) -> u64 {
            self.reads += 1;
            if self.reads > 1 {
                self.reading = self.reading.saturating_sub(self.step);
            }
            self.reading
        }
    }

    #[test]
    fn backwards_clock_is_surfaced_not_clamped() {
        let w = Workload::uniform_random(2, 4, 3);
        let mut host = InProcessHost::new(2, &w, |_| Box::new(Immediate));
        let out = RealtimeKernel::new(config(2), &w)
            .with_tick(Duration::from_nanos(1))
            .with_clock(BackwardsClock {
                reading: 1_000_000,
                step: 50,
                reads: 0,
            })
            .run(&mut host, &mut Sink);
        let r = out.outcome.expect("no protocol bug");
        assert!(r.completed && !r.halted);
        assert!(
            out.drift.clock_went_backwards > 0,
            "every post-epoch reading steps back: {:?}",
            out.drift
        );
        assert!(
            out.drift.min_drift < 0,
            "negative drift must be recorded, not clamped: {:?}",
            out.drift
        );
        assert_eq!(out.drift.late, 0, "a clock running early is never late");
        assert_eq!(out.drift.total_lag, 0, "lag accounting stays positive-only");
    }

    #[test]
    fn monotonic_free_run_reports_no_backwards_steps() {
        let w = Workload::uniform_random(3, 10, 9);
        let mut host = InProcessHost::new(3, &w, |_| Box::new(Immediate));
        let out = RealtimeKernel::new(config(3), &w).run(&mut host, &mut Sink);
        assert!(out.outcome.is_ok());
        assert_eq!(out.drift.clock_went_backwards, 0);
        assert_eq!(out.drift.min_drift, 0);
    }

    #[test]
    fn host_failure_poisons_with_structured_error() {
        struct Broken;
        impl HostDriver for Broken {
            fn dispatch(
                &mut self,
                node: usize,
                _ev: HostEvent,
                _now: u64,
            ) -> Result<Vec<HostAction>, HostError> {
                Err(HostError::new(node, "wire gone"))
            }
        }
        let w = Workload::uniform_random(2, 1, 0);
        let out = RealtimeKernel::new(config(2), &w).run(&mut Broken, &mut Sink);
        let e = out.outcome.expect_err("host failure is an error");
        assert!(
            matches!(&e.kind, SimErrorKind::HostFailure { detail } if detail == "wire gone"),
            "{e}"
        );
        assert_eq!(e.kind.discriminant_name(), "host-failure");
    }

    #[test]
    fn live_behavior_matches_the_simulator_on_the_same_protocol() {
        // Same protocol, same workload: the realtime kernel (free-run)
        // and the simulator agree on the logical run shape.
        let w = Workload::uniform_random(3, 12, 5);
        let mut host = InProcessHost::new(3, &w, |_| Box::new(Immediate));
        let live = RealtimeKernel::new(config(3), &w)
            .run(&mut host, &mut Sink)
            .outcome
            .expect("ok");
        let sim = crate::Simulation::run_uniform(config(3), w, |_| Immediate).expect("ok");
        assert_eq!(live.stats.user_messages, sim.stats.user_messages);
        assert_eq!(live.stats.delivered, sim.stats.delivered);
        assert!(live.run.is_quiescent());
    }
}

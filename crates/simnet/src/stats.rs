//! Protocol overhead accounting.

use serde::{Deserialize, Serialize};

/// Cost counters collected during a simulation — the raw material of the
/// EXP-P1 protocol-comparison table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// User messages put on the wire.
    pub user_messages: usize,
    /// Control messages put on the wire.
    pub control_messages: usize,
    /// Total bytes of control payloads.
    pub control_bytes: usize,
    /// Total bytes piggybacked on user messages.
    pub tag_bytes: usize,
    /// Sum over user messages of `deliver_time - receive_time` (how long
    /// the protocol inhibited deliveries).
    pub total_inhibition: u64,
    /// Sum over user messages of `deliver_time - invoke_time`.
    pub total_latency: u64,
    /// Number of user messages delivered.
    pub delivered: usize,
    /// Final simulated time.
    pub end_time: u64,
    /// Frames eaten by the fault model (loss, partitions, arrivals at
    /// crashed processes).
    pub dropped_frames: usize,
    /// Extra frame copies created by network duplication.
    pub duplicated_frames: usize,
    /// Duplicate user-frame arrivals absorbed by the kernel before they
    /// could corrupt the run.
    pub suppressed_duplicates: usize,
    /// Frames re-sent by protocols via `resend_user`/`resend_control`.
    pub retransmitted_frames: usize,
    /// Events dispatched to protocol instances by the kernel loop
    /// (excludes crash-window drops/deferrals).
    pub dispatched_events: usize,
    /// High-water mark of the kernel event queue.
    pub max_queue_depth: usize,
}

impl Stats {
    /// Control messages per user message (the paper's headline cost of
    /// logically synchronous ordering).
    pub fn control_per_user(&self) -> f64 {
        if self.user_messages == 0 {
            0.0
        } else {
            self.control_messages as f64 / self.user_messages as f64
        }
    }

    /// Mean tag bytes per user message.
    pub fn tag_bytes_per_user(&self) -> f64 {
        if self.user_messages == 0 {
            0.0
        } else {
            self.tag_bytes as f64 / self.user_messages as f64
        }
    }

    /// Mean delivery inhibition per delivered message.
    pub fn mean_inhibition(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_inhibition as f64 / self.delivered as f64
        }
    }

    /// Mean end-to-end latency per delivered message.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let s = Stats::default();
        assert_eq!(s.control_per_user(), 0.0);
        assert_eq!(s.tag_bytes_per_user(), 0.0);
        assert_eq!(s.mean_inhibition(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = Stats {
            user_messages: 10,
            control_messages: 40,
            tag_bytes: 160,
            delivered: 10,
            total_inhibition: 50,
            total_latency: 500,
            ..Stats::default()
        };
        assert_eq!(s.control_per_user(), 4.0);
        assert_eq!(s.tag_bytes_per_user(), 16.0);
        assert_eq!(s.mean_inhibition(), 5.0);
        assert_eq!(s.mean_latency(), 50.0);
    }
}

//! Protocol overhead accounting.

use serde::{Deserialize, Serialize};

/// Cost counters collected during a simulation — the raw material of the
/// EXP-P1 protocol-comparison table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// User messages put on the wire.
    pub user_messages: usize,
    /// Control messages put on the wire.
    pub control_messages: usize,
    /// Total bytes of control payloads.
    pub control_bytes: usize,
    /// Total bytes piggybacked on user messages.
    pub tag_bytes: usize,
    /// Sum over user messages of `deliver_time - receive_time` (how long
    /// the protocol inhibited deliveries).
    pub total_inhibition: u64,
    /// Sum over user messages of `deliver_time - invoke_time`.
    pub total_latency: u64,
    /// Number of user messages delivered.
    pub delivered: usize,
    /// Final simulated time.
    pub end_time: u64,
    /// Frames eaten by the fault model (loss, partitions, arrivals at
    /// crashed processes).
    pub dropped_frames: usize,
    /// Extra frame copies created by network duplication.
    pub duplicated_frames: usize,
    /// Duplicate user-frame arrivals absorbed by the kernel before they
    /// could corrupt the run.
    pub suppressed_duplicates: usize,
    /// Frames re-sent by protocols via `resend_user`/`resend_control`.
    pub retransmitted_frames: usize,
    /// Events dispatched to protocol instances by the kernel loop
    /// (excludes crash-window drops/deferrals).
    pub dispatched_events: usize,
    /// High-water mark of the kernel event queue.
    pub max_queue_depth: usize,
    /// Frames whose payload the adversary bit-flipped in transit.
    pub corrupted_frames: usize,
    /// Forged (mutated-copy) control frames injected by the adversary.
    pub forged_frames: usize,
    /// Stale byte-exact copies replayed by the adversary.
    pub replayed_frames: usize,
    /// Frames hit by an adversarial reordering burst (extra latency).
    pub reordered_frames: usize,
    /// Frames refused by a protocol layer via `Ctx::reject_frame`.
    pub rejected_frames: usize,
}

// Hand-written (de)serialization: the five adversarial counters are
// emitted only when non-zero, so quiet-model runs — including the
// byte-pinned golden trace footers — serialize exactly the 14 legacy
// keys they always did, and legacy JSON reads back with zeros.
impl Serialize for Stats {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("user_messages", self.user_messages.to_json_value());
        m.insert("control_messages", self.control_messages.to_json_value());
        m.insert("control_bytes", self.control_bytes.to_json_value());
        m.insert("tag_bytes", self.tag_bytes.to_json_value());
        m.insert("total_inhibition", self.total_inhibition.to_json_value());
        m.insert("total_latency", self.total_latency.to_json_value());
        m.insert("delivered", self.delivered.to_json_value());
        m.insert("end_time", self.end_time.to_json_value());
        m.insert("dropped_frames", self.dropped_frames.to_json_value());
        m.insert("duplicated_frames", self.duplicated_frames.to_json_value());
        m.insert(
            "suppressed_duplicates",
            self.suppressed_duplicates.to_json_value(),
        );
        m.insert(
            "retransmitted_frames",
            self.retransmitted_frames.to_json_value(),
        );
        m.insert("dispatched_events", self.dispatched_events.to_json_value());
        m.insert("max_queue_depth", self.max_queue_depth.to_json_value());
        for (key, value) in [
            ("corrupted_frames", self.corrupted_frames),
            ("forged_frames", self.forged_frames),
            ("replayed_frames", self.replayed_frames),
            ("reordered_frames", self.reordered_frames),
            ("rejected_frames", self.rejected_frames),
        ] {
            if value != 0 {
                m.insert(key, value.to_json_value());
            }
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for Stats {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let counter = |key: &str| -> Result<usize, serde::Error> {
            match v.get_object_key(key) {
                Some(x) => Deserialize::from_json_value(x),
                None => Ok(0),
            }
        };
        Ok(Stats {
            user_messages: Deserialize::from_json_value(&v["user_messages"])?,
            control_messages: Deserialize::from_json_value(&v["control_messages"])?,
            control_bytes: Deserialize::from_json_value(&v["control_bytes"])?,
            tag_bytes: Deserialize::from_json_value(&v["tag_bytes"])?,
            total_inhibition: Deserialize::from_json_value(&v["total_inhibition"])?,
            total_latency: Deserialize::from_json_value(&v["total_latency"])?,
            delivered: Deserialize::from_json_value(&v["delivered"])?,
            end_time: Deserialize::from_json_value(&v["end_time"])?,
            dropped_frames: Deserialize::from_json_value(&v["dropped_frames"])?,
            duplicated_frames: Deserialize::from_json_value(&v["duplicated_frames"])?,
            suppressed_duplicates: Deserialize::from_json_value(&v["suppressed_duplicates"])?,
            retransmitted_frames: Deserialize::from_json_value(&v["retransmitted_frames"])?,
            dispatched_events: Deserialize::from_json_value(&v["dispatched_events"])?,
            max_queue_depth: Deserialize::from_json_value(&v["max_queue_depth"])?,
            corrupted_frames: counter("corrupted_frames")?,
            forged_frames: counter("forged_frames")?,
            replayed_frames: counter("replayed_frames")?,
            reordered_frames: counter("reordered_frames")?,
            rejected_frames: counter("rejected_frames")?,
        })
    }
}

impl Stats {
    /// Whether the run saw no adversarial wire activity at all — no
    /// injected corruption/forgery/replay/reordering and no rejected
    /// frames.
    pub fn adversarial_quiet(&self) -> bool {
        self.corrupted_frames == 0
            && self.forged_frames == 0
            && self.replayed_frames == 0
            && self.reordered_frames == 0
            && self.rejected_frames == 0
    }

    /// Control messages per user message (the paper's headline cost of
    /// logically synchronous ordering).
    pub fn control_per_user(&self) -> f64 {
        if self.user_messages == 0 {
            0.0
        } else {
            self.control_messages as f64 / self.user_messages as f64
        }
    }

    /// Mean tag bytes per user message.
    pub fn tag_bytes_per_user(&self) -> f64 {
        if self.user_messages == 0 {
            0.0
        } else {
            self.tag_bytes as f64 / self.user_messages as f64
        }
    }

    /// Mean delivery inhibition per delivered message.
    pub fn mean_inhibition(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_inhibition as f64 / self.delivered as f64
        }
    }

    /// Mean end-to-end latency per delivered message.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let s = Stats::default();
        assert_eq!(s.control_per_user(), 0.0);
        assert_eq!(s.tag_bytes_per_user(), 0.0);
        assert_eq!(s.mean_inhibition(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn adversarial_counters_serialize_only_when_nonzero() {
        let quiet = Stats {
            user_messages: 3,
            delivered: 3,
            ..Stats::default()
        };
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(!json.contains("corrupted_frames"), "{json}");
        assert!(!json.contains("rejected_frames"), "{json}");
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, quiet);

        let noisy = Stats {
            corrupted_frames: 2,
            rejected_frames: 5,
            ..quiet
        };
        let json = serde_json::to_string(&noisy).unwrap();
        assert!(json.contains("corrupted_frames"), "{json}");
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, noisy);
    }

    #[test]
    fn ratios_compute() {
        let s = Stats {
            user_messages: 10,
            control_messages: 40,
            tag_bytes: 160,
            delivered: 10,
            total_inhibition: 50,
            total_latency: 500,
            ..Stats::default()
        };
        assert_eq!(s.control_per_user(), 4.0);
        assert_eq!(s.tag_bytes_per_user(), 16.0);
        assert_eq!(s.mean_inhibition(), 5.0);
        assert_eq!(s.mean_latency(), 50.0);
    }
}

//! Liveness verdicts: structured blame analysis over the pending
//! frontier of a run that ended non-quiescent.
//!
//! The paper's characterization (Theorem 1, Lemma 2) is about *safety*;
//! its protocols are only meaningful if inhibition never becomes
//! deadlock. Under a [`FaultModel`](crate::FaultModel) a "safe" run can
//! simply wedge — the final retransmit black-holed, a partition never
//! healed, a process crashed forever — and a bare `is_quiescent()`
//! boolean (or a silent step-limit trip) explains none of it. A
//! [`LivenessVerdict`] instead names, for every pending message, the
//! system event (`s*`, `s`, `r*`, `r`, per §3.1) it is stuck at, the
//! process or link responsible, and the proximate cause the kernel can
//! prove from its own journal: all frame copies eaten by loss or an
//! unhealed partition, arrival at a crashed-forever process, a request
//! lost with its crashed owner, or the protocol inhibiting the
//! controllable event without ever executing it.

use crate::kernel::DropReason;
use msgorder_runs::{MessageId, ProcessId};
use serde::{Deserialize, Serialize};

/// The system event (§3.1) a pending message is stuck *before*: the
/// first of its four events that has not executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StuckStage {
    /// `x.s*` never executed — the send request never reached its owner.
    Request,
    /// `x.s` never executed — the protocol never released the send.
    Send,
    /// `x.r*` never executed — no frame copy ever arrived.
    Receive,
    /// `x.r` never executed — the protocol never released the delivery.
    Deliver,
}

impl StuckStage {
    /// The paper's event notation for this stage.
    pub fn notation(self) -> &'static str {
        match self {
            StuckStage::Request => "s*",
            StuckStage::Send => "s",
            StuckStage::Receive => "r*",
            StuckStage::Deliver => "r",
        }
    }

    fn class(self) -> &'static str {
        match self {
            StuckStage::Request => "request",
            StuckStage::Send => "send",
            StuckStage::Receive => "receive",
            StuckStage::Deliver => "deliver",
        }
    }
}

/// Who the blame analysis holds responsible for a stuck message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Blame {
    /// A process (its protocol instance, or its crash schedule).
    Process(ProcessId),
    /// The directed network link the message's frames traveled.
    Link {
        /// Sending endpoint.
        from: ProcessId,
        /// Receiving endpoint.
        to: ProcessId,
    },
}

impl std::fmt::Display for Blame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blame::Process(p) => write!(f, "P{}", p.0),
            Blame::Link { from, to } => write!(f, "link P{}->P{}", from.0, to.0),
        }
    }
}

/// The proximate cause the kernel can prove for a stuck message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StuckCause {
    /// Every copy of the frame put on the wire was eaten by the fault
    /// layer. `attempts > 1` means the protocol *did* retransmit and the
    /// final retransmit was dropped too — the retry budget is exhausted.
    FrameLost {
        /// Why the last copy was eaten.
        reason: DropReason,
        /// Copies put on the wire (first send, retransmits, duplicates).
        attempts: u32,
    },
    /// The frame was eaten by a partition whose window never closed
    /// before the run ended — the partition never healed.
    PartitionNeverHealed {
        /// One endpoint of the unhealed partition.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
        /// The partition's (unreached) healing tick.
        until: u64,
    },
    /// One or more copies reached the destination while it was crashed,
    /// and the destination never restarted.
    ArrivalAtCrashedProcess {
        /// The crashed destination.
        node: ProcessId,
    },
    /// The responsible process crashed without restarting: its pending
    /// work (the send request, or the delivery of an already-received
    /// frame) died with it.
    CrashedWithoutRestart {
        /// The crashed process.
        node: ProcessId,
    },
    /// The frame (or the event's dispatch) was still pending in the
    /// event queue when the step limit tripped.
    InFlight,
    /// The responsible process refused incoming frames (corrupted,
    /// forged, stale, or replayed) and then never executed the
    /// controllable event: the protocol survived the adversary's input
    /// but lost the state those frames carried.
    RejectedFrames {
        /// How many frames the process rejected.
        rejections: u32,
    },
    /// The responsible process was fed forged control frames and then
    /// wedged: its protocol state was likely poisoned by input no peer
    /// ever sent.
    ForgedControl {
        /// How many forged control frames were delivered to it.
        forged: u32,
    },
    /// Everything the network owed was delivered, the process is up, and
    /// the protocol still never executed the controllable event:
    /// inhibition became deadlock.
    ProtocolInhibited,
}

impl StuckCause {
    fn class(&self) -> String {
        match self {
            StuckCause::FrameLost {
                reason: DropReason::Loss,
                ..
            } => "frame-lost:loss".to_owned(),
            StuckCause::FrameLost {
                reason: DropReason::Partition,
                ..
            } => "frame-lost:partition".to_owned(),
            StuckCause::PartitionNeverHealed { .. } => "partition-never-healed".to_owned(),
            StuckCause::ArrivalAtCrashedProcess { .. } => "arrival-at-crashed".to_owned(),
            StuckCause::CrashedWithoutRestart { .. } => "crashed-without-restart".to_owned(),
            StuckCause::InFlight => "in-flight".to_owned(),
            StuckCause::RejectedFrames { .. } => "rejected-frames".to_owned(),
            StuckCause::ForgedControl { .. } => "forged-control".to_owned(),
            StuckCause::ProtocolInhibited => "protocol-inhibited".to_owned(),
        }
    }
}

impl std::fmt::Display for StuckCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StuckCause::FrameLost { reason, attempts } => {
                let why = match reason {
                    DropReason::Loss => "random loss",
                    DropReason::Partition => "a partition",
                };
                if *attempts > 1 {
                    write!(
                        f,
                        "all {attempts} transmissions eaten by {why} (final retransmit \
                         dropped; retry budget exhausted)"
                    )
                } else {
                    write!(f, "the only transmission was eaten by {why}")
                }
            }
            StuckCause::PartitionNeverHealed { a, b, until } => write!(
                f,
                "partition P{}<->P{} never healed (heals at t={until}, run ended first)",
                a.0, b.0
            ),
            StuckCause::ArrivalAtCrashedProcess { node } => {
                write!(f, "frame arrived at P{} while it was crashed", node.0)
            }
            StuckCause::CrashedWithoutRestart { node } => {
                write!(f, "P{} crashed and never restarted", node.0)
            }
            StuckCause::InFlight => write!(f, "still pending in the event queue"),
            StuckCause::RejectedFrames { rejections } => write!(
                f,
                "stuck after rejecting {rejections} adversarial frame(s) \
                 (state the frames carried never arrived intact)"
            ),
            StuckCause::ForgedControl { forged } => write!(
                f,
                "wedged after receiving {forged} forged control frame(s) \
                 (protocol state likely poisoned by forgery)"
            ),
            StuckCause::ProtocolInhibited => {
                write!(
                    f,
                    "protocol inhibited the event forever (deadlocked inhibition)"
                )
            }
        }
    }
}

/// One message of the pending frontier, with the kernel's blame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckMessage {
    /// The pending message.
    pub msg: MessageId,
    /// The system event it is stuck before.
    pub stage: StuckStage,
    /// The process or link held responsible.
    pub blame: Blame,
    /// The proximate cause.
    pub cause: StuckCause,
}

impl StuckMessage {
    /// The message's blame class: `stage:cause`, e.g.
    /// `receive:frame-lost:loss` — the deduplication key the shrinker
    /// and the chaos sweep group counterexamples by.
    pub fn class(&self) -> String {
        format!("{}:{}", self.stage.class(), self.cause.class())
    }
}

impl std::fmt::Display for StuckMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stuck at `{}` ({}): {}",
            self.msg,
            self.stage.notation(),
            self.blame,
            self.cause
        )
    }
}

/// The structured diagnosis of a non-quiescent run: every pending
/// message with the system event it is stuck at, the responsible
/// process or link, and the proximate cause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessVerdict {
    /// The pending frontier, in message-id order.
    pub stuck: Vec<StuckMessage>,
    /// Whether the run was cut by the step limit (`true`) or drained
    /// its event queue and wedged (`false`).
    pub step_limited: bool,
    /// Simulated time the run ended at.
    pub end_time: u64,
}

impl LivenessVerdict {
    /// The distinct blame classes of the frontier, sorted — the verdict
    /// identity the shrinker preserves.
    pub fn classes(&self) -> Vec<String> {
        let mut cs: Vec<String> = self.stuck.iter().map(StuckMessage::class).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// The lexicographically first blame class — a one-token summary.
    pub fn primary_class(&self) -> Option<String> {
        self.classes().into_iter().next()
    }

    /// Messages stuck on the frontier.
    pub fn stuck_count(&self) -> usize {
        self.stuck.len()
    }
}

impl std::fmt::Display for LivenessVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} message(s) pending at t={}{}:",
            self.stuck.len(),
            self.end_time,
            if self.step_limited {
                " (step limit tripped)"
            } else {
                " (event queue drained)"
            }
        )?;
        for s in &self.stuck {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Per-user-message wire accounting the kernel keeps for blame
/// analysis: how many frame copies went out, how many the fault layer
/// ate, and what happened to the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FrameFate {
    /// Copies put on the wire (first send + retransmits + duplicates).
    pub attempts: u32,
    /// Copies eaten at transmit time (loss or partition).
    pub dropped: u32,
    /// Why the last eaten copy was eaten.
    pub last_drop: Option<DropReason>,
    /// Copies that arrived at a crashed destination and were lost.
    pub crashed_arrivals: u32,
    /// The send request was lost to a permanent crash of its owner.
    pub request_lost: bool,
}

/// Runs the blame analysis over the world's pending frontier. Returns
/// `None` when the run is quiescent (nothing pending).
pub(crate) fn analyze(world: &crate::kernel::World, step_limited: bool) -> Option<LivenessVerdict> {
    let end = world.now;
    let faults = &world.faults;
    // A process is gone iff it is down at the end of the run with no
    // restart ever coming (`down_until` yields the permanent marker).
    let gone = |p: usize| matches!(faults.down_until(p, end), Some(None));
    // Where the benign analysis would conclude "the protocol inhibited
    // the event forever", an adversarial history at the blamed process
    // is the more proximate cause: it either refused frames (and lost
    // the state they carried) or was fed forged control input.
    let inhibited = |p: ProcessId| {
        if world.rejected_at[p.0] > 0 {
            StuckCause::RejectedFrames {
                rejections: world.rejected_at[p.0],
            }
        } else if world.forged_to[p.0] > 0 {
            StuckCause::ForgedControl {
                forged: world.forged_to[p.0],
            }
        } else {
            StuckCause::ProtocolInhibited
        }
    };
    let mut stuck = Vec::new();
    for meta in world.builder.messages() {
        let m = meta.id;
        if world.builder.contains(msgorder_runs::SystemEvent::new(
            m,
            msgorder_runs::EventKind::Deliver,
        )) {
            continue;
        }
        let invoked = world.invoke_time[m.0].is_some();
        let sent = world.sent[m.0];
        let received = world.receive_time[m.0].is_some();
        let fate = &world.frame_fate[m.0];
        let (src, dst) = (meta.src, meta.dst);
        let (stage, blame, cause) = if !invoked {
            let cause = if fate.request_lost || gone(src.0) {
                StuckCause::CrashedWithoutRestart { node: src }
            } else if step_limited {
                StuckCause::InFlight
            } else {
                inhibited(src)
            };
            (StuckStage::Request, Blame::Process(src), cause)
        } else if !sent {
            let cause = if gone(src.0) {
                StuckCause::CrashedWithoutRestart { node: src }
            } else {
                inhibited(src)
            };
            (StuckStage::Send, Blame::Process(src), cause)
        } else if !received {
            let in_flight = fate.attempts > fate.dropped + fate.crashed_arrivals;
            let (blame, cause) = if in_flight {
                // A copy is still scheduled: only the step limit can
                // leave it unprocessed.
                (Blame::Link { from: src, to: dst }, StuckCause::InFlight)
            } else if fate.crashed_arrivals > 0 && gone(dst.0) {
                (
                    Blame::Process(dst),
                    StuckCause::ArrivalAtCrashedProcess { node: dst },
                )
            } else if fate.last_drop == Some(DropReason::Partition) {
                match unhealed_partition(faults, src.0, dst.0, end) {
                    Some((a, b, until)) => (
                        Blame::Link { from: src, to: dst },
                        StuckCause::PartitionNeverHealed {
                            a: ProcessId(a),
                            b: ProcessId(b),
                            until,
                        },
                    ),
                    None => (
                        Blame::Link { from: src, to: dst },
                        StuckCause::FrameLost {
                            reason: DropReason::Partition,
                            attempts: fate.attempts,
                        },
                    ),
                }
            } else if fate.dropped > 0 {
                (
                    Blame::Link { from: src, to: dst },
                    StuckCause::FrameLost {
                        reason: DropReason::Loss,
                        attempts: fate.attempts,
                    },
                )
            } else if fate.crashed_arrivals > 0 {
                // Destination was down on arrival but has (or had) a
                // restart: the copy was lost all the same.
                (
                    Blame::Process(dst),
                    StuckCause::ArrivalAtCrashedProcess { node: dst },
                )
            } else {
                // No copy ever transmitted and yet `sent` — cannot
                // happen through `Ctx::send_user`; blame the protocol.
                (Blame::Process(src), StuckCause::ProtocolInhibited)
            };
            (StuckStage::Receive, blame, cause)
        } else {
            let cause = if gone(dst.0) {
                StuckCause::CrashedWithoutRestart { node: dst }
            } else {
                inhibited(dst)
            };
            (StuckStage::Deliver, Blame::Process(dst), cause)
        };
        stuck.push(StuckMessage {
            msg: m,
            stage,
            blame,
            cause,
        });
    }
    if stuck.is_empty() {
        None
    } else {
        Some(LivenessVerdict {
            stuck,
            step_limited,
            end_time: end,
        })
    }
}

/// Finds a partition over the `a<->b` link that was active at some
/// point and whose healing tick lies past the end of the run.
fn unhealed_partition(
    faults: &crate::FaultModel,
    a: usize,
    b: usize,
    end: u64,
) -> Option<(usize, usize, u64)> {
    faults
        .partitions
        .iter()
        .filter(|p| (p.a == a && p.b == b) || (p.a == b && p.b == a))
        .find(|p| p.until > end)
        .map(|p| (p.a, p.b, p.until))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_deduplicated() {
        let v = LivenessVerdict {
            stuck: vec![
                StuckMessage {
                    msg: MessageId(1),
                    stage: StuckStage::Receive,
                    blame: Blame::Link {
                        from: ProcessId(0),
                        to: ProcessId(1),
                    },
                    cause: StuckCause::FrameLost {
                        reason: DropReason::Loss,
                        attempts: 3,
                    },
                },
                StuckMessage {
                    msg: MessageId(0),
                    stage: StuckStage::Deliver,
                    blame: Blame::Process(ProcessId(1)),
                    cause: StuckCause::ProtocolInhibited,
                },
                StuckMessage {
                    msg: MessageId(2),
                    stage: StuckStage::Receive,
                    blame: Blame::Link {
                        from: ProcessId(0),
                        to: ProcessId(1),
                    },
                    cause: StuckCause::FrameLost {
                        reason: DropReason::Loss,
                        attempts: 1,
                    },
                },
            ],
            step_limited: false,
            end_time: 99,
        };
        assert_eq!(
            v.classes(),
            vec![
                "deliver:protocol-inhibited".to_owned(),
                "receive:frame-lost:loss".to_owned()
            ]
        );
        assert_eq!(v.primary_class().unwrap(), "deliver:protocol-inhibited");
        assert_eq!(v.stuck_count(), 3);
    }

    #[test]
    fn display_names_stage_blame_and_cause() {
        let s = StuckMessage {
            msg: MessageId(4),
            stage: StuckStage::Receive,
            blame: Blame::Link {
                from: ProcessId(0),
                to: ProcessId(2),
            },
            cause: StuckCause::FrameLost {
                reason: DropReason::Loss,
                attempts: 10,
            },
        };
        let text = s.to_string();
        assert!(text.contains("r*"), "{text}");
        assert!(text.contains("link P0->P2"), "{text}");
        assert!(text.contains("retry budget exhausted"), "{text}");
        assert_eq!(s.class(), "receive:frame-lost:loss");
    }
}

//! Network frames: user messages with protocol tags, or control traffic.

use msgorder_runs::MessageId;

/// What travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A user message (declared in the workload) carrying a protocol tag.
    ///
    /// The tag is an opaque byte string — protocols serialize whatever
    /// they piggyback (sequence numbers, vector clocks, matrices,
    /// causal-history graphs), and the byte length feeds the overhead
    /// accounting, so tag costs in the experiments are real.
    User {
        /// The message's identity.
        msg: MessageId,
        /// Serialized piggybacked data.
        tag: Vec<u8>,
    },
    /// A protocol-internal control message. Invisible to the user's
    /// view; counted by the statistics.
    Control {
        /// Serialized control payload.
        bytes: Vec<u8>,
    },
}

impl Frame {
    /// Number of payload/tag bytes this frame adds beyond the bare
    /// user payload.
    pub fn overhead_bytes(&self) -> usize {
        match self {
            Frame::User { tag, .. } => tag.len(),
            Frame::Control { bytes } => bytes.len(),
        }
    }

    /// Whether this is a control frame.
    pub fn is_control(&self) -> bool {
        matches!(self, Frame::Control { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_counts_tag_or_control_bytes() {
        let u = Frame::User {
            msg: MessageId(0),
            tag: vec![0; 16],
        };
        assert_eq!(u.overhead_bytes(), 16);
        assert!(!u.is_control());
        let c = Frame::Control { bytes: vec![0; 5] };
        assert_eq!(c.overhead_bytes(), 5);
        assert!(c.is_control());
    }
}

//! The specification classifier of Murty & Garg §4: build the predicate
//! graph, find cycles, count β vertices, decide the protocol class.
//!
//! The decision table (§4.3):
//!
//! | predicate graph | protocol |
//! |---|---|
//! | no cycle | specification **not implementable** |
//! | some cycle with ≥ 0 β vertices | tagging + control messages sufficient |
//! | some cycle with ≤ 1 β vertex | tagging alone sufficient |
//! | some cycle with 0 β vertices | the trivial protocol sufficient |
//!
//! Two independent engines compute the minimum cycle order:
//!
//! - [`cycles`] — faithful enumeration of the elementary cycles
//!   (Johnson-style, with a cap), exactly the objects the paper reasons
//!   about; and
//! - [`min_order`] — a 0-1 BFS over the *line graph*, where the
//!   transition `(u.p ▷ v.q) → (v.p' ▷ w.q')` costs 1 iff it makes `v` a
//!   β vertex (`q = r ∧ p' = s`). Lemma 4's contraction argument shows
//!   the two minima coincide; the property tests check that.
//!
//! [`classify`](classify::classify) combines them and produces a
//! [`classify::Report`] with the class, a witness cycle, the
//! Lemma 4 [`reduction`](reduce) trace and the Theorem 2/4 separation
//! [witnesses](witness).
//!
//! # Example
//!
//! ```
//! use msgorder_classifier::classify::{classify, Classification};
//! use msgorder_predicate::catalog;
//!
//! let report = classify(&catalog::causal());
//! assert!(matches!(report.classification, Classification::TaggedSufficient { .. }));
//!
//! let report = classify(&catalog::handoff());
//! assert!(matches!(report.classification, Classification::RequiresControlMessages { .. }));
//!
//! let report = classify(&catalog::receive_second_before_first());
//! assert!(matches!(report.classification, Classification::NotImplementable));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cycles;
pub mod dot;
pub mod explain;
pub mod graph;
pub mod min_order;
pub mod reduce;
pub mod witness;

pub use classify::{classify, Classification, Report};
pub use cycles::Cycle;
pub use graph::PredicateGraph;

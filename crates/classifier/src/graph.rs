//! The predicate graph `G_B(V, E)` (Definition 4.2).
//!
//! Vertices are the predicate's variables; each conjunct
//! `x_j.p ▷ x_k.q` contributes a directed edge `x_j → x_k` labelled with
//! the pair `(p, q)`. Parallel edges are kept — the definition is
//! explicitly a multigraph.

use msgorder_poset::DiGraph;
use msgorder_predicate::{Conjunct, ForbiddenPredicate, Var};
use msgorder_runs::UserEventKind;
use std::fmt;

/// The predicate graph of a (normalized) forbidden predicate.
#[derive(Debug, Clone)]
pub struct PredicateGraph {
    graph: DiGraph,
    /// One conjunct per edge, in edge-id order.
    conjuncts: Vec<Conjunct>,
    var_names: Vec<String>,
}

impl PredicateGraph {
    /// Builds the graph from a predicate's conjuncts.
    ///
    /// Self-relations (`x.p ▷ x.q`) become self-loops; callers that want
    /// the paper's semantics should
    /// [`normalize`](ForbiddenPredicate::normalize) first, which removes
    /// them (vacuous or unsatisfiable).
    pub fn of(pred: &ForbiddenPredicate) -> Self {
        let n = pred.var_count();
        let mut graph = DiGraph::new(n);
        let mut conjuncts = Vec::new();
        for c in pred.conjuncts() {
            graph
                .add_edge(c.lhs.var.0, c.rhs.var.0)
                .expect("conjunct variables are in range");
            conjuncts.push(*c);
        }
        PredicateGraph {
            graph,
            conjuncts,
            var_names: (0..n).map(|i| pred.var_name(Var(i)).to_owned()).collect(),
        }
    }

    /// The underlying multigraph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of vertices (= predicate variables).
    pub fn vertex_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges (= conjuncts).
    pub fn edge_count(&self) -> usize {
        self.conjuncts.len()
    }

    /// The conjunct behind edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn conjunct(&self, e: usize) -> Conjunct {
        self.conjuncts[e]
    }

    /// The source vertex and its event kind (`p` of `x_j.p ▷ x_k.q`).
    pub fn tail(&self, e: usize) -> (Var, UserEventKind) {
        let c = self.conjuncts[e];
        (c.lhs.var, c.lhs.kind)
    }

    /// The target vertex and its event kind (`q`).
    pub fn head(&self, e: usize) -> (Var, UserEventKind) {
        let c = self.conjuncts[e];
        (c.rhs.var, c.rhs.kind)
    }

    /// Whether following edge `e_in` into a vertex and leaving via
    /// `e_out` makes that vertex a **β vertex** (Definition 4.3): the
    /// incoming conjunct ends at `x.r` and the outgoing starts at `x.s`.
    ///
    /// # Panics
    /// Panics if the edges are not consecutive (`head(e_in)` ≠
    /// `tail(e_out)`).
    pub fn is_beta_transition(&self, e_in: usize, e_out: usize) -> bool {
        let (v_in, q) = self.head(e_in);
        let (v_out, p) = self.tail(e_out);
        assert_eq!(v_in, v_out, "edges must be consecutive at a vertex");
        q == UserEventKind::Deliver && p == UserEventKind::Send
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0]
    }

    /// Renders an edge as its conjunct, e.g. `x.s ▷ y.r`.
    pub fn edge_label(&self, e: usize) -> String {
        let c = self.conjuncts[e];
        format!(
            "{}.{} ▷ {}.{}",
            self.var_name(c.lhs.var),
            c.lhs.kind.symbol(),
            self.var_name(c.rhs.var),
            c.rhs.kind.symbol()
        )
    }
}

impl fmt::Display for PredicateGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predicate graph: {} vertices, {} edges",
            self.vertex_count(),
            self.edge_count()
        )?;
        for e in 0..self.edge_count() {
            writeln!(f, "  e{e}: {}", self.edge_label(e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    #[test]
    fn causal_graph_shape() {
        let g = PredicateGraph::of(&catalog::causal());
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
        // edge 0: x.s ▷ y.s ; edge 1: y.r ▷ x.r
        assert_eq!(g.tail(0), (Var(0), UserEventKind::Send));
        assert_eq!(g.head(0), (Var(1), UserEventKind::Send));
        assert_eq!(g.tail(1), (Var(1), UserEventKind::Deliver));
        assert_eq!(g.head(1), (Var(0), UserEventKind::Deliver));
    }

    #[test]
    fn beta_transition_at_causal_x() {
        let g = PredicateGraph::of(&catalog::causal());
        // at x: in = y.r ▷ x.r (edge 1), out = x.s ▷ y.s (edge 0): β.
        assert!(g.is_beta_transition(1, 0));
        // at y: in = x.s ▷ y.s (edge 0), out = y.r ▷ x.r (edge 1): not β.
        assert!(!g.is_beta_transition(0, 1));
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn beta_transition_checks_adjacency() {
        let g = PredicateGraph::of(&catalog::causal());
        let _ = g.is_beta_transition(0, 0);
    }

    #[test]
    fn example_graph_matches_paper() {
        // Example 1: V = {x1..x5}, E = {(x1,x2), (x2,x3), (x3,x4),
        // (x4,x1), (x4,x5), (x1,x4)}.
        let g = PredicateGraph::of(&catalog::example_4_2());
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 6);
        let mut pairs: Vec<(usize, usize)> = (0..g.edge_count())
            .map(|e| (g.tail(e).0 .0, g.head(e).0 .0))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (1, 2), (2, 3), (3, 0), (3, 4)]);
    }

    #[test]
    fn parallel_edges_preserved() {
        let p = msgorder_predicate::ForbiddenPredicate::parse("forbid x, y: x.s < y.s & x.r < y.r")
            .unwrap();
        let g = PredicateGraph::of(&p);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.graph().successors(0).count(), 2);
    }

    #[test]
    fn display_lists_edges() {
        let g = PredicateGraph::of(&catalog::causal());
        let s = g.to_string();
        assert!(s.contains("x.s ▷ y.s"));
        assert!(s.contains("y.r ▷ x.r"));
    }
}

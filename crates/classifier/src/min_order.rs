//! Minimum cycle order via 0-1 BFS on the line graph.
//!
//! The *order* of a cycle is its number of β vertices. Rather than
//! enumerating cycles (worst-case exponential), observe that β-ness is a
//! property of consecutive edge pairs: traversing `e_in = (u.p ▷ v.q)`
//! then `e_out = (v.p' ▷ w.q')` contributes one β vertex iff
//! `q = r ∧ p' = s`. So the minimum order over *edge-simple closed
//! walks* is a minimum-weight cycle in the line graph with 0/1 weights —
//! computable by a 0-1 BFS from every edge, `O(|E|·(|E| + |T|))`.
//!
//! Lemma 4's contraction argument (non-β adjacent conjuncts compose
//! transitively, preserving the labels seen by neighbouring vertices)
//! shows the minimum over edge-simple closed walks equals the minimum
//! over elementary cycles, so this agrees with
//! [`cycles::min_order_by_enumeration`](crate::cycles::min_order_by_enumeration)
//! — a property the test-suite checks on random multigraphs.

use crate::cycles::Cycle;
use crate::graph::PredicateGraph;
use msgorder_predicate::Var;
use std::collections::VecDeque;

/// The minimum order over all cycles of the predicate graph, with a
/// witness closed walk. `None` if the graph is acyclic.
pub fn min_cycle_order(g: &PredicateGraph) -> Option<Cycle> {
    let m = g.edge_count();
    if m == 0 {
        return None;
    }
    let mut best: Option<(usize, Vec<usize>)> = None;
    for start in 0..m {
        if let Some((order, walk)) = best_closed_walk_through(g, start) {
            let better = match &best {
                None => true,
                Some((bo, bw)) => order < *bo || (order == *bo && walk.len() < bw.len()),
            };
            if better {
                best = Some((order, walk));
            }
            if best.as_ref().is_some_and(|(o, _)| *o == 0) {
                break; // cannot do better than order 0
            }
        }
    }
    best.map(|(_, edges)| {
        let vertices: Vec<Var> = edges.iter().map(|&e| g.tail(e).0).collect();
        let mut betas = Vec::new();
        let k = edges.len();
        for i in 0..k {
            if g.is_beta_transition(edges[i], edges[(i + 1) % k]) {
                betas.push(g.head(edges[i]).0);
            }
        }
        // No dedup: order is the number of β *transitions*, which equals
        // the number of β vertices on elementary cycles (and minimal
        // walks are elementary — see module docs).
        betas.sort_unstable();
        Cycle {
            edges,
            vertices,
            beta_vertices: betas,
        }
    })
}

/// 0-1 BFS in the line graph from `start`, returning the cheapest closed
/// walk through `start` as `(order, edge sequence)`.
fn best_closed_walk_through(g: &PredicateGraph, start: usize) -> Option<(usize, Vec<usize>)> {
    let m = g.edge_count();
    const INF: usize = usize::MAX;
    let mut dist = vec![INF; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut dq: VecDeque<usize> = VecDeque::new();
    dist[start] = 0;
    dq.push_back(start);
    while let Some(e) = dq.pop_front() {
        let d = dist[e];
        let (_, v) = g.graph().endpoints(e);
        for &f in g.graph().out_edges(v) {
            let w = d + usize::from(g.is_beta_transition(e, f));
            if w < dist[f] {
                dist[f] = w;
                parent[f] = Some(e);
                if w == d {
                    dq.push_front(f);
                } else {
                    dq.push_back(f);
                }
            }
        }
    }
    // Close the walk: last edge f must feed back into start's tail.
    let (start_tail, _) = g.graph().endpoints(start);
    let mut best: Option<(usize, usize)> = None; // (order, closing edge)
    for (f, &d) in dist.iter().enumerate().take(m) {
        if d == INF {
            continue;
        }
        let (_, f_head) = g.graph().endpoints(f);
        if f_head != start_tail {
            continue;
        }
        let total = d + usize::from(g.is_beta_transition(f, start));
        if best.is_none_or(|(bo, _)| total < bo) {
            best = Some((total, f));
        }
    }
    let (order, mut cur) = best?;
    // Reconstruct edge path start -> ... -> cur, then the walk is that
    // path (closing transition cur -> start is implicit in cyclic form).
    let mut rev = vec![cur];
    while cur != start {
        cur = parent[cur].expect("reachable edges have parents");
        rev.push(cur);
    }
    rev.reverse();
    Some((order, rev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::min_order_by_enumeration;
    use msgorder_predicate::{catalog, ForbiddenPredicate, Var};
    use msgorder_runs::UserEventKind;

    #[test]
    fn agrees_with_enumeration_on_catalog() {
        for entry in catalog::all() {
            let g = PredicateGraph::of(&entry.predicate);
            let by_enum = min_order_by_enumeration(&g, 10_000).map(|c| c.order());
            let by_bfs = min_cycle_order(&g).map(|c| c.order());
            assert_eq!(by_enum, by_bfs, "disagreement on {}", entry.name);
        }
    }

    #[test]
    fn acyclic_returns_none() {
        let g = PredicateGraph::of(&catalog::receive_second_before_first());
        assert!(min_cycle_order(&g).is_none());
    }

    #[test]
    fn crown_orders() {
        for k in 2..=5 {
            let g = PredicateGraph::of(&catalog::sync_crown(k));
            assert_eq!(min_cycle_order(&g).unwrap().order(), k);
        }
    }

    #[test]
    fn witness_walk_is_closed_and_consistent() {
        let g = PredicateGraph::of(&catalog::example_4_2());
        let c = min_cycle_order(&g).unwrap();
        assert_eq!(c.order(), 1);
        // consecutive edges meet at a vertex, and the walk closes
        let k = c.edges.len();
        for i in 0..k {
            let (_, head) = g.graph().endpoints(c.edges[i]);
            let (tail, _) = g.graph().endpoints(c.edges[(i + 1) % k]);
            assert_eq!(head, tail, "walk breaks at step {i}");
        }
    }

    #[test]
    fn agrees_with_enumeration_on_random_multigraphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..6);
            let e = rng.gen_range(1..9);
            let mut b = ForbiddenPredicate::build(n);
            for _ in 0..e {
                let u = Var(rng.gen_range(0..n));
                let mut v = Var(rng.gen_range(0..n));
                while v == u {
                    v = Var(rng.gen_range(0..n));
                }
                let up = if rng.gen_bool(0.5) { u.s() } else { u.r() };
                let vq = if rng.gen_bool(0.5) { v.s() } else { v.r() };
                b = b.conjunct(up, vq);
            }
            let pred = b.finish();
            let g = PredicateGraph::of(&pred);
            let by_enum = min_order_by_enumeration(&g, 1_000_000).map(|c| c.order());
            let by_bfs = min_cycle_order(&g).map(|c| c.order());
            assert_eq!(
                by_enum, by_bfs,
                "seed {seed}: enumeration and line-graph BFS disagree on\n{pred}"
            );
        }
    }

    #[test]
    fn order_zero_early_exit_still_correct() {
        let g = PredicateGraph::of(&catalog::mutual_send());
        let c = min_cycle_order(&g).unwrap();
        assert_eq!(c.order(), 0);
        assert!(c.beta_vertices.is_empty());
    }

    #[test]
    fn beta_kinds_recomputed_from_labels() {
        // Check the β definition end-to-end on B1 = (x.s ▷ y.r) ∧ (y.r ▷ x.r).
        let p = catalog::causal_b1();
        let g = PredicateGraph::of(&p);
        let c = min_cycle_order(&g).unwrap();
        assert_eq!(c.order(), 1);
        assert_eq!(c.beta_vertices, vec![Var(0)]);
        // sanity: x's outgoing conjunct starts with Send
        assert_eq!(g.tail(0), (Var(0), UserEventKind::Send));
    }
}

//! Separation witnesses (Theorems 2 and 4).
//!
//! The necessity half of the characterization is proven by exhibiting,
//! for each class boundary, a run that every weaker protocol class must
//! admit but that violates the specification:
//!
//! - **Theorem 2** (implementability): if `G_B` is acyclic, the canonical
//!   run lies in `X_sync` yet satisfies `B` — no protocol can exclude it.
//! - **Theorem 4.2**: if no cycle has order ≤ 1, the canonical run lies
//!   in `X_co` yet satisfies `B` — no *tagged* protocol can exclude it
//!   (control messages are necessary).
//! - **Theorem 4.3**: if no cycle has order 0, the canonical run lies in
//!   `X_async` yet satisfies `B` — the trivial protocol cannot exclude
//!   it (tagging is necessary).

use crate::classify::{classify, Classification};
use msgorder_predicate::canonical::{canonical_run, CanonicalError};
use msgorder_predicate::{eval, ForbiddenPredicate};
use msgorder_runs::{limit_sets, UserRun};

/// Which limit set a separation witness belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessKind {
    /// In `X_sync` but not in `X_B`: the spec is not implementable.
    SyncViolation,
    /// In `X_co` but not in `X_B`: tagged protocols cannot implement it.
    CausalViolation,
    /// In `X_async` but not in `X_B`: the trivial protocol cannot.
    AsyncViolation,
}

/// A separation witness: a run in the stated limit set violating `X_B`.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Which boundary this witness separates.
    pub kind: WitnessKind,
    /// The run itself.
    pub run: UserRun,
}

/// Produces every separation witness the classification entitles us to:
///
/// - not implementable → a [`WitnessKind::SyncViolation`];
/// - requires control messages → a [`WitnessKind::CausalViolation`];
/// - tagged (but not tagless) → an [`WitnessKind::AsyncViolation`];
/// - tagless → no witness exists (`X_async ⊆ X_B` already).
///
/// Every returned witness is checked: it satisfies `B` and belongs to
/// the claimed limit set.
pub fn separation_witnesses(pred: &ForbiddenPredicate) -> Vec<Witness> {
    let report = classify(pred);
    let run = match canonical_run(pred) {
        Ok(c) => c.run,
        Err(CanonicalError::CyclicConjuncts) => {
            // Only possible when an order-0 cycle exists (Theorem 4.3
            // analysis); then the spec is tagless and needs no witness.
            return Vec::new();
        }
        Err(CanonicalError::UnsatisfiableConstraints) => return Vec::new(),
    };
    debug_assert!(
        eval::holds(pred, &run),
        "canonical run must satisfy its own predicate"
    );
    let mut out = Vec::new();
    match report.classification {
        Classification::NotImplementable => {
            debug_assert!(limit_sets::in_x_sync(&run));
            out.push(Witness {
                kind: WitnessKind::SyncViolation,
                run,
            });
        }
        Classification::RequiresControlMessages { .. } => {
            debug_assert!(limit_sets::in_x_co(&run));
            out.push(Witness {
                kind: WitnessKind::CausalViolation,
                run,
            });
        }
        Classification::TaggedSufficient { .. } => {
            out.push(Witness {
                kind: WitnessKind::AsyncViolation,
                run,
            });
        }
        Classification::TaglessSufficient { .. } => {}
    }
    out
}

/// Checks a witness against its claims; returns an error string naming
/// the first failed obligation (used by the experiments to *prove* each
/// table row rather than assert it silently).
pub fn verify_witness(pred: &ForbiddenPredicate, w: &Witness) -> Result<(), String> {
    if !eval::holds(pred, &w.run) {
        return Err("witness does not satisfy B (should violate the spec)".into());
    }
    let in_set = match w.kind {
        WitnessKind::SyncViolation => limit_sets::in_x_sync(&w.run),
        WitnessKind::CausalViolation => limit_sets::in_x_co(&w.run),
        WitnessKind::AsyncViolation => limit_sets::in_x_async(&w.run),
    };
    if !in_set {
        return Err(format!(
            "witness is not in the claimed limit set {:?}",
            w.kind
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    #[test]
    fn unimplementable_spec_gets_sync_witness() {
        let p = catalog::receive_second_before_first();
        let ws = separation_witnesses(&p);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, WitnessKind::SyncViolation);
        verify_witness(&p, &ws[0]).unwrap();
    }

    #[test]
    fn control_message_specs_get_causal_witness() {
        for p in [
            catalog::sync_crown(2),
            catalog::sync_crown(3),
            catalog::handoff(),
        ] {
            let ws = separation_witnesses(&p);
            assert_eq!(ws.len(), 1, "{p}");
            assert_eq!(ws[0].kind, WitnessKind::CausalViolation);
            verify_witness(&p, &ws[0]).unwrap();
        }
    }

    #[test]
    fn tagged_specs_get_async_witness() {
        for p in [
            catalog::causal(),
            catalog::fifo(),
            catalog::k_weaker_causal(2),
            catalog::global_forward_flush(),
        ] {
            let ws = separation_witnesses(&p);
            assert_eq!(ws.len(), 1, "{p}");
            assert_eq!(ws[0].kind, WitnessKind::AsyncViolation);
            verify_witness(&p, &ws[0]).unwrap();
        }
    }

    #[test]
    fn tagged_witness_is_not_causal() {
        // The async witness for a tagged spec must itself violate causal
        // ordering — otherwise a tagged protocol could not be necessary.
        let ws = separation_witnesses(&catalog::causal());
        assert!(!msgorder_runs::limit_sets::in_x_co(&ws[0].run));
    }

    #[test]
    fn tagless_specs_need_no_witness() {
        for p in [catalog::mutual_send(), catalog::mutual_deliver()] {
            assert!(separation_witnesses(&p).is_empty(), "{p}");
        }
    }

    #[test]
    fn verify_catches_wrong_claims() {
        // Hand-build a bogus witness: a causally-ordered run claimed to
        // violate causal ordering.
        let p = catalog::causal();
        let good = separation_witnesses(&p).remove(0);
        let bogus = Witness {
            kind: WitnessKind::SyncViolation, // the run is NOT sync
            run: good.run,
        };
        assert!(verify_witness(&p, &bogus).is_err());
    }
}

//! Graphviz export of predicate graphs.
//!
//! Renders the multigraph of Definition 4.2 with conjunct labels; when a
//! witness cycle is supplied its edges are bold and its β vertices are
//! filled — the visual form of the paper's Examples 1–3.

use crate::cycles::Cycle;
use crate::graph::PredicateGraph;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `g` in Graphviz dot syntax.
///
/// If `cycle` is given, its edges are drawn bold and its β vertices
/// filled; pipe the output through `dot -Tsvg` to visualize.
pub fn to_dot(g: &PredicateGraph, cycle: Option<&Cycle>) -> String {
    let beta: BTreeSet<usize> = cycle
        .map(|c| c.beta_vertices.iter().map(|v| v.0).collect())
        .unwrap_or_default();
    let cycle_edges: BTreeSet<usize> = cycle
        .map(|c| c.edges.iter().copied().collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "digraph predicate {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontname=\"monospace\"];");
    for v in 0..g.vertex_count() {
        let style = if beta.contains(&v) {
            " style=filled fillcolor=\"#ffd27f\" xlabel=\"β\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  v{v} [label=\"{}\"{style}];",
            g.var_name(msgorder_predicate::Var(v))
        );
    }
    for e in 0..g.edge_count() {
        let (u, kp) = g.tail(e);
        let (v, kq) = g.head(e);
        let style = if cycle_edges.contains(&e) {
            ", penwidth=2.2, color=\"#c0392b\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  v{} -> v{} [label=\"{}▷{}\"{style}];",
            u.0,
            v.0,
            kp.symbol(),
            kq.symbol()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use msgorder_predicate::catalog;

    #[test]
    fn dot_contains_nodes_edges_and_beta() {
        let pred = catalog::example_4_2();
        let report = classify(&pred);
        let g = report.graph.as_ref().unwrap();
        let cycle = report.cycles.iter().find(|c| c.len() == 4).unwrap();
        let dot = to_dot(g, Some(cycle));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("v0 ->"), "{dot}");
        assert!(dot.contains("β"), "β vertex should be marked\n{dot}");
        assert!(dot.contains("penwidth"), "cycle edges should be bold");
        assert_eq!(dot.matches("->").count(), 6);
    }

    #[test]
    fn dot_without_cycle_highlight() {
        let pred = catalog::causal();
        let g = crate::graph::PredicateGraph::of(&pred);
        let dot = to_dot(&g, None);
        assert!(!dot.contains("penwidth"));
        assert!(dot.contains("s▷s"));
    }
}

//! Structured explanations: *why* a specification landed in its class.
//!
//! [`crate::classify::classify`] gives the verdict;
//! [`explain`] assembles the full argument a reviewer would want —
//! which theorem applies, the certificate cycle and its β vertices, the
//! Lemma 4 reduction chain, and the verified separation witnesses —
//! into one renderable structure.

use crate::classify::{classify, Classification};
use crate::cycles::Cycle;
use crate::graph::PredicateGraph;
use crate::reduce::{reduce_cycle, ReductionTrace};
use crate::witness::{separation_witnesses, verify_witness, Witness, WitnessKind};
use msgorder_predicate::ForbiddenPredicate;

/// The assembled argument for one classification.
#[derive(Debug)]
pub struct Explanation {
    /// The predicate explained.
    pub predicate: ForbiddenPredicate,
    /// The verdict being justified.
    pub classification: Classification,
    /// The predicate graph (absent if normalization proved the
    /// predicate unsatisfiable).
    pub graph: Option<PredicateGraph>,
    /// The certificate cycle backing the verdict, if any.
    pub certificate: Option<Cycle>,
    /// The Lemma 4 reduction of the certificate to its minimal form.
    pub reduction: Option<ReductionTrace>,
    /// Separation witnesses, each re-verified.
    pub witnesses: Vec<(Witness, Result<(), String>)>,
}

impl Explanation {
    /// The one-line statement of which theorem carries the verdict.
    pub fn theorem(&self) -> &'static str {
        match &self.classification {
            Classification::NotImplementable => {
                "Theorem 2: the predicate graph is acyclic, so a logically \
                 synchronous run violates the specification and no protocol \
                 can exclude it"
            }
            Classification::RequiresControlMessages { .. } => {
                "Theorems 3.3/4.2: every cycle has ≥ 2 β vertices, so tagging \
                 admits a causally ordered violation; control messages are \
                 necessary and (with tags) sufficient"
            }
            Classification::TaggedSufficient { .. } => {
                "Theorems 3.2/4.3: some cycle has exactly one β vertex, so \
                 tagging suffices, while the trivial protocol admits an \
                 asynchronous violation"
            }
            Classification::TaglessSufficient { .. } => {
                "Theorem 3.1: a zero-β cycle (or an unsatisfiable predicate) \
                 means the forbidden pattern cannot occur in any run; the \
                 trivial protocol is safe"
            }
        }
    }

    /// Whether every witness verified.
    pub fn witnesses_verified(&self) -> bool {
        self.witnesses.iter().all(|(_, r)| r.is_ok())
    }

    /// Full multi-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("predicate : {}\n", self.predicate));
        s.push_str(&format!("verdict   : {}\n", self.classification));
        s.push_str(&format!("because   : {}\n", self.theorem()));
        if let (Some(g), Some(c)) = (&self.graph, &self.certificate) {
            s.push_str(&format!("cycle     : {}\n", c.render(g)));
        }
        if let Some(tr) = &self.reduction {
            for step in &tr.steps {
                s.push_str(&format!(
                    "reduce    : drop non-β {} via {} ∧ {} ⇒ {}\n",
                    // removed var rendered through the original names
                    self.predicate.var_name(step.removed),
                    step.incoming,
                    step.outgoing,
                    step.composed
                ));
            }
            if !tr.steps.is_empty() {
                s.push_str(&format!(
                    "reduced   : {}\n",
                    tr.final_predicate(&self.predicate)
                ));
            }
        }
        for (w, check) in &self.witnesses {
            let kind = match w.kind {
                WitnessKind::SyncViolation => "a logically synchronous run violating the spec",
                WitnessKind::CausalViolation => "a causally ordered run violating the spec",
                WitnessKind::AsyncViolation => "an asynchronous run violating the spec",
            };
            let status = match check {
                Ok(()) => "verified".to_owned(),
                Err(e) => format!("FAILED: {e}"),
            };
            s.push_str(&format!("witness   : {kind} [{status}]\n"));
            for line in w.run.render().lines() {
                s.push_str(&format!("            {line}\n"));
            }
        }
        s
    }
}

/// Assembles the full explanation for `pred`.
pub fn explain(pred: &ForbiddenPredicate) -> Explanation {
    let report = classify(pred);
    let certificate = match &report.classification {
        Classification::RequiresControlMessages { witness }
        | Classification::TaggedSufficient { witness } => Some(witness.clone()),
        Classification::TaglessSufficient { witness, .. } => witness.clone(),
        Classification::NotImplementable => None,
    };
    let reduction = match (&report.graph, &certificate) {
        (Some(g), Some(c)) => Some(reduce_cycle(g, c)),
        _ => None,
    };
    let witnesses = separation_witnesses(pred)
        .into_iter()
        .map(|w| {
            let check = verify_witness(pred, &w);
            (w, check)
        })
        .collect();
    Explanation {
        predicate: pred.clone(),
        classification: report.classification,
        graph: report.graph,
        certificate,
        reduction,
        witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    #[test]
    fn explanation_for_every_catalog_entry_is_complete() {
        for entry in catalog::all() {
            let e = explain(&entry.predicate);
            assert!(e.witnesses_verified(), "{}", entry.name);
            let text = e.render();
            assert!(text.contains("because"), "{}", entry.name);
            assert!(text.contains("verdict"), "{}", entry.name);
        }
    }

    #[test]
    fn tagged_explanation_cites_theorem_3_2() {
        let e = explain(&catalog::causal());
        assert!(e.theorem().contains("Theorems 3.2/4.3"));
        assert!(e.certificate.is_some());
        assert!(e.render().contains("β = {x}"));
    }

    #[test]
    fn unimplementable_explanation_cites_theorem_2() {
        let e = explain(&catalog::receive_second_before_first());
        assert!(e.theorem().contains("Theorem 2"));
        assert!(e.certificate.is_none());
        assert_eq!(e.witnesses.len(), 1);
    }

    #[test]
    fn k_weaker_explanation_shows_reduction() {
        let e = explain(&catalog::k_weaker_causal(2));
        let tr = e.reduction.as_ref().expect("reducible cycle");
        assert_eq!(tr.steps.len(), 2, "two non-β vertices contract");
        let text = e.render();
        assert!(text.contains("reduce"));
        assert!(text.contains("reduced"));
    }

    #[test]
    fn tagless_explanation_has_no_witness() {
        let e = explain(&catalog::mutual_send());
        assert!(e.witnesses.is_empty());
        assert!(e.theorem().contains("Theorem 3.1"));
    }
}

//! Elementary-cycle enumeration over predicate multigraphs.
//!
//! Cycles are the paper's central object: a specification is
//! implementable iff its predicate graph has one (Theorem 2), and the
//! number of β vertices of the best cycle picks the protocol class
//! (Theorems 3/4). Predicate graphs are small (one vertex per quantified
//! variable), so a canonical-start DFS enumerates all elementary cycles
//! directly; a cap guards against pathological inputs.

use crate::graph::PredicateGraph;
use msgorder_predicate::Var;
use serde::{Deserialize, Serialize};

/// An elementary cycle, stored as the edge ids traversed in order.
///
/// `edges[i]` leads into the vertex that `edges[i + 1]` leaves;
/// the last edge returns to the first edge's tail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cycle {
    /// Edge ids in traversal order.
    pub edges: Vec<usize>,
    /// The vertices visited, aligned so `vertices[i]` is the tail of
    /// `edges[i]`.
    pub vertices: Vec<Var>,
    /// The β vertices of this cycle (Definition 4.3).
    pub beta_vertices: Vec<Var>,
}

impl Cycle {
    /// The cycle's *order*: its number of β vertices.
    pub fn order(&self) -> usize {
        self.beta_vertices.len()
    }

    /// Length in edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the cycle is empty (never true for produced cycles).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Renders the cycle through its conjuncts.
    pub fn render(&self, g: &PredicateGraph) -> String {
        let parts: Vec<String> = self.edges.iter().map(|&e| g.edge_label(e)).collect();
        format!(
            "[{}] (order {}, β = {{{}}})",
            parts.join(", "),
            self.order(),
            self.beta_vertices
                .iter()
                .map(|v| g.var_name(*v).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

fn beta_vertices_of(g: &PredicateGraph, edges: &[usize]) -> Vec<Var> {
    let k = edges.len();
    let mut betas = Vec::new();
    for i in 0..k {
        let e_in = edges[i];
        let e_out = edges[(i + 1) % k];
        if g.is_beta_transition(e_in, e_out) {
            betas.push(g.head(e_in).0);
        }
    }
    betas.sort_unstable();
    betas
}

/// Enumerates the elementary cycles of the predicate graph, up to `cap`
/// cycles (enumeration stops once the cap is reached).
///
/// Each cycle is reported once, rotated so its smallest vertex comes
/// first; parallel edges yield distinct cycles.
pub fn enumerate_cycles(g: &PredicateGraph, cap: usize) -> Vec<Cycle> {
    let n = g.vertex_count();
    let mut out: Vec<Cycle> = Vec::new();
    // Canonical-start DFS: cycles whose minimal vertex is `start` are
    // found by paths from `start` through vertices > start only.
    for start in 0..n {
        if out.len() >= cap {
            break;
        }
        let mut on_path = vec![false; n];
        let mut path_edges: Vec<usize> = Vec::new();
        dfs(
            g,
            start,
            start,
            &mut on_path,
            &mut path_edges,
            &mut out,
            cap,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &PredicateGraph,
    start: usize,
    v: usize,
    on_path: &mut Vec<bool>,
    path_edges: &mut Vec<usize>,
    out: &mut Vec<Cycle>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    on_path[v] = true;
    for &e in g.graph().out_edges(v) {
        if out.len() >= cap {
            break;
        }
        let (_, w) = g.graph().endpoints(e);
        if w == start {
            path_edges.push(e);
            let vertices: Vec<Var> = path_edges.iter().map(|&pe| g.tail(pe).0).collect();
            out.push(Cycle {
                beta_vertices: beta_vertices_of(g, path_edges),
                edges: path_edges.clone(),
                vertices,
            });
            path_edges.pop();
        } else if w > start && !on_path[w] {
            path_edges.push(e);
            dfs(g, start, w, on_path, path_edges, out, cap);
            path_edges.pop();
        }
    }
    on_path[v] = false;
}

/// The minimum order over all elementary cycles, with one witness cycle
/// achieving it. `None` if the graph is acyclic.
///
/// Exhaustive (subject to `cap`); use
/// [`min_order`](crate::min_order::min_cycle_order) for the polynomial
/// line-graph computation.
pub fn min_order_by_enumeration(g: &PredicateGraph, cap: usize) -> Option<Cycle> {
    enumerate_cycles(g, cap)
        .into_iter()
        .min_by_key(|c| (c.order(), c.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::{catalog, ForbiddenPredicate};

    fn graph_of(src: &str) -> PredicateGraph {
        PredicateGraph::of(&ForbiddenPredicate::parse(src).unwrap())
    }

    #[test]
    fn causal_has_single_order1_cycle() {
        let g = PredicateGraph::of(&catalog::causal());
        let cycles = enumerate_cycles(&g, 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].order(), 1);
        assert_eq!(cycles[0].beta_vertices, vec![Var(0)], "β vertex is x");
    }

    #[test]
    fn fifo_same_cycle_structure() {
        let g = PredicateGraph::of(&catalog::fifo());
        let best = min_order_by_enumeration(&g, 100).unwrap();
        assert_eq!(best.order(), 1);
    }

    #[test]
    fn crown_cycles_all_beta() {
        for k in 2..=5 {
            let g = PredicateGraph::of(&catalog::sync_crown(k));
            let cycles = enumerate_cycles(&g, 100);
            assert_eq!(cycles.len(), 1, "crown {k} is a single cycle");
            assert_eq!(cycles[0].order(), k, "every vertex is β");
            assert_eq!(cycles[0].len(), k);
        }
    }

    #[test]
    fn mutual_send_cycle_order_zero() {
        let g = PredicateGraph::of(&catalog::mutual_send());
        let best = min_order_by_enumeration(&g, 100).unwrap();
        assert_eq!(best.order(), 0);
    }

    #[test]
    fn acyclic_predicate_has_no_cycles() {
        let g = PredicateGraph::of(&catalog::receive_second_before_first());
        assert!(enumerate_cycles(&g, 100).is_empty());
        assert!(min_order_by_enumeration(&g, 100).is_none());
    }

    #[test]
    fn example_4_2_cycles_match_paper() {
        // Example 2/3: the 4-cycle x1 -> x2 -> x3 -> x4 -> x1 has order 1
        // with β vertex x4; the 2-cycle x1 <-> x4 has order 2.
        let g = PredicateGraph::of(&catalog::example_4_2());
        let cycles = enumerate_cycles(&g, 100);
        assert_eq!(cycles.len(), 2);
        let four = cycles.iter().find(|c| c.len() == 4).expect("4-cycle");
        assert_eq!(four.order(), 1);
        assert_eq!(four.beta_vertices, vec![Var(3)], "β vertex is x4");
        let two = cycles.iter().find(|c| c.len() == 2).expect("2-cycle");
        assert_eq!(two.order(), 2);
        let best = min_order_by_enumeration(&g, 100).unwrap();
        assert_eq!(best.order(), 1);
    }

    #[test]
    fn k_weaker_cycle_order_one() {
        for k in 0..4 {
            let g = PredicateGraph::of(&catalog::k_weaker_causal(k));
            let best = min_order_by_enumeration(&g, 100).unwrap();
            assert_eq!(best.order(), 1, "k = {k}");
            assert_eq!(best.len(), k + 2);
        }
    }

    #[test]
    fn parallel_edges_make_distinct_cycles() {
        // x -> y twice, y -> x once: two distinct 2-cycles.
        let g = graph_of("forbid x, y: x.s < y.s & x.s < y.r & y.r < x.r");
        let cycles = enumerate_cycles(&g, 100);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn cap_limits_enumeration() {
        let g = graph_of("forbid x, y: x.s < y.s & x.s < y.r & y.r < x.r & y.s < x.r");
        let all = enumerate_cycles(&g, 100);
        assert_eq!(all.len(), 4);
        let capped = enumerate_cycles(&g, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn cycle_render_mentions_order() {
        let g = PredicateGraph::of(&catalog::causal());
        let c = &enumerate_cycles(&g, 10)[0];
        let s = c.render(&g);
        assert!(s.contains("order 1"), "{s}");
    }
}

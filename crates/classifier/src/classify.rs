//! The top-level classification (the §4.3 decision table).

use crate::cycles::{enumerate_cycles, Cycle};
use crate::graph::PredicateGraph;
use crate::min_order::min_cycle_order;
use msgorder_predicate::catalog::PaperClass;
use msgorder_predicate::{ForbiddenPredicate, Normalized, UnsatReason};
use std::fmt;

/// Cap on exhaustive cycle enumeration in reports (classification itself
/// uses the polynomial line-graph computation and never needs this).
pub const CYCLE_REPORT_CAP: usize = 64;

/// The outcome of classifying a forbidden predicate.
#[derive(Debug, Clone)]
pub enum Classification {
    /// The predicate graph has no cycle (Theorem 2): no protocol can
    /// guarantee both safety and liveness.
    NotImplementable,
    /// Every cycle has ≥ 2 β vertices: control messages are necessary;
    /// tagging + control messages are sufficient (Theorems 3.3/4.2).
    RequiresControlMessages {
        /// A minimum-order witness cycle.
        witness: Cycle,
    },
    /// Some cycle has exactly one β vertex and none has zero: tagging
    /// user messages is necessary and sufficient (Theorems 3.2/4.3).
    TaggedSufficient {
        /// An order-1 witness cycle.
        witness: Cycle,
    },
    /// The trivial protocol suffices: either some cycle has zero β
    /// vertices (Theorem 3.1), or the predicate is structurally
    /// unsatisfiable so `X_B = X_async`.
    TaglessSufficient {
        /// An order-0 witness cycle, absent when the predicate was
        /// unsatisfiable outright.
        witness: Option<Cycle>,
        /// Set when normalization proved `B` unsatisfiable.
        unsatisfiable: Option<UnsatReason>,
    },
}

impl Classification {
    /// The paper's protocol class.
    pub fn protocol_class(&self) -> PaperClass {
        match self {
            Classification::NotImplementable => PaperClass::Unimplementable,
            Classification::RequiresControlMessages { .. } => PaperClass::General,
            Classification::TaggedSufficient { .. } => PaperClass::Tagged,
            Classification::TaglessSufficient { .. } => PaperClass::Tagless,
        }
    }

    /// Whether any protocol exists for the specification.
    pub fn is_implementable(&self) -> bool {
        !matches!(self, Classification::NotImplementable)
    }

    /// Whether tagging alone suffices (i.e. no control messages needed).
    pub fn is_tagged_sufficient(&self) -> bool {
        matches!(
            self,
            Classification::TaggedSufficient { .. } | Classification::TaglessSufficient { .. }
        )
    }

    /// Whether the trivial protocol suffices.
    pub fn is_tagless_sufficient(&self) -> bool {
        matches!(self, Classification::TaglessSufficient { .. })
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.protocol_class())
    }
}

/// Full classification report for one predicate.
#[derive(Debug, Clone)]
pub struct Report {
    /// The input predicate (as given, before normalization).
    pub predicate: ForbiddenPredicate,
    /// The decision.
    pub classification: Classification,
    /// The predicate graph of the normalized predicate (absent when
    /// normalization proved unsatisfiability).
    pub graph: Option<PredicateGraph>,
    /// All elementary cycles (up to [`CYCLE_REPORT_CAP`]), for display.
    pub cycles: Vec<Cycle>,
    /// Minimum order over all cycles, if any cycle exists.
    pub min_order: Option<usize>,
}

impl Report {
    /// Renders a human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("predicate : {}\n", self.predicate));
        if let Some(g) = &self.graph {
            s.push_str(&format!(
                "graph     : {} vertices, {} edges\n",
                g.vertex_count(),
                g.edge_count()
            ));
            if self.cycles.is_empty() {
                s.push_str("cycles    : none\n");
            }
            for c in &self.cycles {
                s.push_str(&format!("cycle     : {}\n", c.render(g)));
            }
        } else {
            s.push_str("graph     : (predicate unsatisfiable, no graph needed)\n");
        }
        if let Some(o) = self.min_order {
            s.push_str(&format!("min order : {o}\n"));
        }
        s.push_str(&format!("verdict   : {}\n", self.classification));
        s
    }
}

/// Classifies a forbidden predicate per the §4.3 decision table.
pub fn classify(pred: &ForbiddenPredicate) -> Report {
    match pred.normalize() {
        Normalized::Unsatisfiable(reason) => Report {
            predicate: pred.clone(),
            classification: Classification::TaglessSufficient {
                witness: None,
                unsatisfiable: Some(reason),
            },
            graph: None,
            cycles: Vec::new(),
            min_order: None,
        },
        Normalized::Predicate(clean) => {
            let graph = PredicateGraph::of(&clean);
            let cycles = enumerate_cycles(&graph, CYCLE_REPORT_CAP);
            let best = min_cycle_order(&graph);
            let min_order = best.as_ref().map(Cycle::order);
            let classification = match best {
                None => Classification::NotImplementable,
                Some(c) if c.order() == 0 => Classification::TaglessSufficient {
                    witness: Some(c),
                    unsatisfiable: None,
                },
                Some(c) if c.order() == 1 => Classification::TaggedSufficient { witness: c },
                Some(c) => Classification::RequiresControlMessages { witness: c },
            };
            Report {
                predicate: pred.clone(),
                classification,
                graph: Some(graph),
                cycles,
                min_order,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    #[test]
    fn catalog_classified_exactly_as_paper_claims() {
        // This is the heart of EXP-T1: our classifier reproduces the
        // paper's class for every specification it names.
        for entry in catalog::all() {
            let report = classify(&entry.predicate);
            assert_eq!(
                report.classification.protocol_class(),
                entry.expected,
                "{}: classifier says {}, paper says {}",
                entry.name,
                report.classification,
                entry.expected
            );
        }
    }

    #[test]
    fn causal_report_details() {
        let r = classify(&catalog::causal());
        assert_eq!(r.min_order, Some(1));
        assert!(r.classification.is_tagged_sufficient());
        assert!(!r.classification.is_tagless_sufficient());
        assert!(r.classification.is_implementable());
        assert_eq!(r.cycles.len(), 1);
    }

    #[test]
    fn unsatisfiable_predicate_is_tagless() {
        let p = msgorder_predicate::ForbiddenPredicate::parse("forbid x: x.r < x.s").unwrap();
        let r = classify(&p);
        match &r.classification {
            Classification::TaglessSufficient {
                witness: None,
                unsatisfiable: Some(_),
            } => {}
            other => panic!("expected unsatisfiable-tagless, got {other:?}"),
        }
        assert!(r.graph.is_none());
    }

    #[test]
    fn vacuous_self_conjunct_dropped_then_classified() {
        // forbid x, y: x.s < x.r & x.s < y.s & y.r < x.r
        // After dropping the vacuous conjunct this is exactly causal.
        let p = msgorder_predicate::ForbiddenPredicate::parse(
            "forbid x, y: x.s < x.r & x.s < y.s & y.r < x.r",
        )
        .unwrap();
        let r = classify(&p);
        assert_eq!(r.min_order, Some(1));
        assert!(r.classification.is_tagged_sufficient());
    }

    #[test]
    fn deliver_nothing_spec_not_implementable() {
        // forbid x, y: x.s < y.r — forbids any cross-message causality;
        // acyclic graph, not implementable (a protocol would have to
        // either foresee the future or stall deliveries forever).
        let p = msgorder_predicate::ForbiddenPredicate::parse("forbid x, y: x.s < y.r").unwrap();
        let r = classify(&p);
        assert!(!r.classification.is_implementable());
        assert_eq!(r.min_order, None);
    }

    #[test]
    fn report_renders_all_sections() {
        let r = classify(&catalog::example_4_2());
        let s = r.render();
        assert!(s.contains("predicate"));
        assert!(s.contains("cycle"));
        assert!(s.contains("min order : 1"));
        assert!(s.contains("tagging sufficient"));
    }

    #[test]
    fn empty_conjunction_not_implementable() {
        // After normalization `forbid x: x.s < x.r` has no conjuncts: B
        // fires on every nonempty run, so X_B is essentially empty.
        let p = msgorder_predicate::ForbiddenPredicate::parse("forbid x: x.s < x.r").unwrap();
        let r = classify(&p);
        assert!(!r.classification.is_implementable());
    }

    #[test]
    fn classification_invariant_under_renaming() {
        let p = catalog::causal();
        let renamed = p
            .clone()
            .with_var_names(vec!["alpha".into(), "beta".into()]);
        assert_eq!(
            classify(&p).classification.protocol_class(),
            classify(&renamed).classification.protocol_class()
        );
    }
}

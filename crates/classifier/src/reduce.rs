//! The Lemma 4 contraction: weaken a cycle predicate until it is either
//! a two-vertex cycle or all of its vertices are β.
//!
//! At a non-β vertex `v`, the incoming conjunct `x.p ▷ v.q` and outgoing
//! conjunct `v.p' ▷ w.q'` compose transitively (directly when `q = p'`,
//! via the always-true `v.s ▷ v.r` when `q = s, p' = r`; the β case
//! `q = r, p' = s` is exactly the one that does *not* compose). The
//! composed predicate `B''` is implied by `B'`, keeps the cycle's order,
//! and has one fewer vertex — Example 3 of the paper walks one step.

use crate::cycles::Cycle;
use crate::graph::PredicateGraph;
use msgorder_predicate::{Conjunct, ForbiddenPredicate, Var};
use msgorder_runs::UserEventKind;
use serde::Serialize;

/// One contraction step.
#[derive(Debug, Clone, Serialize)]
pub struct ReductionStep {
    /// The non-β vertex removed (in the *original* predicate's numbering).
    pub removed: Var,
    /// Rendered incoming conjunct.
    pub incoming: String,
    /// Rendered outgoing conjunct.
    pub outgoing: String,
    /// Rendered composed conjunct.
    pub composed: String,
}

/// The full trace of reducing one cycle per Lemma 4.
#[derive(Debug, Clone)]
pub struct ReductionTrace {
    /// The steps taken, in order.
    pub steps: Vec<ReductionStep>,
    /// The conjuncts of the final (weaker) cycle predicate, as event-term
    /// pairs over the surviving variables (original numbering).
    pub final_conjuncts: Vec<Conjunct>,
    /// The order of the final cycle (= the original cycle's order).
    pub final_order: usize,
    /// The surviving variables.
    pub final_vars: Vec<Var>,
}

impl ReductionTrace {
    /// Builds the final weaker predicate `B'` (with `B ⇒ B'`), with the
    /// surviving variables renumbered densely and named after the
    /// original predicate's variables.
    pub fn final_predicate(&self, original: &ForbiddenPredicate) -> ForbiddenPredicate {
        let mut map = vec![usize::MAX; original.var_count()];
        for (new, v) in self.final_vars.iter().enumerate() {
            map[v.0] = new;
        }
        let mut b = ForbiddenPredicate::build(self.final_vars.len());
        for c in &self.final_conjuncts {
            let l = msgorder_predicate::EventTerm {
                var: Var(map[c.lhs.var.0]),
                kind: c.lhs.kind,
            };
            let r = msgorder_predicate::EventTerm {
                var: Var(map[c.rhs.var.0]),
                kind: c.rhs.kind,
            };
            b = b.conjunct(l, r);
        }
        b.finish().with_var_names(
            self.final_vars
                .iter()
                .map(|v| original.var_name(*v).to_owned())
                .collect(),
        )
    }
}

/// Reduces `cycle` (of the graph `g`) per Lemma 4: repeatedly contracts
/// a non-β vertex until the cycle has two vertices or every vertex is β.
///
/// # Panics
/// Panics if `cycle` is not a cycle of `g` (edge ids out of range or not
/// consecutive).
pub fn reduce_cycle(g: &PredicateGraph, cycle: &Cycle) -> ReductionTrace {
    // Work on a conjunct list forming the cycle, in order.
    let mut conjuncts: Vec<Conjunct> = cycle.edges.iter().map(|&e| g.conjunct(e)).collect();
    let mut steps = Vec::new();
    let original_order = cycle.order();

    let render = |c: &Conjunct| {
        format!(
            "{}.{} ▷ {}.{}",
            g.var_name(c.lhs.var),
            c.lhs.kind.symbol(),
            g.var_name(c.rhs.var),
            c.rhs.kind.symbol()
        )
    };

    loop {
        let k = conjuncts.len();
        if k <= 2 {
            break;
        }
        // find a non-β vertex: position i such that conjuncts[i] enters v
        // and conjuncts[(i+1) % k] leaves it, without (r, s) labels.
        let mut contracted = false;
        for i in 0..k {
            let e_in = conjuncts[i];
            let e_out = conjuncts[(i + 1) % k];
            debug_assert_eq!(e_in.rhs.var, e_out.lhs.var, "not a cycle");
            let beta =
                e_in.rhs.kind == UserEventKind::Deliver && e_out.lhs.kind == UserEventKind::Send;
            if beta {
                continue;
            }
            let v = e_in.rhs.var;
            let composed = Conjunct::new(e_in.lhs, e_out.rhs);
            steps.push(ReductionStep {
                removed: v,
                incoming: render(&e_in),
                outgoing: render(&e_out),
                composed: render(&composed),
            });
            // replace the two conjuncts by the composed one
            let j = (i + 1) % k;
            if j > i {
                conjuncts[i] = composed;
                conjuncts.remove(j);
            } else {
                // wrap-around: i is last, j == 0
                conjuncts[i] = composed;
                conjuncts.remove(0);
            }
            contracted = true;
            break;
        }
        if !contracted {
            break; // all vertices are β
        }
    }

    let mut final_vars: Vec<Var> = conjuncts.iter().map(|c| c.lhs.var).collect();
    final_vars.sort_unstable();
    final_vars.dedup();
    ReductionTrace {
        steps,
        final_conjuncts: conjuncts,
        final_order: original_order,
        final_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::enumerate_cycles;
    use msgorder_predicate::catalog;

    /// Example 3 of the paper: reduce the 4-cycle of Example 2; the β
    /// vertex x4 survives, non-β vertices contract away.
    #[test]
    fn example_3_reduction() {
        let g = PredicateGraph::of(&catalog::example_4_2());
        let cycles = enumerate_cycles(&g, 100);
        let four = cycles.iter().find(|c| c.len() == 4).unwrap();
        let trace = reduce_cycle(&g, four);
        assert_eq!(trace.final_order, 1);
        assert_eq!(trace.final_conjuncts.len(), 2, "reduced to a 2-cycle");
        assert_eq!(trace.steps.len(), 2, "two non-β vertices contracted");
        // the β vertex x4 (Var(3)) survives
        assert!(trace.final_vars.contains(&Var(3)));
    }

    #[test]
    fn reduced_predicate_is_causal_shaped() {
        // An order-1 2-cycle is one of the Lemma 3.2 forms; check it
        // classifies as tagged.
        let g = PredicateGraph::of(&catalog::example_4_2());
        let cycles = enumerate_cycles(&g, 100);
        let four = cycles.iter().find(|c| c.len() == 4).unwrap();
        let trace = reduce_cycle(&g, four);
        let weaker = trace.final_predicate(&catalog::example_4_2());
        assert_eq!(weaker.var_count(), 2);
        let report = crate::classify::classify(&weaker);
        assert!(report.classification.is_tagged_sufficient());
    }

    #[test]
    fn crown_reduces_to_itself() {
        // All vertices β: no contraction possible.
        let g = PredicateGraph::of(&catalog::sync_crown(4));
        let cycles = enumerate_cycles(&g, 100);
        let trace = reduce_cycle(&g, &cycles[0]);
        assert!(trace.steps.is_empty());
        assert_eq!(trace.final_conjuncts.len(), 4);
    }

    #[test]
    fn k_weaker_reduces_to_two_vertices() {
        let p = catalog::k_weaker_causal(3);
        let g = PredicateGraph::of(&p);
        let cycles = enumerate_cycles(&g, 100);
        let trace = reduce_cycle(&g, &cycles[0]);
        assert_eq!(trace.final_conjuncts.len(), 2);
        assert_eq!(trace.steps.len(), 3);
        let weaker = trace.final_predicate(&p);
        // The weakened 2-cycle must still be order 1 (tagged).
        let report = crate::classify::classify(&weaker);
        assert_eq!(report.min_order, Some(1));
    }

    #[test]
    fn two_cycle_untouched() {
        let g = PredicateGraph::of(&catalog::causal());
        let cycles = enumerate_cycles(&g, 100);
        let trace = reduce_cycle(&g, &cycles[0]);
        assert!(trace.steps.is_empty());
        assert_eq!(trace.final_conjuncts.len(), 2);
    }

    #[test]
    fn steps_render_composition() {
        let g = PredicateGraph::of(&catalog::k_weaker_causal(1));
        let cycles = enumerate_cycles(&g, 100);
        let trace = reduce_cycle(&g, &cycles[0]);
        assert!(!trace.steps.is_empty());
        let step = &trace.steps[0];
        assert!(step.incoming.contains('▷'));
        assert!(step.composed.contains('▷'));
    }
}

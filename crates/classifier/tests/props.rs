//! Property tests for the classifier.

use msgorder_classifier::classify::classify;
use msgorder_classifier::cycles::{enumerate_cycles, min_order_by_enumeration};
use msgorder_classifier::min_order::min_cycle_order;
use msgorder_classifier::witness::{separation_witnesses, verify_witness};
use msgorder_classifier::PredicateGraph;
use msgorder_predicate::{ForbiddenPredicate, Var};
use proptest::prelude::*;

fn arb_predicate() -> impl Strategy<Value = ForbiddenPredicate> {
    (2usize..6, 1usize..9)
        .prop_flat_map(|(n, e)| {
            let conj = (0..n, 0..n, any::<bool>(), any::<bool>());
            (Just(n), proptest::collection::vec(conj, e))
        })
        .prop_map(|(n, conjs)| {
            let mut b = ForbiddenPredicate::build(n);
            for (u, v, us, vs) in conjs {
                let v = if u == v { (v + 1) % n } else { v };
                let lhs = if us { Var(u).s() } else { Var(u).r() };
                let rhs = if vs { Var(v).s() } else { Var(v).r() };
                b = b.conjunct(lhs, rhs);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Enumeration and line-graph BFS agree on minimum order.
    #[test]
    fn min_order_engines_agree(pred in arb_predicate()) {
        let g = PredicateGraph::of(&pred);
        prop_assert_eq!(
            min_order_by_enumeration(&g, 1_000_000).map(|c| c.order()),
            min_cycle_order(&g).map(|c| c.order()),
            "disagreement on {}", pred
        );
    }

    /// Every enumerated cycle is consistent: consecutive edges meet and
    /// the declared order equals the β transition count.
    #[test]
    fn cycles_are_wellformed(pred in arb_predicate()) {
        let g = PredicateGraph::of(&pred);
        for c in enumerate_cycles(&g, 256) {
            let k = c.edges.len();
            let mut betas = 0;
            for i in 0..k {
                let (_, head) = g.graph().endpoints(c.edges[i]);
                let (tail, _) = g.graph().endpoints(c.edges[(i + 1) % k]);
                prop_assert_eq!(head, tail);
                if g.is_beta_transition(c.edges[i], c.edges[(i + 1) % k]) {
                    betas += 1;
                }
            }
            prop_assert_eq!(betas, c.order());
            // vertex-elementary
            let mut vs: Vec<_> = c.vertices.clone();
            vs.sort_unstable();
            vs.dedup();
            prop_assert_eq!(vs.len(), k);
        }
    }

    /// Classification is implementable iff a cycle exists (Theorem 2).
    #[test]
    fn implementable_iff_cycle(pred in arb_predicate()) {
        let g = PredicateGraph::of(&pred);
        let report = classify(&pred);
        prop_assert_eq!(
            report.classification.is_implementable(),
            g.graph().has_cycle()
        );
    }

    /// Witnesses always verify for arbitrary predicates.
    #[test]
    fn witnesses_always_verify(pred in arb_predicate()) {
        for w in separation_witnesses(&pred) {
            prop_assert!(verify_witness(&pred, &w).is_ok(), "{}", pred);
        }
    }

    /// The report's min_order matches the certificate's order.
    #[test]
    fn report_consistent(pred in arb_predicate()) {
        use msgorder_classifier::classify::Classification;
        let report = classify(&pred);
        match &report.classification {
            Classification::TaglessSufficient { witness: Some(c), .. } => {
                prop_assert_eq!(c.order(), 0);
                prop_assert_eq!(report.min_order, Some(0));
            }
            Classification::TaggedSufficient { witness } => {
                prop_assert_eq!(witness.order(), 1);
                prop_assert_eq!(report.min_order, Some(1));
            }
            Classification::RequiresControlMessages { witness } => {
                prop_assert!(witness.order() >= 2);
                prop_assert_eq!(report.min_order, Some(witness.order()));
            }
            Classification::NotImplementable => prop_assert_eq!(report.min_order, None),
            Classification::TaglessSufficient { witness: None, .. } => {}
        }
    }
}

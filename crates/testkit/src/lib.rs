//! Test-only support: a counting global allocator.
//!
//! The flat-memory hot path (event arena, SoA runs, word-width clock
//! ops) promises **zero allocations per delivered message** once a run
//! reaches steady state. Timing benchmarks can regress silently when an
//! allocation sneaks back in; counting allocations makes the property a
//! unit test instead.
//!
//! Usage, from an integration test (`tests/alloc_guard.rs` — a separate
//! binary, so the allocator override cannot leak into production code):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: msgorder_testkit::CountingAlloc = msgorder_testkit::CountingAlloc;
//!
//! let before = msgorder_testkit::allocations();
//! hot_path();
//! assert_eq!(msgorder_testkit::allocations() - before, 0);
//! ```
//!
//! Counts are global and monotone. Tests in one binary share them, so
//! measure deltas, not absolutes, and keep guarded sections free of
//! other threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every heap operation.
///
/// Install it with `#[global_allocator]` in a test binary and read the
/// counters through [`allocations`] / [`deallocations`] /
/// [`allocated_bytes`]. A reallocation that grows a buffer counts as
/// one allocation (matching the number of calls into the allocator, the
/// quantity the zero-alloc guards bound).
pub struct CountingAlloc;

// SAFETY: delegates every operation unchanged to `System`; the counter
// updates are lock-free atomics, safe inside the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocator calls that produced (or grew) a block so far.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total blocks returned to the allocator so far.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested so far (grows monotonically; frees do not
/// subtract).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(result, allocations during f)`.
///
/// Single-threaded sections only: the counters are process-global, so
/// concurrent allocations elsewhere would be attributed to `f`.
pub fn counting<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

//! Property tests for the facade.

use msgorder_core::{Spec, SpecSet};
use msgorder_predicate::catalog::{self, PaperClass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Spec::parse is total (errors, never panics).
    #[test]
    fn spec_parse_total(input in "\\PC{0,60}") {
        let _ = Spec::parse(&input);
    }

    /// Analysis of any catalog entry is internally consistent and the
    /// rendered report mentions its own verdict.
    #[test]
    fn analysis_consistent(idx in 0usize..20) {
        let entries = catalog::all();
        let entry = &entries[idx % entries.len()];
        let report = Spec::from_predicate(entry.predicate.clone())
            .named(entry.name)
            .analyze();
        prop_assert_eq!(report.classification().protocol_class(), entry.expected);
        report.verify_witnesses().unwrap();
        let rendered = report.render();
        prop_assert!(rendered.contains(&report.classification().to_string()));
        let json = report.to_json();
        prop_assert_eq!(json["name"].as_str(), Some(entry.name));
    }

    /// SpecSet classes combine monotonically: adding a member never makes
    /// the set easier to implement.
    #[test]
    fn spec_set_monotone(a in 0usize..20, b in 0usize..20) {
        fn rank(c: PaperClass) -> u8 {
            match c {
                PaperClass::Tagless => 0,
                PaperClass::Tagged => 1,
                PaperClass::General => 2,
                PaperClass::Unimplementable => 3,
            }
        }
        let entries = catalog::all();
        let (ea, eb) = (&entries[a % entries.len()], &entries[b % entries.len()]);
        let single = SpecSet::from_predicates("a", [ea.predicate.clone()]);
        let both = SpecSet::from_predicates(
            "ab",
            [ea.predicate.clone(), eb.predicate.clone()],
        );
        prop_assert!(rank(both.combined_class()) >= rank(single.combined_class()));
        prop_assert_eq!(
            rank(both.combined_class()),
            rank(single.combined_class())
                .max(rank(SpecSet::from_predicates("b", [eb.predicate.clone()]).combined_class()))
        );
    }
}

//! High-level facade over the msgorder workspace: one type ([`Spec`])
//! and one call ([`Spec::analyze`]) covering the paper's whole pipeline:
//!
//! 1. parse a forbidden predicate (or take one from the
//!    [`catalog`](msgorder_predicate::catalog));
//! 2. build the predicate graph, find the best cycle and its β vertices;
//! 3. decide the protocol class (§4.3 table);
//! 4. produce *verified* separation witnesses (Theorems 2/4);
//! 5. recommend a runnable protocol from
//!    [`msgorder_protocols`].
//!
//! ```
//! use msgorder_core::Spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse("forbid x, y: x.s < y.s & y.r < x.r")?.named("causal");
//! let report = spec.analyze();
//! assert!(report.classification().is_tagged_sufficient());
//! assert_eq!(report.recommendation().name(), "synthesized");
//! println!("{}", report.render());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod spec;
mod spec_set;

pub use report::AnalysisReport;
pub use spec::Spec;
pub use spec_set::SpecSet;

// Re-export the vocabulary types users need alongside the facade.
pub use msgorder_classifier::classify::Classification;
pub use msgorder_predicate::catalog::PaperClass;
pub use msgorder_predicate::ForbiddenPredicate;
pub use msgorder_protocols::ProtocolKind;

//! Named specifications.

use crate::report::AnalysisReport;
use msgorder_classifier::classify::classify;
use msgorder_classifier::witness::separation_witnesses;
use msgorder_predicate::{ForbiddenPredicate, ParseError};
use std::fmt;

/// A named message-ordering specification given by a forbidden predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    name: String,
    predicate: ForbiddenPredicate,
}

impl Spec {
    /// Parses a specification from the predicate DSL.
    ///
    /// # Errors
    /// Returns the parser's [`ParseError`] on malformed input.
    pub fn parse(src: &str) -> Result<Spec, ParseError> {
        Ok(Spec {
            name: "unnamed".to_owned(),
            predicate: ForbiddenPredicate::parse(src)?,
        })
    }

    /// Wraps an existing predicate.
    pub fn from_predicate(predicate: ForbiddenPredicate) -> Spec {
        Spec {
            name: "unnamed".to_owned(),
            predicate,
        }
    }

    /// Sets a display name.
    #[must_use]
    pub fn named(mut self, name: &str) -> Spec {
        self.name = name.to_owned();
        self
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying forbidden predicate.
    pub fn predicate(&self) -> &ForbiddenPredicate {
        &self.predicate
    }

    /// Runs the full pipeline: classify, extract witnesses, recommend a
    /// protocol.
    pub fn analyze(&self) -> AnalysisReport {
        let classification = classify(&self.predicate);
        let witnesses = separation_witnesses(&self.predicate);
        AnalysisReport::new(self.clone(), classification, witnesses)
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    #[test]
    fn parse_and_name() {
        let s = Spec::parse("forbid x, y: x.s < y.s & y.r < x.r")
            .unwrap()
            .named("causal");
        assert_eq!(s.name(), "causal");
        assert!(s.to_string().starts_with("causal: forbid"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Spec::parse("nonsense").is_err());
    }

    #[test]
    fn from_catalog_predicate() {
        let s = Spec::from_predicate(catalog::fifo()).named("fifo");
        assert_eq!(s.predicate(), &catalog::fifo());
    }
}

//! Aggregated analysis reports.

use crate::spec::Spec;
use msgorder_classifier::classify::{Classification, Report as ClassifyReport};
use msgorder_classifier::witness::{verify_witness, Witness, WitnessKind};
use msgorder_protocols::ProtocolKind;
use serde::Serialize;

/// Everything [`Spec::analyze`] learned about a specification.
#[derive(Debug)]
pub struct AnalysisReport {
    spec: Spec,
    classify: ClassifyReport,
    witnesses: Vec<Witness>,
}

/// The serializable summary row (what EXP-T1 exports as JSON).
#[derive(Debug, Clone, Serialize)]
pub struct SummaryRow {
    /// Specification name.
    pub name: String,
    /// The predicate, rendered in the DSL.
    pub predicate: String,
    /// Vertices of the predicate graph.
    pub vertices: usize,
    /// Edges (conjuncts).
    pub edges: usize,
    /// Number of elementary cycles reported (capped).
    pub cycles: usize,
    /// Minimum order over all cycles, if any.
    pub min_order: Option<usize>,
    /// Verdict string (the §4.3 table column).
    pub verdict: String,
    /// The recommended runnable protocol.
    pub protocol: String,
    /// Number of verified separation witnesses.
    pub witnesses: usize,
}

impl AnalysisReport {
    pub(crate) fn new(spec: Spec, classify: ClassifyReport, witnesses: Vec<Witness>) -> Self {
        AnalysisReport {
            spec,
            classify,
            witnesses,
        }
    }

    /// The specification analyzed.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The classification (protocol class + witness cycle).
    pub fn classification(&self) -> &Classification {
        &self.classify.classification
    }

    /// The full classifier report (graph, cycles, min order).
    pub fn classifier_report(&self) -> &ClassifyReport {
        &self.classify
    }

    /// The Theorem 2/4 separation witnesses.
    pub fn witnesses(&self) -> &[Witness] {
        &self.witnesses
    }

    /// Re-checks every witness against its claims.
    ///
    /// # Errors
    /// Returns the first failed obligation, naming the witness kind.
    pub fn verify_witnesses(&self) -> Result<(), String> {
        for w in &self.witnesses {
            verify_witness(self.spec.predicate(), w).map_err(|e| format!("{:?}: {e}", w.kind))?;
        }
        Ok(())
    }

    /// The runnable protocol this workspace recommends for the class.
    ///
    /// - tagless → the do-nothing [`ProtocolKind::Async`];
    /// - tagged → the [`ProtocolKind::Synthesized`] protocol derived
    ///   from this very predicate;
    /// - control messages → the lock-server [`ProtocolKind::Sync`]
    ///   (which implements `X_sync`, the strongest implementable set);
    /// - not implementable → `None`... except there is always an answer
    ///   here: the method returns `Sync` with `implementable == false`
    ///   callers should check [`Classification::is_implementable`]
    ///   first; for uniformity we still hand back `Async` so callers can
    ///   run *something* and watch it fail.
    pub fn recommendation(&self) -> ProtocolKind {
        match &self.classify.classification {
            Classification::TaglessSufficient { .. } => ProtocolKind::Async,
            Classification::TaggedSufficient { .. } => {
                ProtocolKind::Synthesized(self.spec.predicate().clone())
            }
            Classification::RequiresControlMessages { .. } => ProtocolKind::Sync,
            Classification::NotImplementable => ProtocolKind::Async,
        }
    }

    /// The flat summary row.
    pub fn summary(&self) -> SummaryRow {
        SummaryRow {
            name: self.spec.name().to_owned(),
            predicate: self.spec.predicate().to_string(),
            vertices: self.classify.graph.as_ref().map_or(0, |g| g.vertex_count()),
            edges: self.classify.graph.as_ref().map_or(0, |g| g.edge_count()),
            cycles: self.classify.cycles.len(),
            min_order: self.classify.min_order,
            verdict: self.classify.classification.to_string(),
            protocol: self.recommendation().name().to_owned(),
            witnesses: self.witnesses.len(),
        }
    }

    /// A human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("=== {} ===\n", self.spec.name()));
        s.push_str(&self.classify.render());
        for w in &self.witnesses {
            let kind = match w.kind {
                WitnessKind::SyncViolation => "run in X_sync violating the spec",
                WitnessKind::CausalViolation => "run in X_co violating the spec",
                WitnessKind::AsyncViolation => "run in X_async violating the spec",
            };
            s.push_str(&format!("witness   : {kind}\n"));
            for line in w.run.render().lines() {
                s.push_str(&format!("            {line}\n"));
            }
        }
        s.push_str(&format!("protocol  : {}\n", self.recommendation().name()));
        s
    }

    /// The summary as a JSON value.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self.summary()).expect("summary serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_predicate::catalog;

    fn analyze(name: &str) -> AnalysisReport {
        let entry = catalog::by_name(name).expect("catalog entry");
        Spec::from_predicate(entry.predicate).named(name).analyze()
    }

    #[test]
    fn causal_report_recommends_synthesized() {
        let r = analyze("causal");
        assert!(r.classification().is_tagged_sufficient());
        assert_eq!(r.recommendation().name(), "synthesized");
        r.verify_witnesses().unwrap();
        assert_eq!(r.witnesses().len(), 1);
    }

    #[test]
    fn handoff_report_recommends_sync() {
        let r = analyze("handoff");
        assert!(!r.classification().is_tagged_sufficient());
        assert_eq!(r.recommendation().name(), "sync");
        r.verify_witnesses().unwrap();
    }

    #[test]
    fn mutual_send_recommends_async() {
        let r = analyze("mutual-send");
        assert!(r.classification().is_tagless_sufficient());
        assert_eq!(r.recommendation().name(), "async");
    }

    #[test]
    fn summary_row_fields() {
        let r = analyze("fifo");
        let s = r.summary();
        assert_eq!(s.name, "fifo");
        assert_eq!(s.vertices, 2);
        assert_eq!(s.edges, 2);
        assert_eq!(s.min_order, Some(1));
        assert_eq!(s.protocol, "synthesized");
        assert_eq!(s.witnesses, 1);
    }

    #[test]
    fn render_includes_witness_and_protocol() {
        let r = analyze("causal");
        let text = r.render();
        assert!(text.contains("verdict"));
        assert!(text.contains("witness"));
        assert!(text.contains("protocol  : synthesized"));
    }

    #[test]
    fn json_roundtrip() {
        let r = analyze("sync-crown-2");
        let v = r.to_json();
        assert_eq!(v["name"], "sync-crown-2");
        assert_eq!(v["min_order"], 2);
        assert_eq!(v["protocol"], "sync");
    }
}

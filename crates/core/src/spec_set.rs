//! Multi-predicate specifications: intersections `∩ X_Bi`.
//!
//! Several specifications in the paper are naturally families rather
//! than single predicates — `X_sync` itself is defined by forbidding
//! crowns of *every* size `k ≥ 2` (§3.4). Since each `X_Bi` sits above
//! one of the three limit sets, the intersection's class is simply the
//! *most demanding* member's class:
//!
//! - implementable ⟺ `X_sync ⊆ ∩ X_Bi` ⟺ every member implementable;
//! - tagged sufficient ⟺ `X_co ⊆ ∩ X_Bi` ⟺ every member tagged-or-less;
//! - tagless sufficient ⟺ every member tagless.

use crate::spec::Spec;
use msgorder_classifier::classify::classify;
use msgorder_predicate::catalog::{self, PaperClass};
use msgorder_predicate::{ForbiddenPredicate, ParseError};
use msgorder_protocols::ProtocolKind;
use std::fmt;

/// A specification given as a set of forbidden predicates; the intended
/// behaviour set is the intersection of the members' `X_B`s.
#[derive(Debug, Clone)]
pub struct SpecSet {
    name: String,
    members: Vec<ForbiddenPredicate>,
}

impl SpecSet {
    /// An empty set (the universal specification `X_async`).
    pub fn new(name: &str) -> SpecSet {
        SpecSet {
            name: name.to_owned(),
            members: Vec::new(),
        }
    }

    /// Builds from predicates.
    pub fn from_predicates<I>(name: &str, preds: I) -> SpecSet
    where
        I: IntoIterator<Item = ForbiddenPredicate>,
    {
        SpecSet {
            name: name.to_owned(),
            members: preds.into_iter().collect(),
        }
    }

    /// Parses each source string with the predicate DSL.
    ///
    /// # Errors
    /// Returns the first member's parse error.
    pub fn parse_all<'a, I>(name: &str, sources: I) -> Result<SpecSet, ParseError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut members = Vec::new();
        for src in sources {
            members.push(ForbiddenPredicate::parse(src)?);
        }
        Ok(SpecSet {
            name: name.to_owned(),
            members,
        })
    }

    /// The bounded approximation of full logical synchrony: forbid every
    /// crown of size `2..=max_k`. (The exact `X_sync` is the limit
    /// `max_k → ∞`; each finite family is already control-message
    /// class.)
    pub fn logical_synchrony(max_k: usize) -> SpecSet {
        SpecSet {
            name: format!("logical-synchrony(k<={max_k})"),
            members: (2..=max_k).map(catalog::sync_crown).collect(),
        }
    }

    /// Adds a member.
    #[must_use]
    pub fn and(mut self, pred: ForbiddenPredicate) -> SpecSet {
        self.members.push(pred);
        self
    }

    /// The member predicates.
    pub fn members(&self) -> &[ForbiddenPredicate] {
        &self.members
    }

    /// The name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The combined protocol class: the most demanding member's class.
    /// An empty set is `X_async` — tagless.
    pub fn combined_class(&self) -> PaperClass {
        let mut worst = PaperClass::Tagless;
        for pred in &self.members {
            let class = classify(pred).classification.protocol_class();
            worst = match (worst, class) {
                (_, PaperClass::Unimplementable) | (PaperClass::Unimplementable, _) => {
                    PaperClass::Unimplementable
                }
                (_, PaperClass::General) | (PaperClass::General, _) => PaperClass::General,
                (_, PaperClass::Tagged) | (PaperClass::Tagged, _) => PaperClass::Tagged,
                _ => PaperClass::Tagless,
            };
        }
        worst
    }

    /// The recommended runnable protocol for the intersection.
    pub fn recommendation(&self) -> ProtocolKind {
        match self.combined_class() {
            PaperClass::Tagless => ProtocolKind::Async,
            PaperClass::Tagged => ProtocolKind::SynthesizedSet(self.members.clone()),
            PaperClass::General => ProtocolKind::Sync,
            PaperClass::Unimplementable => ProtocolKind::Async,
        }
    }

    /// Per-member analysis reports.
    pub fn member_reports(&self) -> Vec<crate::report::AnalysisReport> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Spec::from_predicate(p.clone())
                    .named(&format!("{}[{i}]", self.name))
                    .analyze()
            })
            .collect()
    }

    /// A multi-line rendering: member table + combined verdict.
    pub fn render(&self) -> String {
        let mut s = format!(
            "=== {} (intersection of {} members) ===\n",
            self.name,
            self.members.len()
        );
        for (i, pred) in self.members.iter().enumerate() {
            let class = classify(pred).classification.protocol_class();
            s.push_str(&format!("  [{i}] {pred}\n        -> {class}\n"));
        }
        s.push_str(&format!("combined : {}\n", self.combined_class()));
        s.push_str(&format!("protocol : {}\n", self.recommendation().name()));
        s
    }
}

impl fmt::Display for SpecSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_tagless() {
        let s = SpecSet::new("anything-goes");
        assert_eq!(s.combined_class(), PaperClass::Tagless);
        assert_eq!(s.recommendation().name(), "async");
    }

    #[test]
    fn tagged_members_stay_tagged() {
        let s = SpecSet::from_predicates(
            "fifo+flush",
            [catalog::fifo(), catalog::global_forward_flush()],
        );
        assert_eq!(s.combined_class(), PaperClass::Tagged);
        assert_eq!(s.recommendation().name(), "synthesized-set");
    }

    #[test]
    fn one_general_member_forces_control_messages() {
        let s = SpecSet::from_predicates("causal+crown", [catalog::causal()])
            .and(catalog::sync_crown(2));
        assert_eq!(s.combined_class(), PaperClass::General);
        assert_eq!(s.recommendation().name(), "sync");
    }

    #[test]
    fn unimplementable_member_poisons_the_set() {
        let s = SpecSet::from_predicates(
            "mixed",
            [catalog::fifo(), catalog::receive_second_before_first()],
        );
        assert_eq!(s.combined_class(), PaperClass::Unimplementable);
    }

    #[test]
    fn logical_synchrony_family() {
        let s = SpecSet::logical_synchrony(5);
        assert_eq!(s.members().len(), 4);
        assert_eq!(s.combined_class(), PaperClass::General);
    }

    #[test]
    fn parse_all_and_render() {
        let s = SpecSet::parse_all(
            "pair",
            [
                "forbid x, y: x.s < y.s & y.r < x.r",
                "forbid x, y: x.s < y.s & y.r < x.r where color(y) = red",
            ],
        )
        .unwrap();
        assert_eq!(s.members().len(), 2);
        let text = s.render();
        assert!(text.contains("combined : tagging sufficient"));
        assert!(text.contains("[1]"));
        assert_eq!(s.member_reports().len(), 2);
    }

    #[test]
    fn parse_all_propagates_errors() {
        assert!(SpecSet::parse_all("bad", ["forbid x: x.s <"]).is_err());
    }
}

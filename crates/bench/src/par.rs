//! The batch-evaluation engine: fan independent work units across a
//! scoped worker pool.
//!
//! Experiments and benchmarks in this workspace are dominated by
//! embarrassingly parallel batches — evaluating one predicate against a
//! corpus of runs, generating runs across a seed range, classifying a
//! catalog of specifications. The [`Engine`] distributes such batches
//! over `std::thread::scope` workers with a shared atomic work index, so
//! heterogeneous work units balance dynamically.
//!
//! **Determinism**: [`Engine::par_map`] writes each result into the slot
//! of its input, so the output order is the input order regardless of
//! thread count or scheduling. With `threads == 1` the engine does not
//! spawn at all — it runs the plain sequential iterator, producing
//! bit-identical results and allocation behavior to a hand-written loop.
//!
//! Thread count comes from [`Engine::from_env`]: the `MSGORDER_THREADS`
//! environment variable if set, else the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker pool configuration for batch evaluation.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine using exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// An engine running everything on the calling thread.
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// Reads the thread count from `MSGORDER_THREADS`, falling back to
    /// the machine's available parallelism (and 1 if even that is
    /// unknown). `MSGORDER_THREADS=0` and unparsable values also fall
    /// back — an engine never has zero workers.
    pub fn from_env() -> Self {
        Engine::from_env_value(std::env::var("MSGORDER_THREADS").ok().as_deref())
    }

    /// [`Engine::from_env`] with the variable's value passed explicitly
    /// (so the parsing and clamping logic is testable without touching
    /// process-global environment state).
    fn from_env_value(var: Option<&str>) -> Self {
        let threads = var
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Engine::new(threads)
    }

    /// The number of workers this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Work units are claimed dynamically (a shared atomic index), so
    /// units of very different cost still balance. With one thread this
    /// is exactly `items.into_iter().map(f).collect()`.
    ///
    /// # Panics
    /// Propagates a panic from any work unit.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("no worker panicked holding a work slot")
                        .take()
                        .expect("each work unit is claimed once");
                    let result = f(item);
                    *slots[i]
                        .lock()
                        .expect("no worker panicked holding a result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("final read")
                    .expect("every slot was filled")
            })
            .collect()
    }

    /// Borrowing variant of [`Engine::par_map`]: maps `f` over `&items`
    /// without consuming them, in input order. This is the shape of
    /// "one predicate against a corpus": the corpus stays available
    /// afterwards.
    pub fn par_map_ref<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        self.par_map(items.iter().collect(), f)
    }

    /// Maps `f` over a range of indices (the per-seed loop shape),
    /// returning results in index order.
    pub fn par_map_range<R, F>(&self, range: std::ops::Range<usize>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map(range.collect(), f)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let seq = Engine::sequential().par_map(items.clone(), |x| x * x + 1);
        for threads in [2, 4, 7] {
            let par = Engine::new(threads).par_map(items.clone(), |x| x * x + 1);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn order_is_input_order() {
        let out = Engine::new(4).par_map((0..64).collect::<Vec<usize>>(), |x| x);
        assert_eq!(out, (0..64).collect::<Vec<usize>>());
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Engine::new(3).par_map((0..50).collect::<Vec<usize>>(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn ref_variant_leaves_corpus_intact() {
        let corpus: Vec<String> = (0..10).map(|i| format!("run-{i}")).collect();
        let lens = Engine::new(2).par_map_ref(&corpus, |s| s.len());
        assert_eq!(lens.len(), corpus.len());
        assert_eq!(corpus[0], "run-0", "corpus still usable");
    }

    #[test]
    fn range_variant_is_index_ordered() {
        let out = Engine::new(4).par_map_range(0..20, |i| i * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<u8> = Engine::new(4).par_map(Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        let one = Engine::new(4).par_map(vec![9u8], |x| x + 1);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(Engine::new(0).threads(), 1);
    }

    #[test]
    fn env_zero_never_builds_a_zero_worker_engine() {
        // Regression: MSGORDER_THREADS=0 used to flow straight into the
        // thread count; it must fall back like an unset variable.
        assert!(Engine::from_env_value(Some("0")).threads() >= 1);
        assert_eq!(
            Engine::from_env_value(Some("0")).threads(),
            Engine::from_env_value(None).threads()
        );
    }

    #[test]
    fn env_parses_explicit_counts_and_ignores_garbage() {
        assert_eq!(Engine::from_env_value(Some("3")).threads(), 3);
        assert!(Engine::from_env_value(Some("not-a-number")).threads() >= 1);
        assert!(Engine::from_env_value(Some("")).threads() >= 1);
    }
}

//! Shared helpers for the experiment runner and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod par;
pub mod snapshot;

pub use par::Engine;

use std::fmt::Write as _;

/// A plain-text table builder for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = width[i] - cell.chars().count();
                let _ = write!(out, "{}{}  ", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded() {
        let mut t = Table::new(["name", "n"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.259), "1.26");
    }
}

//! Shared plumbing for the `snapshot*` bins.
//!
//! Every snapshot binary follows the same recipe: read a millisecond
//! budget from `SNAPSHOT_MS`, spin a closure until the budget elapses,
//! and write a pretty-printed JSON report. The workload setup they
//! measure against also overlaps — the causal-evaluation corpus and the
//! digest-checked explorer rows appear in several reports. This module
//! holds those pieces once so a new snapshot bin is just "pick
//! workloads, call [`measure`], assemble rows".

use crate::Engine;
use msgorder_predicate::{eval, ForbiddenPredicate};
use msgorder_protocols::AsyncProtocol;
use msgorder_runs::generator::{random_causal_run, GenParams};
use msgorder_runs::{SystemRun, UserRun, UserRunSnapshot};
use msgorder_simnet::{explore_parallel_with, Exploration, ExploreOptions, Workload};
use serde_json::json;
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Instant;

/// Measurement budget per metric, from `SNAPSHOT_MS` (milliseconds,
/// default 300).
pub fn budget_ms() -> u64 {
    std::env::var("SNAPSHOT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300)
}

/// The machine's core count (1 if it cannot be determined). Threaded
/// rows only beat single-threaded ones when this exceeds 1.
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` repeatedly until the budget elapses; returns
/// (iterations, elapsed seconds). Always runs at least once.
pub fn measure<R>(budget_ms: u64, mut f: impl FnMut() -> R) -> (usize, f64) {
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0usize;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (iters, start.elapsed().as_secs_f64())
}

/// The standard batch-evaluation corpus: causally-ordered random runs,
/// one per seed. BENCH_1 and BENCH_8 both rate the evaluator against
/// this corpus, so they must build it identically.
pub fn causal_corpus(corpus_runs: usize, msgs_per_run: usize) -> Vec<UserRun> {
    (0..corpus_runs)
        .map(|seed| random_causal_run(GenParams::new(3, msgs_per_run, seed as u64)))
        .collect()
}

/// Batch-evaluates `pred` over `corpus` under an `Engine` of the given
/// width until the budget elapses; returns runs per second.
pub fn eval_batch_runs_per_sec(
    budget_ms: u64,
    threads: usize,
    pred: &ForbiddenPredicate,
    corpus: &[UserRun],
) -> f64 {
    let prep = eval::Prepared::new(pred);
    let engine = Engine::new(threads);
    let (iters, secs) = measure(budget_ms, || {
        engine.par_map_ref(corpus, |run| prep.holds(run))
    });
    (iters * corpus.len()) as f64 / secs
}

/// FNV-1a over the terminal run's user-view partial order: identical
/// for identical configurations whatever schedule produced them.
pub fn run_digest(run: &SystemRun) -> u64 {
    let snap = UserRunSnapshot::from(&run.users_view());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for m in &snap.messages {
        eat(m.src.0 as u64);
        eat(m.dst.0 as u64);
    }
    for &(a, b) in &snap.covers {
        eat(a as u64);
        eat(b as u64);
    }
    h
}

/// One timed, digest-checked exploration: statistics plus a commutative
/// digest of the violating configurations. Equal digests across engine
/// configurations witness that they found the same violation set.
pub struct ExploreRow {
    /// Wall-clock seconds for the whole exploration.
    pub wall_s: f64,
    /// Raw explorer statistics (schedules, states, sleep skips, ...).
    pub exploration: Exploration,
    /// Number of distinct violating terminal configurations.
    pub violating_configs: usize,
    /// Order-independent digest of the violating configuration set.
    pub digest: u64,
}

impl ExploreRow {
    /// Schedules per wall-clock second.
    pub fn schedules_per_sec(&self) -> f64 {
        self.exploration.schedules as f64 / self.wall_s
    }
}

/// Runs one exploration of `w` under the async protocol, checking
/// `spec` on every terminal configuration and folding the violating
/// ones into a set digest.
pub fn timed_explore(
    procs: usize,
    w: &Workload,
    spec: &ForbiddenPredicate,
    opts: &ExploreOptions,
) -> ExploreRow {
    let configs: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let start = Instant::now();
    let exploration = explore_parallel_with(
        procs,
        w.clone(),
        |_| AsyncProtocol::new(),
        opts,
        &|run: &SystemRun| {
            if eval::find_instantiation(spec, &run.users_view()).is_some() {
                configs
                    .lock()
                    .expect("no visitor panicked")
                    .insert(run_digest(run));
            }
            true
        },
    );
    let wall_s = start.elapsed().as_secs_f64();
    let configs = configs.into_inner().expect("no visitor panicked");
    ExploreRow {
        wall_s,
        exploration,
        violating_configs: configs.len(),
        digest: configs.iter().fold(0u64, |acc, d| acc.wrapping_add(*d)),
    }
}

/// Serializes an [`ExploreRow`] the way the BENCH reports expect.
pub fn explore_row_json(name: &str, r: &ExploreRow) -> serde_json::Value {
    json!({
        "engine": name,
        "wall_s": r.wall_s,
        "schedules": r.exploration.schedules,
        "schedules_per_sec": r.schedules_per_sec(),
        "states": r.exploration.states,
        "states_per_sec": r.exploration.states as f64 / r.wall_s,
        "sleep_skipped": r.exploration.sleep_skipped,
        "truncated": r.exploration.truncated,
        "violating_configurations": r.violating_configs,
        "violation_digest": format!("{:#018x}", r.digest),
    })
}

/// Writes a report as pretty-printed JSON with a trailing newline.
///
/// # Panics
/// Panics if the value fails to serialize or the path is not writable —
/// a snapshot bin has nothing sensible to do but abort in either case.
pub fn write_report(path: &str, doc: &serde_json::Value) {
    let mut bytes = serde_json::to_vec_pretty(doc).expect("report serializes");
    bytes.push(b'\n');
    std::fs::write(path, bytes).expect("snapshot file is writable");
    println!("[snapshot written to {path}]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_always_runs_once() {
        let mut calls = 0;
        let (iters, secs) = measure(0, || calls += 1);
        assert_eq!(iters, calls);
        assert!(iters >= 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = causal_corpus(3, 8);
        let b = causal_corpus(3, 8);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            let sa = UserRunSnapshot::from(x);
            let sb = UserRunSnapshot::from(y);
            assert_eq!(sa.covers, sb.covers);
        }
    }

    #[test]
    fn digest_is_schedule_independent_but_config_sensitive() {
        use msgorder_predicate::catalog;
        // Two engine configurations over the same workload must agree on
        // the violation digest; a different workload must not.
        let spec = catalog::fifo();
        let w = Workload::uniform_random(3, 4, 3);
        let full = timed_explore(3, &w, &spec, &ExploreOptions::default());
        let por = timed_explore(
            3,
            &w,
            &spec,
            &ExploreOptions {
                por: true,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(full.digest, por.digest);
        assert_eq!(full.violating_configs, por.violating_configs);
        let other = timed_explore(
            3,
            &Workload::uniform_random(3, 4, 4),
            &spec,
            &ExploreOptions::default(),
        );
        assert_ne!(full.digest, other.digest);
    }
}

//! Writes `BENCH_3.json` — a throughput snapshot of the streaming run
//! pipeline vs the post-hoc one:
//!
//! 1. **violating runs** (async protocol, FIFO spec) — post-hoc closure
//!    + search vs online monitoring vs online with early halt;
//! 2. **safe runs** (FIFO protocol, FIFO spec) — the streaming overhead
//!    when no early exit is possible;
//! 3. **detection latency and live state** — how early the verdict
//!    lands and how much the pipeline holds onto.
//!
//! ```sh
//! cargo run --release -p msgorder-bench --bin snapshot_online   # ./BENCH_3.json
//! cargo run --release -p msgorder-bench --bin snapshot_online -- out.json
//! ```
//!
//! The measurement budget per metric comes from `SNAPSHOT_MS`
//! (milliseconds, default 300).

use msgorder_bench::snapshot::{budget_ms, cores, measure, write_report};
use msgorder_predicate::{catalog, eval};
use msgorder_protocols::{AsyncProtocol, FifoProtocol, OnlineMonitor};
use msgorder_simnet::{LatencyModel, SimConfig, Simulation, Workload};
use serde_json::json;

fn config(n: usize, seed: u64) -> SimConfig {
    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_owned());
    let budget_ms = budget_ms();
    let cores = cores();
    println!("[snapshot: {budget_ms} ms per metric, {cores} core(s)]");

    let n = 3usize;
    let spec = catalog::fifo();
    let mut rows = Vec::new();
    for msgs in [20usize, 40, 80] {
        let seed = 3u64;
        let w = Workload::uniform_random(n, msgs, seed);

        let (ph_iters, ph_secs) = measure(budget_ms, || {
            let r = Simulation::run_uniform(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                .expect("no protocol bug");
            eval::find_instantiation(&spec, &r.run.users_view())
        });
        let (on_iters, on_secs) = measure(budget_ms, || {
            let mut mon = OnlineMonitor::new(&spec);
            Simulation::new(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                .run_streaming(&mut mon)
                .expect("no protocol bug");
            mon.violated()
        });
        let (ha_iters, ha_secs) = measure(budget_ms, || {
            let mut mon = OnlineMonitor::halting(&spec);
            Simulation::new(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                .run_streaming(&mut mon)
                .expect("no protocol bug");
            mon.violated()
        });
        let posthoc_rps = ph_iters as f64 / ph_secs;
        let online_rps = on_iters as f64 / on_secs;
        let halt_rps = ha_iters as f64 / ha_secs;

        // Detection latency and live state on this workload.
        let mut mon = OnlineMonitor::halting(&spec);
        let r = Simulation::new(config(n, seed), w.clone(), |_| AsyncProtocol::new())
            .run_streaming(&mut mon)
            .expect("no protocol bug");
        let detection_event = mon.detection_event();
        let total_events = 4 * msgs;
        println!(
            "violating msgs={msgs}: posthoc {posthoc_rps:>9.0}/s  online {online_rps:>9.0}/s  \
             halt {halt_rps:>9.0}/s  detect@{:?}/{total_events}",
            detection_event
        );
        rows.push(json!({
            "msgs": msgs,
            "posthoc_runs_per_sec": posthoc_rps,
            "online_runs_per_sec": online_rps,
            "online_halt_runs_per_sec": halt_rps,
            "halt_speedup_over_posthoc": halt_rps / posthoc_rps.max(f64::MIN_POSITIVE),
            "detection_event": detection_event,
            "total_events": total_events,
            "monitor_live_state": mon.live_state(),
            "clock_words_at_halt": r.run.clock_words(),
        }));
    }

    // Safe runs: no early exit; isolates streaming vs closure overhead.
    let msgs = 40usize;
    let seed = 11u64;
    let w = Workload::uniform_random(n, msgs, seed);
    let (ph_iters, ph_secs) = measure(budget_ms, || {
        let r = Simulation::run_uniform(config(n, seed), w.clone(), |_| FifoProtocol::new())
            .expect("no protocol bug");
        eval::find_instantiation(&spec, &r.run.users_view())
    });
    let (on_iters, on_secs) = measure(budget_ms, || {
        let mut mon = OnlineMonitor::new(&spec);
        Simulation::new(config(n, seed), w.clone(), |_| FifoProtocol::new())
            .run_streaming(&mut mon)
            .expect("no protocol bug");
        mon.violated()
    });
    let safe_posthoc_rps = ph_iters as f64 / ph_secs;
    let safe_online_rps = on_iters as f64 / on_secs;
    println!(
        "safe      msgs={msgs}: posthoc {safe_posthoc_rps:>9.0}/s  online {safe_online_rps:>9.0}/s"
    );

    let violating = json!({
        "protocol": "async",
        "rows": rows,
    });
    let safe = json!({
        "protocol": "fifo",
        "msgs": msgs,
        "posthoc_runs_per_sec": safe_posthoc_rps,
        "online_runs_per_sec": safe_online_rps,
        "online_over_posthoc": safe_online_rps / safe_posthoc_rps.max(f64::MIN_POSITIVE),
    });
    let report = json!({
        "bench": "BENCH_3",
        "generated_by": "cargo run --release -p msgorder-bench --bin snapshot_online",
        "budget_ms": budget_ms,
        "cores": cores,
        "spec": "fifo",
        "violating": violating,
        "safe": safe,
    });
    write_report(&out_path, &report);
}

//! Writes `BENCH_1.json` — a throughput snapshot of the workspace's three
//! hot paths, at several engine widths:
//!
//! 1. **batch predicate evaluation** — one prepared predicate against a
//!    corpus of runs, fanned through the batch `Engine`;
//! 2. **poset kernels** — transitive closure construction and the
//!    word-parallel transitive reduction;
//! 3. **schedule exploration** — exhaustive interleaving enumeration,
//!    sequential vs deduplicated vs parallel.
//!
//! ```sh
//! cargo run --release -p msgorder-bench --bin snapshot            # writes ./BENCH_1.json
//! cargo run --release -p msgorder-bench --bin snapshot -- out.json
//! ```
//!
//! The measurement budget per metric comes from `SNAPSHOT_MS`
//! (milliseconds, default 300). The report records the machine's core
//! count: speedups from threading are only expected when `cores > 1`;
//! on a single-core machine the parallel rows measure engine overhead.

use msgorder_bench::snapshot::{budget_ms, causal_corpus, cores, measure, write_report};
use msgorder_poset::{DiGraph, TransitiveClosure};
use msgorder_predicate::catalog;
use msgorder_protocols::FifoProtocol;
use msgorder_simnet::{explore, explore_dedup, explore_parallel, SendSpec, Workload};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::json;

/// A random DAG: edges only from lower to higher node ids.
fn random_dag(n: usize, edge_prob: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_range(0.0..1.0) < edge_prob {
                g.add_edge(u, v).expect("forward edges cannot form a cycle");
            }
        }
    }
    g
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_owned());
    let budget_ms = budget_ms();
    let cores = cores();
    println!("[snapshot: {budget_ms} ms per metric, {cores} core(s)]");

    // -- 1. batch predicate evaluation -----------------------------------
    let corpus_runs = 64usize;
    let msgs_per_run = 30usize;
    let corpus = causal_corpus(corpus_runs, msgs_per_run);
    let pred = catalog::causal();
    let mut eval_rows = serde_json::Map::new();
    let mut eval_rps = Vec::new();
    for threads in [1usize, 2, 4] {
        let rps =
            msgorder_bench::snapshot::eval_batch_runs_per_sec(budget_ms, threads, &pred, &corpus);
        println!("eval/batch  threads={threads}: {rps:>12.0} runs/sec");
        eval_rows.insert(threads.to_string(), json!(rps));
        eval_rps.push(rps);
    }
    let eval_speedup = eval_rps.last().copied().unwrap_or(0.0) / eval_rps[0].max(f64::MIN_POSITIVE);

    // -- 2. poset kernels -------------------------------------------------
    let nodes = 96usize;
    let dag = random_dag(nodes, 0.08, 17);
    let edges = dag.edge_count();
    let (c_iters, c_secs) = measure(budget_ms, || TransitiveClosure::of_graph(&dag));
    let closure = TransitiveClosure::of_graph(&dag);
    let (r_iters, r_secs) = measure(budget_ms, || closure.reduction());
    let closures_per_sec = c_iters as f64 / c_secs;
    let reductions_per_sec = r_iters as f64 / r_secs;
    println!("closure     n={nodes} m={edges}: {closures_per_sec:>12.0} closures/sec");
    println!("reduction   n={nodes} m={edges}: {reductions_per_sec:>12.0} reductions/sec");

    // -- 3. schedule exploration -----------------------------------------
    let workload = Workload {
        sends: (0..3)
            .map(|i| SendSpec {
                at: i,
                src: 0,
                dst: 1,
                color: None,
            })
            .collect(),
    };
    let cap = 1usize << 20;
    let (seq_iters, seq_secs) = measure(budget_ms, || {
        explore(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules
    });
    let seq_schedules =
        explore(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules;
    let (dd_iters, dd_secs) = measure(budget_ms, || {
        explore_dedup(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules
    });
    let dedup_schedules =
        explore_dedup(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules;
    let (par_iters, par_secs) = measure(budget_ms, || {
        explore_parallel(
            2,
            workload.clone(),
            |_| FifoProtocol::new(),
            4,
            cap,
            |_| true,
        )
        .schedules
    });
    let seq_sps = (seq_iters * seq_schedules) as f64 / seq_secs;
    let dd_sps = (dd_iters * dedup_schedules) as f64 / dd_secs;
    let par_sps = (par_iters * seq_schedules) as f64 / par_secs;
    println!("explore     sequential : {seq_sps:>12.0} schedules/sec ({seq_schedules} schedules)");
    println!("explore     dedup      : {dd_sps:>12.0} schedules/sec ({dedup_schedules} distinct configurations)");
    println!("explore     4 threads  : {par_sps:>12.0} schedules/sec");

    let eval_batch = json!({
        "predicate": "causal (B2)",
        "corpus_runs": corpus_runs,
        "msgs_per_run": msgs_per_run,
        "runs_per_sec_by_threads": serde_json::Value::Object(eval_rows),
        "speedup_max_threads_over_1": eval_speedup,
    });
    let poset_kernels = json!({
        "nodes": nodes,
        "edges": edges,
        "closures_per_sec": closures_per_sec,
        "reductions_per_sec": reductions_per_sec,
    });
    let explore_report = json!({
        "workload": "3 msgs on one channel, fifo protocol",
        "schedules": seq_schedules,
        "dedup_configurations": dedup_schedules,
        "sequential_schedules_per_sec": seq_sps,
        "dedup_schedules_per_sec": dd_sps,
        "threads4_schedules_per_sec": par_sps,
    });
    let report = json!({
        "bench": "BENCH_1",
        "generated_by": "cargo run --release -p msgorder-bench --bin snapshot",
        "budget_ms": budget_ms,
        "cores": cores,
        "note": "threaded rows only beat threads=1 when cores > 1; on a single-core machine they measure engine overhead, not speedup",
        "eval_batch": eval_batch,
        "poset_kernels": poset_kernels,
        "explore": explore_report,
    });
    write_report(&out_path, &report);
}

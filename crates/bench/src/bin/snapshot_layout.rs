//! Writes `BENCH_8.json` — before/after throughput for the flat-memory
//! hot-path pass (event arena, SoA runs, word-width clock ops):
//!
//! 1. **batch predicate evaluation** — the BENCH_1 workload (causal
//!    spec over 64 random causal runs of 30 messages), where the
//!    word-mask last-variable kernel intersects whole closure-row words
//!    instead of probing candidates one by one;
//! 2. **schedule exploration** — the BENCH_6 workload matrix (3
//!    processes, async protocol vs the FIFO spec), where the explorer's
//!    per-schedule cost is dominated by run replay and evaluation.
//!
//! The *before* rows are constants: the same workloads measured at the
//! commit preceding this pass ("Run verified orderings over real
//! sockets..."), same machine, same `SNAPSHOT_MS=300` budget. The
//! *after* rows are re-measured live. Violation digests are asserted
//! equal to the recorded baseline digests — the speedup is only
//! meaningful if the new layout finds the identical violation sets.
//!
//! ```sh
//! cargo run --release -p msgorder-bench --bin snapshot_layout   # ./BENCH_8.json
//! cargo run --release -p msgorder-bench --bin snapshot_layout -- out.json
//! ```
//!
//! The measurement budget per metric comes from `SNAPSHOT_MS`
//! (milliseconds, default 300). Throughput baselines are
//! machine-dependent: on other hardware the absolute numbers shift,
//! but the digest assertions still hold.

use msgorder_bench::snapshot::{
    budget_ms, causal_corpus, cores, eval_batch_runs_per_sec, measure, timed_explore, write_report,
};
use msgorder_predicate::catalog;
use msgorder_protocols::FifoProtocol;
use msgorder_simnet::{explore, ExploreOptions, SendSpec, Workload};
use serde_json::json;

/// Baseline eval_batch runs/sec at threads=1 (pre-pass commit,
/// `SNAPSHOT_MS=300`, 1 core).
const BEFORE_EVAL_RPS_T1: f64 = 72_789.17;

/// Baseline sequential explorer throughput on the BENCH_1 workload
/// (3 messages on one channel, fifo protocol), budget-looped like the
/// after-measurement — the stable, like-for-like explorer metric.
const BEFORE_EXPLORE_SEQ_SPS: f64 = 55_392.64;

/// Baseline explorer matrix rows: (messages, engine, schedules/sec,
/// expected violating configurations, expected violation digest). These
/// are single-shot wall-clock measurements — noisier than the
/// budget-looped rows above, so their speedups are informational; the
/// digests are the point. Digests are layout-independent facts about
/// the workload, not throughput — the after-run must reproduce them
/// exactly.
const BEFORE_EXPLORE: &[(usize, &str, f64, usize, u64)] = &[
    (5, "full", 35_945.43, 74, 0x9aa7_3789_c8e1_ba4b),
    (5, "por", 27_046.46, 74, 0x9aa7_3789_c8e1_ba4b),
    (6, "full", 33_484.48, 384, 0xbffa_a1ce_4809_3e3c),
    (6, "por", 20_786.35, 384, 0xbffa_a1ce_4809_3e3c),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".to_owned());
    let budget_ms = budget_ms();
    let cores = cores();
    println!("[snapshot_layout: {budget_ms} ms per metric, {cores} core(s)]");

    // -- 1. batch predicate evaluation (BENCH_1 workload) ----------------
    let corpus = causal_corpus(64, 30);
    let pred = catalog::causal();
    let mut eval_rows = Vec::new();
    for threads in [1usize, 2] {
        let rps = eval_batch_runs_per_sec(budget_ms, threads, &pred, &corpus);
        let before = if threads == 1 {
            Some(BEFORE_EVAL_RPS_T1)
        } else {
            None
        };
        let speedup = before.map(|b| rps / b);
        println!(
            "eval/batch  threads={threads}: {rps:>12.0} runs/sec{}",
            speedup.map_or(String::new(), |s| format!("  ({s:.2}x over baseline)"))
        );
        eval_rows.push(json!({
            "threads": threads,
            "before_runs_per_sec": before,
            "after_runs_per_sec": rps,
            "speedup": speedup,
        }));
    }

    // -- 2. sequential exploration throughput (BENCH_1 workload) ---------
    let workload = Workload {
        sends: (0..3)
            .map(|i| SendSpec {
                at: i,
                src: 0,
                dst: 1,
                color: None,
            })
            .collect(),
    };
    let cap = 1usize << 20;
    let seq_schedules =
        explore(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules;
    let (seq_iters, seq_secs) = measure(budget_ms, || {
        explore(2, workload.clone(), |_| FifoProtocol::new(), cap, |_| true).schedules
    });
    let seq_sps = (seq_iters * seq_schedules) as f64 / seq_secs;
    let seq_speedup = seq_sps / BEFORE_EXPLORE_SEQ_SPS;
    println!(
        "explore     sequential : {seq_sps:>12.0} schedules/sec  ({seq_speedup:.2}x over baseline)"
    );
    let explore_seq = json!({
        "workload": "3 msgs on one channel, fifo protocol (BENCH_1)",
        "schedules": seq_schedules,
        "before_schedules_per_sec": BEFORE_EXPLORE_SEQ_SPS,
        "after_schedules_per_sec": seq_sps,
        "speedup": seq_speedup,
    });

    // -- 3. schedule exploration (BENCH_6 workload matrix) ---------------
    let procs = 3usize;
    let seed = 3u64;
    let spec = catalog::fifo();
    let mut explore_rows = Vec::new();
    for &(msgs, engine, before_sps, want_configs, want_digest) in BEFORE_EXPLORE {
        let w = Workload::uniform_random(procs, msgs, seed);
        let opts = match engine {
            "full" => ExploreOptions::default(),
            "por" => ExploreOptions {
                por: true,
                ..ExploreOptions::default()
            },
            other => unreachable!("unknown engine {other}"),
        };
        let row = timed_explore(procs, &w, &spec, &opts);
        assert_eq!(
            (row.violating_configs, row.digest),
            (want_configs, want_digest),
            "{engine} at msgs={msgs} changed the violation set vs the pre-pass baseline"
        );
        let after_sps = row.schedules_per_sec();
        let speedup = after_sps / before_sps;
        println!(
            "explore     msgs={msgs} {engine:<4}: {after_sps:>12.0} schedules/sec  \
             ({speedup:.2}x over baseline, digest {:#018x} unchanged)",
            row.digest
        );
        explore_rows.push(json!({
            "messages": msgs,
            "engine": engine,
            "before_schedules_per_sec": before_sps,
            "after_schedules_per_sec": after_sps,
            "speedup": speedup,
            "schedules": row.exploration.schedules,
            "violating_configurations": row.violating_configs,
            "violation_digest": format!("{:#018x}", row.digest),
        }));
    }

    let eval_batch = json!({
        "workload": "causal (B2) over 64 random causal runs of 30 messages",
        "rows": eval_rows,
    });
    let explore_matrix = json!({
        "workload": format!("{procs} processes, seed {seed}, async vs fifo"),
        "note": "single-shot wall-clock rows: speedups are informational, \
                 the asserted digests are the witness",
        "rows": explore_rows,
    });
    let report = json!({
        "bench": "BENCH_8",
        "generated_by": "cargo run --release -p msgorder-bench --bin snapshot_layout",
        "budget_ms": budget_ms,
        "cores": cores,
        "baseline": "commit preceding the flat-memory pass, same machine, SNAPSHOT_MS=300",
        "note": "before rows are recorded constants; after rows are measured live. \
                 violation digests are asserted bit-equal to the baseline, so every \
                 speedup row also witnesses unchanged verdicts.",
        "eval_batch": eval_batch,
        "explore_sequential": explore_seq,
        "explore_matrix": explore_matrix,
    });
    write_report(&out_path, &report);
}

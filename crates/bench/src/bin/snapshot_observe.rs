//! Writes `BENCH_9.json` — the cost of always-on observability: the
//! streaming kernel with a no-op observer vs the same runs feeding a
//! [`LiveMetrics`] observer draining into a shared
//! [`MetricsRegistry`](msgorder_trace::MetricsRegistry).
//!
//! Two invariants are checked, not just reported:
//!
//! 1. the observed run produces the **same run digest** as the
//!    baseline — metrics collection must not perturb the schedule;
//! 2. the throughput overhead stays under the bar (10% by default,
//!    `OBSERVE_OVERHEAD_BAR_PCT` to override) — the "live feed adds
//!    <10%" line EXP-TR1 draws.
//!
//! ```sh
//! cargo run --release -p msgorder-bench --bin snapshot_observe   # ./BENCH_9.json
//! cargo run --release -p msgorder-bench --bin snapshot_observe -- out.json
//! ```
//!
//! The measurement budget per metric comes from `SNAPSHOT_MS`
//! (milliseconds, default 300).

use msgorder_bench::snapshot::{budget_ms, cores, measure, run_digest, write_report};
use msgorder_protocols::ProtocolKind;
use msgorder_simnet::{
    FaultModel, LatencyModel, RunObserver, SimConfig, Simulation, WireRecord, Workload,
};
use msgorder_trace::{LiveMetrics, SharedRegistry};
use serde_json::json;

/// The no-op baseline observer. It opts into wire records like every
/// real observer in the recording pipeline (`Recorder`, `LiveMetrics`),
/// so the comparison isolates the *metrics aggregation* cost rather
/// than the kernel's wire-record production, which any observability
/// consumer pays.
struct Sink;

impl RunObserver for Sink {
    fn on_event(
        &mut self,
        _view: &msgorder_runs::StreamingRun,
        _ev: msgorder_runs::SystemEvent,
        _index: usize,
        _time: u64,
    ) -> bool {
        true
    }

    fn on_wire(&mut self, _wire: &WireRecord) {}

    fn wants_wire(&self) -> bool {
        true
    }
}

fn config(n: usize, seed: u64, faults: &FaultModel) -> SimConfig {
    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 100 }, seed).with_faults(faults.clone())
}

fn rps(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    let (iters, secs) = measure(budget_ms, &mut f);
    iters as f64 / secs.max(f64::MIN_POSITIVE)
}

/// Paired overhead estimate: interleave baseline and observed
/// measurements and keep the *minimum* overhead across repeats.
/// Scheduler noise can only inflate an overhead reading (it slows
/// whichever side it lands on), so the minimum of several interleaved
/// pairs is the most faithful estimate of the systematic cost —
/// which matters on small CI budgets.
fn paired_overhead_pct(
    budget_ms: u64,
    mut baseline: impl FnMut(),
    mut observed: impl FnMut(),
) -> (f64, f64, f64) {
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for _ in 0..5 {
        let base = rps(budget_ms, &mut baseline);
        let obs = rps(budget_ms, &mut observed);
        let overhead = (1.0 - obs / base.max(f64::MIN_POSITIVE)) * 100.0;
        if overhead < best.0 {
            best = (overhead, base, obs);
        }
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_owned());
    let budget_ms = budget_ms();
    let cores = cores();
    let bar_pct: f64 = std::env::var("OBSERVE_OVERHEAD_BAR_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    println!("[snapshot: {budget_ms} ms per metric, {cores} core(s), bar {bar_pct}%]");

    let n = 4usize;
    let kind = ProtocolKind::by_name("causal-rst", None).expect("registry protocol");
    let faults = FaultModel::none()
        .with_drop(0.02)
        .expect("valid probability");
    let mut rows = Vec::new();
    let mut worst_overhead_pct = f64::NEG_INFINITY;
    let mut digests_agree = true;

    for msgs in [64usize, 256] {
        let seed = 9u64;
        let w = Workload::uniform_random(n, msgs, seed);

        let run_with = |obs: &mut dyn RunObserver| {
            Simulation::new(config(n, seed, &faults), w.clone(), |node| {
                kind.instantiate_with(n, node, false)
            })
            .run_streaming(obs)
            .expect("no protocol bug")
        };

        // Digest check first: one run each way, same schedule demanded.
        let base_run = run_with(&mut Sink).run.build().expect("valid run");
        let registry = SharedRegistry::new();
        let mut live = LiveMetrics::new(registry.clone()).with_terminal_eviction(false, &faults);
        let observed_run = run_with(&mut live).run.build().expect("valid run");
        live.finish();
        let base_digest = run_digest(&base_run);
        let observed_digest = run_digest(&observed_run);
        digests_agree &= base_digest == observed_digest;

        let registry = SharedRegistry::new();
        let (overhead_pct, baseline_rps, observed_rps) = paired_overhead_pct(
            budget_ms,
            || {
                run_with(&mut Sink);
            },
            || {
                let mut live =
                    LiveMetrics::new(registry.clone()).with_terminal_eviction(false, &faults);
                run_with(&mut live);
                live.finish();
            },
        );
        worst_overhead_pct = worst_overhead_pct.max(overhead_pct);
        println!(
            "msgs={msgs:>4}: baseline {baseline_rps:>9.0}/s  observed {observed_rps:>9.0}/s  \
             overhead {overhead_pct:>5.1}%  digest {}",
            if base_digest == observed_digest {
                "match"
            } else {
                "MISMATCH"
            }
        );
        rows.push(json!({
            "msgs": msgs,
            "baseline_runs_per_sec": baseline_rps,
            "observed_runs_per_sec": observed_rps,
            "overhead_pct": overhead_pct,
            "baseline_digest": base_digest,
            "observed_digest": observed_digest,
            "digests_match": base_digest == observed_digest,
        }));
    }

    let within_bar = worst_overhead_pct < bar_pct;
    let report = json!({
        "bench": "BENCH_9",
        "generated_by": "cargo run --release -p msgorder-bench --bin snapshot_observe",
        "budget_ms": budget_ms,
        "cores": cores,
        "protocol": "causal-rst",
        "drop": 0.02,
        "overhead_bar_pct": bar_pct,
        "worst_overhead_pct": worst_overhead_pct,
        "within_bar": within_bar,
        "digests_agree": digests_agree,
        "rows": rows,
    });
    write_report(&out_path, &report);

    if !digests_agree {
        eprintln!("FAIL: metrics observation changed the run digest");
        std::process::exit(1);
    }
    if !within_bar {
        eprintln!(
            "FAIL: live metrics overhead {worst_overhead_pct:.1}% is over the {bar_pct}% bar"
        );
        std::process::exit(1);
    }
}

//! Regenerates every table and figure of the paper (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for paper-vs-measured notes).
//!
//! ```sh
//! cargo run -p msgorder-bench --bin experiments            # all
//! cargo run -p msgorder-bench --bin experiments -- t1 p1   # a subset
//! ```
//!
//! A JSON digest of all results is written to `target/experiments.json`.

use msgorder_bench::{f1, f2, Engine, Table};
use msgorder_classifier::classify::classify;
use msgorder_classifier::cycles::enumerate_cycles;
use msgorder_classifier::reduce::reduce_cycle;
use msgorder_classifier::witness::{separation_witnesses, verify_witness, WitnessKind};
use msgorder_classifier::PredicateGraph;
use msgorder_core::Spec;
use msgorder_predicate::{catalog, eval};
use msgorder_protocols::ProtocolKind;
use msgorder_runs::generator::{distinct_user_views, random_user_run, GenParams};
use msgorder_runs::{construct, limit_sets};
use msgorder_runs::{EventKind, MessageId, ProcessId, SystemEvent, SystemRunBuilder, UserEvent};
use msgorder_simnet::{LatencyModel, SimConfig, Simulation, Workload};
use serde_json::{json, Value};

/// One experiment: prints its tables and returns a JSON digest entry.
type Experiment = fn() -> Value;

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let want = |id: &str| filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()));

    let mut digest = serde_json::Map::new();
    let experiments: Vec<(&str, Experiment)> = vec![
        ("EXP-T1", exp_t1),
        ("EXP-L3", exp_l3),
        ("EXP-F1", exp_f1),
        ("EXP-F2", exp_f2),
        ("EXP-F3", exp_f3),
        ("EXP-F4", exp_f4),
        ("EXP-F5", exp_f5),
        ("EXP-F7", exp_f7),
        ("EXP-E1", exp_e1),
        ("EXP-T2", exp_t2),
        ("EXP-T4", exp_t4),
        ("EXP-D1", exp_d1),
        ("EXP-P1", exp_p1),
        ("EXP-P2", exp_p2),
        ("EXP-P3", exp_p3),
        ("EXP-P4", exp_p4),
        ("EXP-P5", exp_p5),
        ("EXP-P6", exp_p6),
        ("EXP-S1", exp_s1),
        ("EXP-M1", exp_m1),
        ("EXP-N1", exp_n1),
        ("EXP-O1", exp_o1),
        ("EXP-TR1", exp_tr1),
    ];
    let engine = engine();
    println!(
        "[batch engine: {} thread(s); set MSGORDER_THREADS to override]",
        engine.threads()
    );
    let mut timings = serde_json::Map::new();
    for (id, run) in experiments {
        if !want(&id.to_lowercase()) {
            continue;
        }
        println!("\n================ {id} ================");
        let started = std::time::Instant::now();
        let value = run();
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        println!("[{id} took {wall_ms:.1} ms]");
        digest.insert(id.to_owned(), value);
        timings.insert(id.to_owned(), json!(wall_ms));
    }
    digest.insert("_timings_ms".to_owned(), Value::Object(timings));
    digest.insert(
        "_engine".to_owned(),
        json!({
            "threads": engine.threads(),
            "cores": std::thread::available_parallelism().map_or(1, |n| n.get()),
        }),
    );
    let path = std::path::Path::new("target");
    if path.is_dir() {
        let out = path.join("experiments.json");
        if std::fs::write(
            &out,
            serde_json::to_vec_pretty(&digest).expect("serializes"),
        )
        .is_ok()
        {
            println!("\n[digest written to {}]", out.display());
        }
    }
}

/// The batch engine shared by the parallelized experiments
/// ([`Engine`] is `Copy`; reading the env twice is harmless).
fn engine() -> Engine {
    Engine::from_env()
}

/// EXP-T1 — the §4.3 decision table over the full catalog.
fn exp_t1() -> Value {
    println!("The §4.3 decision table, reproduced over every specification the paper names.\n");
    let mut t = Table::new([
        "specification",
        "|V|",
        "|E|",
        "cycles",
        "min-order",
        "classifier verdict",
        "paper claim",
        "agree",
    ]);
    let mut agree_all = true;
    let mut rows = Vec::new();
    // Each catalog entry's analysis (cycle enumeration, min-order BFS) is
    // independent — a natural batch for the engine.
    let analyzed = engine().par_map(catalog::all(), |entry| {
        let report = Spec::from_predicate(entry.predicate.clone())
            .named(entry.name)
            .analyze();
        let s = report.summary();
        let verdict = report.classification().protocol_class();
        (entry, s, verdict)
    });
    for (entry, s, verdict) in analyzed {
        let agree = verdict == entry.expected;
        agree_all &= agree;
        t.row([
            entry.name.to_owned(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.cycles.to_string(),
            s.min_order.map_or("-".into(), |o| o.to_string()),
            verdict.to_string(),
            entry.expected.to_string(),
            if agree { "yes".into() } else { "NO".into() },
        ]);
        rows.push(json!({
            "name": entry.name,
            "min_order": s.min_order,
            "verdict": verdict.to_string(),
            "paper": entry.expected.to_string(),
            "agree": agree,
        }));
    }
    println!("{}", t.render());
    println!(
        "agreement with the paper: {}",
        if agree_all { "FULL" } else { "PARTIAL" }
    );
    json!({ "rows": rows, "full_agreement": agree_all })
}

/// EXP-L3 — Lemma 3: predicate families vs limit sets, checked over
/// exhaustive small-run enumerations.
fn exp_l3() -> Value {
    println!("Lemma 3: B1 ⇔ B2 ⇔ B3 (causal forms) and the impossible patterns,");
    println!("checked over the exhaustive set of distinct user views of small executions.\n");
    let mut views = distinct_user_views(2, &[(0, 1), (0, 1)]);
    views.extend(distinct_user_views(3, &[(0, 1), (1, 2)]));
    views.extend(distinct_user_views(2, &[(0, 1), (1, 0)]));
    views.extend(distinct_user_views(3, &[(0, 1), (1, 2), (2, 0)]));
    views.extend(distinct_user_views(2, &[(0, 1), (0, 1), (1, 0)]));
    views.extend(distinct_user_views(3, &[(0, 1), (2, 1), (0, 2)]));
    let (b1, b2, b3) = (
        catalog::causal_b1(),
        catalog::causal(),
        catalog::causal_b3(),
    );
    // One predicate against a corpus of views: prepare each predicate
    // once (variable order, color filters) and batch the corpus.
    let (p1, p2, p3) = (
        eval::Prepared::new(&b1),
        eval::Prepared::new(&b2),
        eval::Prepared::new(&b3),
    );
    let verdicts = engine().par_map_ref(&views, |v| {
        (
            p1.holds(v),
            p2.holds(v),
            p3.holds(v),
            limit_sets::in_x_co(v),
        )
    });
    let mut equal = true;
    let mut co_match = true;
    for (r1, r2, r3, in_co) in verdicts {
        equal &= r1 == r2 && r2 == r3;
        co_match &= r2 != in_co;
    }
    let mut impossible_never_fire = true;
    for pred in [
        catalog::mutual_send(),
        catalog::lemma33_b(),
        catalog::mutual_deliver(),
    ] {
        let prep = eval::Prepared::new(&pred);
        impossible_never_fire &= engine()
            .par_map_ref(&views, |v| !prep.holds(v))
            .into_iter()
            .all(|ok| ok);
    }
    let mut t = Table::new(["claim", "runs checked", "holds"]);
    t.row([
        "B1 ⇔ B2 ⇔ B3 (Lemma 3.2)".to_owned(),
        views.len().to_string(),
        yn(equal),
    ]);
    t.row([
        "B2 defines X_co".to_owned(),
        views.len().to_string(),
        yn(co_match),
    ]);
    t.row([
        "Lemma 3.3 patterns never fire".to_owned(),
        (3 * views.len()).to_string(),
        yn(impossible_never_fire),
    ]);
    println!("{}", t.render());
    json!({ "views": views.len(), "b_forms_equal": equal,
            "b2_is_xco": co_match, "impossible_never_fire": impossible_never_fire })
}

/// EXP-F1 — Figure 1: the causal past of a run w.r.t. each process.
fn exp_f1() -> Value {
    println!("Figure 1: causal past of a 3-process run with respect to process 2 (and others).\n");
    // Reconstruct a figure-1-like run: P0 -> P1 (m0), P2 -> P0 (m1),
    // P1 -> P2 (m2), with P2 not yet influenced by m1.
    let mut b = SystemRunBuilder::new(3);
    let m0 = b.message(0, 1);
    let m1 = b.message(2, 0);
    let m2 = b.message(1, 2);
    b.invoke(m0).unwrap().send(m0).unwrap();
    b.receive(m0).unwrap().deliver(m0).unwrap();
    b.invoke(m2).unwrap().send(m2).unwrap();
    b.invoke(m1).unwrap().send(m1).unwrap();
    b.receive(m1).unwrap().deliver(m1).unwrap();
    b.receive(m2).unwrap().deliver(m2).unwrap();
    let run = b.build().unwrap();
    let mut t = Table::new([
        "process",
        "events in causal past",
        "of total",
        "own events kept",
    ]);
    let mut rows = Vec::new();
    for p in 0..3 {
        let past = run.causal_past(ProcessId(p));
        t.row([
            format!("P{p}"),
            past.event_count().to_string(),
            run.event_count().to_string(),
            format!(
                "{}/{}",
                past.sequence(ProcessId(p)).len(),
                run.sequence(ProcessId(p)).len()
            ),
        ]);
        rows.push(json!({ "process": p, "past_events": past.event_count() }));
    }
    println!("{}", t.render());
    println!("the causal past keeps exactly the events that happen-before some event of P_i;");
    println!("P2's past excludes m1's receive at P0 (concurrent), as in the figure.");
    json!({ "total_events": run.event_count(), "per_process": rows })
}

/// EXP-F2 — Figure 2: FIFO inhibition — r2 delayed until after r1.
fn exp_f2() -> Value {
    println!("Figure 2: the FIFO protocol inhibits a delivery until its predecessor lands.\n");
    // Force reordering: two messages on one channel, fixed workload, and
    // find a seed where arrival order inverts send order.
    let workload = Workload {
        sends: vec![
            msgorder_simnet::SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            msgorder_simnet::SendSpec {
                at: 5,
                src: 0,
                dst: 1,
                color: None,
            },
        ],
    };
    // Seeds are independent: scan them through the engine a chunk at a
    // time, keeping the original first-hit semantics (the lowest seed
    // with an inverted arrival wins, and later chunks never run).
    let engine = engine();
    let fifo_spec = catalog::fifo();
    let chunk = (engine.threads() * 4).max(4);
    let mut start = 0usize;
    while start < 200 {
        let end = (start + chunk).min(200);
        let hit = engine
            .par_map_range(start..end, |seed| {
                let r = Simulation::run_uniform(
                    SimConfig::new(2, LatencyModel::Uniform { lo: 1, hi: 500 }, seed as u64),
                    workload.clone(),
                    |_| ProtocolKind::Fifo.instantiate(2, 0),
                )
                .expect("no protocol bug");
                let (x, y) = (MessageId(0), MessageId(1));
                let arrived_inverted = r.run.happens_before(
                    SystemEvent::new(y, EventKind::Receive),
                    SystemEvent::new(x, EventKind::Receive),
                );
                if !arrived_inverted {
                    return None;
                }
                let delivered_in_order = r.run.happens_before(
                    SystemEvent::new(x, EventKind::Deliver),
                    SystemEvent::new(y, EventKind::Deliver),
                );
                let fifo_clean = eval::satisfies_spec(&fifo_spec, &r.run.users_view());
                Some((
                    seed,
                    r.stats.total_inhibition,
                    delivered_in_order,
                    fifo_clean,
                ))
            })
            .into_iter()
            .flatten()
            .next();
        if let Some((seed, inhibition, delivered_in_order, fifo_clean)) = hit {
            println!("seed {seed}: m1 arrived before m0, protocol delayed m1's delivery");
            println!("  inhibition total: {inhibition} ticks");
            println!("  deliveries in send order: {delivered_in_order}");
            println!("  user view FIFO-clean: {fifo_clean}");
            assert!(delivered_in_order);
            return json!({
                "seed": seed,
                "inhibition": inhibition,
                "delivered_in_order": delivered_in_order,
            });
        }
        start = end;
    }
    // No seed inverted the arrival order. Report a structured error
    // instead of aborting so the rest of the suite still runs.
    eprintln!("EXP-F2: no seed in 0..200 produced an inverted arrival — latency model too tame");
    json!({
        "error": "no seed produced an inverted arrival",
        "seeds_scanned": 200,
    })
}

/// EXP-F3 — Figure 3: control messages create knowledge of concurrent
/// events.
fn exp_f3() -> Value {
    println!("Figure 3: the sync protocol's control messages let processes coordinate");
    println!("events that look concurrent in the user's view.\n");
    let n = 3;
    let w = Workload::uniform_random(n, 8, 42);
    let r = Simulation::run_uniform(
        SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 300 }, 42),
        w,
        |node| ProtocolKind::Sync.instantiate(n, node),
    )
    .expect("no protocol bug");
    let user = r.run.users_view();
    let concurrent_pairs = {
        let mut c = 0;
        for a in 0..user.len() {
            for b in (a + 1)..user.len() {
                if user.concurrent(UserEvent::send(MessageId(a)), UserEvent::send(MessageId(b))) {
                    c += 1;
                }
            }
        }
        c
    };
    println!("control messages used : {}", r.stats.control_messages);
    println!("user view in X_sync   : {}", limit_sets::in_x_sync(&user));
    println!("concurrent send pairs : {concurrent_pairs} (concurrency in the user view is fine —");
    println!("                        the *message blocks* are what gets serialized)");
    json!({
        "control_messages": r.stats.control_messages,
        "in_x_sync": limit_sets::in_x_sync(&user),
        "concurrent_send_pairs": concurrent_pairs,
    })
}

/// EXP-F4 — Figure 4: system view vs user's view under FIFO.
fn exp_f4() -> Value {
    println!("Figure 4: s2 → r1 in the system view, but s2 ⋫ r1 in the user's view.\n");
    let mut b = SystemRunBuilder::new(2);
    let x = b.message(0, 1);
    let y = b.message(0, 1);
    b.invoke(x).unwrap().send(x).unwrap();
    b.invoke(y).unwrap().send(y).unwrap();
    b.receive(y).unwrap().receive(x).unwrap(); // y overtakes in transit
    b.deliver(x).unwrap().deliver(y).unwrap(); // FIFO delivery
    let run = b.build().unwrap();
    let sys_edge = run.happens_before(
        SystemEvent::new(y, EventKind::Send),
        SystemEvent::new(x, EventKind::Deliver),
    );
    let user = run.users_view();
    let user_edge = user.before(UserEvent::send(y), UserEvent::deliver(x));
    println!("system view  s2 → r1 : {sys_edge}");
    println!("user's view  s2 ▷ r1 : {user_edge}");
    assert!(sys_edge && !user_edge);
    json!({ "system_edge": sys_edge, "user_edge": user_edge })
}

/// EXP-F5 — Figure 5 / Theorem 1: constructing a system run from a user
/// view, with the numbering N for sync runs.
fn exp_f5() -> Value {
    println!("Figure 5: inserting s*/r* immediately before s/r reconstructs a system run;");
    println!("for sync runs the blocks yield the vertical-arrow numbering N (Theorem 1.1).\n");
    let engine = engine();
    let total = 50usize;
    let roundtrips = engine
        .par_map_range(0..total, |seed| {
            let user = random_user_run(GenParams::new(3, 6, seed as u64));
            construct::roundtrips_exactly(&user)
        })
        .into_iter()
        .filter(|&ok| ok)
        .count();
    let sync_total = 50usize;
    let gn_ok = engine
        .par_map_range(0..sync_total, |seed| {
            let user = msgorder_runs::generator::random_sync_run(GenParams::new(3, 6, seed as u64));
            construct::gn_system_from_sync_user(&user).is_some_and(|sys| limit_sets::in_x_gn(&sys))
        })
        .into_iter()
        .filter(|&ok| ok)
        .count();
    println!("execution-derived user views that round-trip exactly : {roundtrips}/{total}");
    println!("sync runs realized inside X_gn (vertical arrows)     : {gn_ok}/{sync_total}");
    assert_eq!(roundtrips, total);
    assert_eq!(gn_ok, sync_total);
    json!({ "roundtrips": roundtrips, "gn_realized": gn_ok })
}

/// EXP-F7 — Figure 7 / Lemma 2: the prefix-series construction with the
/// singleton pending set, executable.
fn exp_f7() -> Value {
    println!("Figure 7 (appendix): every X_gn run decomposes into a prefix series that");
    println!("adds one event at a time while |R ∪ C| ≤ 1 — so a live protocol is forced");
    println!("to admit it (Lemma 2.1).\n");
    use msgorder_runs::lemma2;
    let total = 40usize;
    let ok = engine()
        .par_map_range(0..total, |seed| {
            let user = msgorder_runs::generator::random_sync_run(GenParams::new(3, 6, seed as u64));
            let sys =
                construct::gn_system_from_sync_user(&user).expect("sync run realizes in X_gn");
            let series = lemma2::gn_prefix_series(&sys).expect("X_gn run has a series");
            series.pending_always_singleton()
        })
        .into_iter()
        .filter(|&ok| ok)
        .count();
    println!("X_gn runs with a singleton-pending prefix series : {ok}/{total}");
    // and one concrete series rendered:
    let mut b = msgorder_runs::SystemRunBuilder::new(2);
    let m0 = b.message(0, 1);
    let m1 = b.message(1, 0);
    b.transmit(m0).unwrap();
    b.transmit(m1).unwrap();
    let series = lemma2::gn_prefix_series(&b.build().unwrap()).unwrap();
    println!("\nexample series (2 messages): pending sizes after each prefix:");
    println!("  {:?}", series.pending_sizes);
    assert_eq!(ok, total);
    json!({ "checked": total, "singleton": ok })
}

/// EXP-E1 — Examples 1-3 of §4.2: the worked predicate graph, its
/// cycles, the β vertex, and the Lemma 4 contraction.
fn exp_e1() -> Value {
    let pred = catalog::example_4_2();
    println!("Example 1 predicate:\n  {pred}\n");
    let g = PredicateGraph::of(&pred);
    print!("{g}");
    let cycles = enumerate_cycles(&g, 64);
    println!("\ncycles:");
    for c in &cycles {
        println!("  {}", c.render(&g));
    }
    let four = cycles
        .iter()
        .find(|c| c.len() == 4)
        .expect("the paper's cycle");
    let trace = reduce_cycle(&g, four);
    println!("\nLemma 4 contraction of the 4-cycle:");
    for s in &trace.steps {
        println!(
            "  contract x{}:  {}  ∧  {}  ⇒  {}",
            s.removed.0 + 1,
            s.incoming,
            s.outgoing,
            s.composed
        );
    }
    let weaker = trace.final_predicate(&pred);
    println!("reduced predicate B': {weaker}");
    let verdict = classify(&pred).classification.to_string();
    println!("\nverdict: {verdict} (β vertex x4, order 1 — matches Example 3)");
    json!({
        "cycles": cycles.len(),
        "orders": cycles.iter().map(|c| c.order()).collect::<Vec<_>>(),
        "reduction_steps": trace.steps.len(),
        "verdict": verdict,
    })
}

/// EXP-T2 — Theorem 2: acyclic ⇒ unimplementable, with the sync witness.
fn exp_t2() -> Value {
    let pred = catalog::receive_second_before_first();
    println!("Theorem 2 on \"{pred}\":\n");
    let report = classify(&pred);
    println!("{}", report.render());
    let ws = separation_witnesses(&pred);
    let w = &ws[0];
    verify_witness(&pred, w).unwrap();
    println!(
        "witness (in X_sync, violates the spec):\n{}",
        w.run.render()
    );
    json!({
        "implementable": report.classification.is_implementable(),
        "witness_in_x_sync": limit_sets::in_x_sync(&w.run),
    })
}

/// EXP-T4 — Theorem 4: the separation witnesses for every class, plus
/// their realization as concrete executions (aux carrier messages).
fn exp_t4() -> Value {
    println!("Theorem 4: separation witnesses for the whole catalog, re-verified and");
    println!("realized as concrete executions (cross-process order enforced by aux");
    println!("carrier messages; the violation must survive realization).\n");
    let mut t = Table::new([
        "specification",
        "witness kind",
        "verified",
        "aux msgs",
        "still violates",
    ]);
    let mut rows = Vec::new();
    for entry in catalog::all() {
        let ws = separation_witnesses(&entry.predicate);
        if ws.is_empty() {
            t.row([
                entry.name.to_owned(),
                "(none needed)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        for w in &ws {
            let ok = verify_witness(&entry.predicate, w).is_ok();
            let kind = match w.kind {
                WitnessKind::SyncViolation => "X_sync ∌ spec",
                WitnessKind::CausalViolation => "X_co ∌ spec",
                WitnessKind::AsyncViolation => "X_async ∌ spec",
            };
            let realized = msgorder_runs::realize::realize(&w.run).expect("witness realizes");
            let still = eval::holds(&entry.predicate, &realized.original_view());
            t.row([
                entry.name.to_owned(),
                kind.to_owned(),
                yn(ok),
                realized.aux_count.to_string(),
                yn(still),
            ]);
            rows.push(json!({
                "name": entry.name, "kind": kind, "ok": ok,
                "aux": realized.aux_count, "still_violates": still,
            }));
        }
    }
    println!("{}", t.render());
    json!({ "witnesses": rows })
}

/// EXP-D1 — the §6 discussion catalog: handoff needs control messages,
/// inverted delivery is impossible, the rest are tag-only.
fn exp_d1() -> Value {
    println!("§6 discussion examples.\n");
    let mut t = Table::new(["spec", "paper's conclusion", "classifier"]);
    let cases = [
        ("handoff", "requires additional control messages"),
        ("receive-second-before-first", "not implementable"),
        ("fifo", "merely tagging"),
        ("k-weaker-1", "merely tagging"),
        ("local-forward-flush", "merely tagging"),
        ("global-forward-flush", "merely tagging"),
    ];
    let mut rows = Vec::new();
    for (name, claim) in cases {
        let entry = catalog::by_name(name).unwrap();
        let got = classify(&entry.predicate).classification.to_string();
        t.row([name.to_owned(), claim.to_owned(), got.clone()]);
        rows.push(json!({ "name": name, "claim": claim, "got": got }));
    }
    println!("{}", t.render());
    json!({ "rows": rows })
}

/// EXP-P1 — the protocol overhead comparison (the paper's qualitative
/// cost claims, measured).
fn exp_p1() -> Value {
    println!("Protocol cost comparison over a shared adversarial workload, 10-seed mean.\n");
    let n = 4;
    let msgs = 30;
    let seeds = 10u64;
    let mut t = Table::new([
        "protocol",
        "ctl/msg",
        "tag B/msg",
        "inhibit",
        "latency",
        "FIFO ok",
        "CO ok",
        "SYNC ok",
    ]);
    let fifo = catalog::fifo();
    let mut rows = Vec::new();
    let mut kinds = ProtocolKind::fixed();
    kinds.push(ProtocolKind::Synthesized(catalog::causal()));
    for kind in kinds {
        let mut agg = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let (mut fifo_ok, mut co_ok, mut sync_ok) = (0u32, 0u32, 0u32);
        for seed in 0..seeds {
            let w = Workload::uniform_random(n, msgs, seed);
            let r = Simulation::run_uniform(
                SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 900 }, seed),
                w,
                |node| kind.instantiate(n, node),
            )
            .expect("no protocol bug");
            assert!(
                r.completed && r.run.is_quiescent(),
                "{} stalled",
                kind.name()
            );
            let user = r.run.users_view();
            agg.0 += r.stats.control_per_user();
            agg.1 += r.stats.tag_bytes_per_user();
            agg.2 += r.stats.mean_inhibition();
            agg.3 += r.stats.mean_latency();
            fifo_ok += u32::from(eval::satisfies_spec(&fifo, &user));
            co_ok += u32::from(limit_sets::in_x_co(&user));
            sync_ok += u32::from(limit_sets::in_x_sync(&user));
        }
        let s = seeds as f64;
        t.row([
            kind.name().to_owned(),
            f2(agg.0 / s),
            f1(agg.1 / s),
            f1(agg.2 / s),
            f1(agg.3 / s),
            format!("{fifo_ok}/{seeds}"),
            format!("{co_ok}/{seeds}"),
            format!("{sync_ok}/{seeds}"),
        ]);
        rows.push(json!({
            "protocol": kind.name(),
            "control_per_user": agg.0 / s,
            "tag_bytes_per_user": agg.1 / s,
            "mean_inhibition": agg.2 / s,
            "mean_latency": agg.3 / s,
            "fifo_ok": fifo_ok, "co_ok": co_ok, "sync_ok": sync_ok,
        }));
    }
    println!("{}", t.render());
    println!("shape checks: async costs nothing and guarantees nothing; the tagged");
    println!("protocols never use control messages; only sync passes SYNC on all seeds,");
    println!("paying ~3 control messages per user message and serialization latency.");
    json!({ "rows": rows })
}

/// EXP-P2 — the synthesized tagged protocol across tagged-class specs.
fn exp_p2() -> Value {
    println!("Synthesized tagged protocols (companion-paper direction): derive the");
    println!("protocol from the predicate, run it, verify safety + liveness.\n");
    let n = 3;
    let seeds = 6u64;
    let mut t = Table::new(["spec", "live", "safe", "ctl msgs", "tag B/msg"]);
    let mut rows = Vec::new();
    for name in ["causal", "fifo", "k-weaker-1", "global-forward-flush"] {
        let entry = catalog::by_name(name).unwrap();
        let (mut live, mut safe) = (0u32, 0u32);
        let mut ctl = 0usize;
        let mut tagb = 0.0;
        for seed in 0..seeds {
            let w = match name {
                "global-forward-flush" => Workload::with_markers(n, 12, 4, "red", seed),
                _ => Workload::uniform_random(n, 12, seed),
            };
            let out = msgorder_protocols::run_and_verify(
                SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 600 }, seed),
                w,
                |_| ProtocolKind::Synthesized(entry.predicate.clone()).instantiate(n, 0),
                &entry.predicate,
            );
            live += u32::from(out.live);
            safe += u32::from(out.safe);
            ctl += out.stats.control_messages;
            tagb += out.stats.tag_bytes_per_user();
        }
        t.row([
            name.to_owned(),
            format!("{live}/{seeds}"),
            format!("{safe}/{seeds}"),
            ctl.to_string(),
            f1(tagb / seeds as f64),
        ]);
        rows.push(json!({ "name": name, "live": live, "safe": safe, "control": ctl }));
    }
    println!("{}", t.render());
    json!({ "rows": rows })
}

/// EXP-P3 — ablation: per-message vs batched lock windows for the
/// logically synchronous protocol.
fn exp_p3() -> Value {
    println!("Ablation: lock-granting policy of the sync protocol. Batched windows");
    println!("amortize REQ/GRANT/RELEASE over a sender's burst (k + 3 vs 3k control");
    println!("messages) while keeping logical synchrony.\n");
    let n = 4;
    let seeds = 10u64;
    let mut t = Table::new(["workload", "policy", "ctl/msg", "latency", "SYNC ok"]);
    let mut rows = Vec::new();
    for (wname, mk) in [
        (
            "uniform",
            Box::new(|seed| Workload::uniform_random(4, 24, seed)) as Box<dyn Fn(u64) -> Workload>,
        ),
        (
            "bursty client-server",
            Box::new(|seed| Workload::client_server(4, 3, 8, seed)),
        ),
    ] {
        for kind in [ProtocolKind::Sync, ProtocolKind::SyncBatched] {
            let mut ctl = 0.0;
            let mut lat = 0.0;
            let mut sync_ok = 0u32;
            for seed in 0..seeds {
                let r = Simulation::run_uniform(
                    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 600 }, seed),
                    mk(seed),
                    |node| kind.instantiate(n, node),
                )
                .expect("no protocol bug");
                assert!(r.completed && r.run.is_quiescent());
                ctl += r.stats.control_per_user();
                lat += r.stats.mean_latency();
                sync_ok += u32::from(limit_sets::in_x_sync(&r.run.users_view()));
            }
            let s = seeds as f64;
            t.row([
                wname.to_owned(),
                kind.name().to_owned(),
                f2(ctl / s),
                f1(lat / s),
                format!("{sync_ok}/{seeds}"),
            ]);
            rows.push(json!({
                "workload": wname, "policy": kind.name(),
                "control_per_user": ctl / s, "latency": lat / s, "sync_ok": sync_ok,
            }));
        }
    }
    println!("{}", t.render());
    println!("batching only pays off when senders actually burst: under bursty");
    println!("traffic the control ratio drops toward 1, with no loss of synchrony.");
    json!({ "rows": rows })
}

/// EXP-P4 — tag-size scaling: RST's n² matrices vs SES's sparse
/// constraint sets as the system grows (the crossover figure).
fn exp_p4() -> Value {
    println!("Tag bytes per message: RST (n × n matrix) vs SES (vector + sparse");
    println!("constraints), sweeping the process count at a fixed message budget.\n");
    let seeds = 6u64;
    let mut t = Table::new(["processes", "rst B/msg", "ses B/msg", "ses/rst"]);
    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 8, 12, 16] {
        let mut rst_b = 0.0;
        let mut ses_b = 0.0;
        for seed in 0..seeds {
            let w = Workload::uniform_random(n, 40, seed);
            let cfg = SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 400 }, seed);
            let rst = Simulation::run_uniform(cfg.clone(), w.clone(), |node| {
                ProtocolKind::CausalRst.instantiate(n, node)
            })
            .expect("no protocol bug");
            let ses = Simulation::run_uniform(cfg, w, |node| {
                ProtocolKind::CausalSes.instantiate(n, node)
            })
            .expect("no protocol bug");
            assert!(rst.run.is_quiescent() && ses.run.is_quiescent());
            rst_b += rst.stats.tag_bytes_per_user();
            ses_b += ses.stats.tag_bytes_per_user();
        }
        let s = seeds as f64;
        t.row([
            n.to_string(),
            f1(rst_b / s),
            f1(ses_b / s),
            f2((ses_b / s) / (rst_b / s)),
        ]);
        rows.push(json!({ "processes": n, "rst": rst_b / s, "ses": ses_b / s }));
    }
    println!("{}", t.render());
    println!("RST grows quadratically with n; SES grows with actual communication,");
    println!("so the ratio falls below 1 as the system outgrows the traffic — the");
    println!("crossover that motivated SES.");
    json!({ "rows": rows })
}

/// EXP-P5 — latency-spread sensitivity: how much inhibition the tagged
/// protocols pay as channel reordering grows.
fn exp_p5() -> Value {
    println!("Inhibition (mean delay the protocol imposes between receive and");
    println!("delivery) as the latency spread — and with it the reorder rate — grows.\n");
    let n = 4;
    let seeds = 8u64;
    let mut t = Table::new(["latency hi", "async", "fifo", "causal-rst", "reorder pairs"]);
    let mut rows = Vec::new();
    for hi in [10u64, 100, 400, 1600] {
        let mut cells = [0.0f64; 3];
        let mut reorders = 0u32;
        for seed in 0..seeds {
            let w = Workload::uniform_random(n, 25, seed);
            for (i, kind) in [
                ProtocolKind::Async,
                ProtocolKind::Fifo,
                ProtocolKind::CausalRst,
            ]
            .iter()
            .enumerate()
            {
                let r = Simulation::run_uniform(
                    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi }, seed),
                    w.clone(),
                    |node| kind.instantiate(n, node),
                )
                .expect("no protocol bug");
                assert!(r.run.is_quiescent());
                cells[i] += r.stats.mean_inhibition();
                if i == 0 && !limit_sets::in_x_co(&r.run.users_view()) {
                    reorders += 1;
                }
            }
        }
        let s = seeds as f64;
        t.row([
            hi.to_string(),
            f1(cells[0] / s),
            f1(cells[1] / s),
            f1(cells[2] / s),
            format!("{reorders}/{seeds} seeds w/ CO break"),
        ]);
        rows.push(json!({ "hi": hi, "async": cells[0]/s, "fifo": cells[1]/s, "rst": cells[2]/s }));
    }
    println!("{}", t.render());
    println!("async never inhibits at any spread (and pays in violations);");
    println!("tagged inhibition tracks the reordering the channel actually produces.");
    json!({ "rows": rows })
}

/// EXP-P6 — sync-protocol contention scaling: serialization latency
/// grows with total load, the price of the control-message class.
fn exp_p6() -> Value {
    println!("Logical synchrony under load: mean end-to-end latency as message count");
    println!("grows (fixed 4 processes). The global lock serializes transmissions, so");
    println!("latency grows linearly with queue depth — tagged protocols stay flat.\n");
    let n = 4;
    let seeds = 6u64;
    let mut t = Table::new(["messages", "sync latency", "sync-batched", "causal-rst"]);
    let mut rows = Vec::new();
    for msgs in [10usize, 20, 40, 80] {
        let mut lat = [0.0f64; 3];
        for seed in 0..seeds {
            let w = Workload::uniform_random(n, msgs, seed);
            for (i, kind) in [
                ProtocolKind::Sync,
                ProtocolKind::SyncBatched,
                ProtocolKind::CausalRst,
            ]
            .iter()
            .enumerate()
            {
                let r = Simulation::run_uniform(
                    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 300 }, seed),
                    w.clone(),
                    |node| kind.instantiate(n, node),
                )
                .expect("no protocol bug");
                assert!(r.completed && r.run.is_quiescent());
                lat[i] += r.stats.mean_latency();
            }
        }
        let s = seeds as f64;
        t.row([
            msgs.to_string(),
            f1(lat[0] / s),
            f1(lat[1] / s),
            f1(lat[2] / s),
        ]);
        rows.push(
            json!({ "messages": msgs, "sync": lat[0]/s, "batched": lat[1]/s, "rst": lat[2]/s }),
        );
    }
    println!("{}", t.render());
    json!({ "rows": rows })
}

/// EXP-S1 — limit-set population counts: how much of the run space each
/// limit set covers, vs run size.
fn exp_s1() -> Value {
    println!("Limit-set population: fraction of random executions in X_co / X_sync");
    println!("as the number of messages grows (X_async is always 100%).\n");
    let mut t = Table::new(["messages", "runs", "in X_co", "in X_sync"]);
    let mut rows = Vec::new();
    let engine = engine();
    for msgs in [2usize, 4, 6, 8, 10, 14] {
        let total = 300;
        let (mut co, mut sync) = (0u32, 0u32);
        for (in_co, in_sync) in engine.par_map_range(0..total, |seed| {
            let run = random_user_run(GenParams::new(3, msgs, seed as u64));
            (limit_sets::in_x_co(&run), limit_sets::in_x_sync(&run))
        }) {
            co += u32::from(in_co);
            sync += u32::from(in_sync);
        }
        t.row([
            msgs.to_string(),
            total.to_string(),
            format!("{:.0}%", 100.0 * co as f64 / total as f64),
            format!("{:.0}%", 100.0 * sync as f64 / total as f64),
        ]);
        rows.push(json!({ "messages": msgs, "co_pct": co, "sync_pct": sync, "total": total }));
    }
    println!("{}", t.render());
    println!("the chain X_sync ⊆ X_co ⊆ X_async shows up as monotone columns; both");
    println!("shrink quickly with scale — ordering guarantees are rare by accident.");
    json!({ "rows": rows })
}

/// EXP-M1 — exhaustive model checking of small configurations: protocol
/// guarantees verified over *every* schedule, and the weaker protocol's
/// counterexample schedule exhibited.
fn exp_m1() -> Value {
    use msgorder_protocols::{AsyncProtocol, CausalRst, FifoProtocol, SyncProtocol};
    use msgorder_simnet::{explore_parallel, SendSpec};
    use std::sync::atomic::{AtomicBool, Ordering};
    println!("Exhaustive exploration (all frame orderings) of small configurations.\n");
    let threads = engine().threads();
    let same3 = Workload {
        sends: (0..3)
            .map(|i| SendSpec {
                at: i,
                src: 0,
                dst: 1,
                color: None,
            })
            .collect(),
    };
    let triangle = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 2,
                color: None,
            },
            SendSpec {
                at: 1,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 2,
                src: 1,
                dst: 2,
                color: None,
            },
        ],
    };
    let crossing = Workload {
        sends: vec![
            SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            SendSpec {
                at: 0,
                src: 1,
                dst: 0,
                color: None,
            },
        ],
    };
    let mut t = Table::new([
        "configuration",
        "protocol",
        "schedules",
        "property",
        "holds on all",
    ]);
    let mut rows = Vec::new();
    let fifo_spec = catalog::fifo();

    let check = |cfg: &str,
                 proto: &str,
                 schedules: usize,
                 property: &str,
                 ok: bool,
                 t: &mut Table,
                 rows: &mut Vec<Value>| {
        t.row([
            cfg.to_owned(),
            proto.to_owned(),
            schedules.to_string(),
            property.to_owned(),
            yn(ok),
        ]);
        rows.push(
            json!({ "config": cfg, "protocol": proto, "schedules": schedules,
                          "property": property, "holds": ok }),
        );
    };

    // The explorer fans its top-level branches across worker threads;
    // the visitors fold into atomics since they run concurrently.
    let mut all_ok = true;
    {
        let ok = AtomicBool::new(true);
        let prep = eval::Prepared::new(&fifo_spec);
        let e = explore_parallel(
            2,
            same3.clone(),
            |_| FifoProtocol::new(),
            threads,
            1 << 20,
            |run| {
                if !(run.is_quiescent() && prep.satisfies_spec(&run.users_view())) {
                    ok.store(false, Ordering::Relaxed);
                }
                true
            },
        );
        let ok = ok.into_inner();
        check(
            "3 msgs, one channel",
            "fifo",
            e.schedules,
            "FIFO + live",
            ok,
            &mut t,
            &mut rows,
        );
        all_ok &= ok && !e.truncated;
    }
    {
        let violated = AtomicBool::new(false);
        let prep = eval::Prepared::new(&fifo_spec);
        let e = explore_parallel(
            2,
            same3,
            |_| AsyncProtocol::new(),
            threads,
            1 << 20,
            |run| {
                if !prep.satisfies_spec(&run.users_view()) {
                    violated.store(true, Ordering::Relaxed);
                }
                true
            },
        );
        let violated = violated.into_inner();
        check(
            "3 msgs, one channel",
            "async",
            e.schedules,
            "∃ FIFO break",
            violated,
            &mut t,
            &mut rows,
        );
        all_ok &= violated;
    }
    {
        let ok = AtomicBool::new(true);
        let e = explore_parallel(
            3,
            triangle.clone(),
            |_| CausalRst::new(3),
            threads,
            1 << 20,
            |run| {
                if !(run.is_quiescent() && limit_sets::in_x_co(&run.users_view())) {
                    ok.store(false, Ordering::Relaxed);
                }
                true
            },
        );
        let ok = ok.into_inner();
        check(
            "causal triangle",
            "causal-rst",
            e.schedules,
            "CO + live",
            ok,
            &mut t,
            &mut rows,
        );
        all_ok &= ok && !e.truncated;
    }
    {
        let violated = AtomicBool::new(false);
        let e = explore_parallel(
            3,
            triangle,
            |_| AsyncProtocol::new(),
            threads,
            1 << 20,
            |run| {
                if !limit_sets::in_x_co(&run.users_view()) {
                    violated.store(true, Ordering::Relaxed);
                }
                true
            },
        );
        let violated = violated.into_inner();
        check(
            "causal triangle",
            "async",
            e.schedules,
            "∃ CO break",
            violated,
            &mut t,
            &mut rows,
        );
        all_ok &= violated;
    }
    {
        let ok = AtomicBool::new(true);
        let e = explore_parallel(
            2,
            crossing,
            |_| SyncProtocol::new(),
            threads,
            1 << 20,
            |run| {
                if !(run.is_quiescent() && limit_sets::in_x_sync(&run.users_view())) {
                    ok.store(false, Ordering::Relaxed);
                }
                true
            },
        );
        let ok = ok.into_inner();
        check(
            "crossing pair",
            "sync",
            e.schedules,
            "SYNC + live",
            ok,
            &mut t,
            &mut rows,
        );
        all_ok &= ok && !e.truncated;
    }
    println!("{}", t.render());
    println!("unlike the seeded experiments, these cover every schedule of the");
    println!("configuration — counterexamples for the weak protocols are certain,");
    println!("and the strong protocols' guarantees are exhaustively verified.");
    assert!(all_ok);
    json!({ "rows": rows })
}

/// EXP-N1 — fault sweep: delivery and overhead under message loss, with
/// and without the ack/retransmission layer.
fn exp_n1() -> Value {
    println!("Faulty channels: per-frame drop probability vs delivery, for bare");
    println!("protocols and the same protocols under the ack/retransmission layer.");
    println!("Retransmission restores the paper's reliable-channel assumption: the");
    println!("ordering guarantee and liveness both survive a lossy wire.\n");
    let n = 3;
    let msgs = 20usize;
    let seeds = 6u64;
    let engine = engine();
    let fifo_pred = catalog::fifo();
    let fifo_spec = eval::Prepared::new(&fifo_pred);
    let variants: Vec<(&str, ProtocolKind, bool)> = vec![
        ("async", ProtocolKind::Async, false),
        ("fifo", ProtocolKind::Fifo, false),
        ("fifo+retx", ProtocolKind::Fifo, true),
        ("causal-rst+retx", ProtocolKind::CausalRst, true),
    ];
    let mut t = Table::new([
        "drop",
        "protocol",
        "delivered",
        "retransmits",
        "dropped",
        "live",
        "ordering ok",
    ]);
    let mut rows = Vec::new();
    for drop in [0.0f64, 0.05, 0.1, 0.2, 0.3] {
        for (name, kind, reliable) in &variants {
            // Seeds are independent simulations: a natural engine batch.
            let per_seed = engine.par_map_range(0..seeds as usize, |seed| {
                let seed = seed as u64;
                let w = Workload::uniform_random(n, msgs, seed);
                let config = SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed)
                    .with_faults(msgorder_simnet::FaultModel::none().with_drop(drop).unwrap());
                let r = Simulation::run_uniform(config, w, |node| {
                    kind.instantiate_with(n, node, *reliable)
                })
                .expect("no protocol bug");
                let ordering_ok = match kind {
                    ProtocolKind::Async => true,
                    ProtocolKind::Fifo => fifo_spec.satisfies_spec(&r.run.users_view()),
                    _ => limit_sets::in_x_co(&r.run.users_view()),
                };
                (
                    r.stats.delivered,
                    r.stats.retransmitted_frames,
                    r.stats.dropped_frames,
                    r.completed && r.run.is_quiescent(),
                    ordering_ok,
                )
            });
            let total = (seeds as usize * msgs) as f64;
            let delivered: usize = per_seed.iter().map(|x| x.0).sum();
            let retx: usize = per_seed.iter().map(|x| x.1).sum();
            let dropped: usize = per_seed.iter().map(|x| x.2).sum();
            let live = per_seed.iter().filter(|x| x.3).count();
            let ok = per_seed.iter().filter(|x| x.4).count();
            t.row([
                format!("{drop:.2}"),
                (*name).to_owned(),
                format!("{:.0}%", 100.0 * delivered as f64 / total),
                retx.to_string(),
                dropped.to_string(),
                format!("{live}/{seeds}"),
                format!("{ok}/{seeds}"),
            ]);
            rows.push(json!({
                "drop": drop,
                "protocol": name,
                "delivered_frac": delivered as f64 / total,
                "retransmits": retx,
                "dropped": dropped,
                "live": live,
                "ordering_ok": ok,
            }));
            // The acceptance bar: retransmission keeps lossy runs whole.
            if *reliable && drop <= 0.3 {
                assert_eq!(
                    delivered,
                    seeds as usize * msgs,
                    "{name} must deliver everything at drop={drop}"
                );
                assert_eq!(live, seeds as usize, "{name} must stay live at drop={drop}");
            }
        }
    }
    println!("{}", t.render());
    println!("bare protocols lose messages and liveness as soon as the wire drops;");
    println!("the retransmission layer pays in duplicate frames but delivers 100%.");
    json!({ "rows": rows })
}

/// EXP-O1 — online monitoring: how early the streaming monitor detects
/// a violation, and how much live state the pipeline holds.
fn exp_o1() -> Value {
    println!("The streaming pipeline decides safety while the run executes: at each");
    println!("delivery the monitor's delta search either reports a witness or extends");
    println!("its candidate lists. Detection latency is the fraction of the run's");
    println!("events executed before the verdict; live state is the monitor's");
    println!("candidate entries plus the causality index's clock words.\n");
    let n = 3;
    let seeds = 12u64;
    let spec = catalog::fifo();
    let mut t = Table::new([
        "msgs",
        "violated",
        "detect @ event",
        "of total",
        "latency",
        "monitor state",
        "clock words",
    ]);
    let mut rows = Vec::new();
    for msgs in [20usize, 40, 80] {
        let total_events = 4 * msgs;
        let mut violated = 0usize;
        let mut detect_events = Vec::new();
        let mut peak_state = 0usize;
        let mut peak_clock_words = 0usize;
        for seed in 0..seeds {
            let w = Workload::uniform_random(n, msgs, seed);
            let config = SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed);
            let mut mon = msgorder_protocols::OnlineMonitor::halting(&spec);
            let r = Simulation::new(config, w.clone(), |_| {
                msgorder_protocols::AsyncProtocol::new()
            })
            .run_streaming(&mut mon)
            .expect("async has no protocol bugs");
            peak_state = peak_state.max(mon.live_state());
            peak_clock_words = peak_clock_words.max(r.run.clock_words());
            // Ground truth: the post-hoc verdict on the same seed's
            // drained run must agree with the online one.
            let full = Simulation::run_uniform(
                SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed),
                w,
                |_| msgorder_protocols::AsyncProtocol::new(),
            )
            .expect("async has no protocol bugs");
            let posthoc = eval::holds(&spec, &full.run.users_view());
            assert_eq!(mon.violated(), posthoc, "online and post-hoc must agree");
            if let Some(at) = mon.detection_event() {
                violated += 1;
                detect_events.push(at);
            }
        }
        let mean_detect = if detect_events.is_empty() {
            f64::NAN
        } else {
            detect_events.iter().sum::<usize>() as f64 / detect_events.len() as f64
        };
        let latency_frac = mean_detect / total_events as f64;
        t.row([
            msgs.to_string(),
            format!("{violated}/{seeds}"),
            format!("{mean_detect:.1}"),
            total_events.to_string(),
            format!("{:.0}%", 100.0 * latency_frac),
            peak_state.to_string(),
            peak_clock_words.to_string(),
        ]);
        rows.push(json!({
            "msgs": msgs,
            "violated": violated,
            "seeds": seeds,
            "mean_detection_event": mean_detect,
            "total_events": total_events,
            "detection_latency_frac": latency_frac,
            "peak_monitor_state": peak_state,
            "peak_clock_words": peak_clock_words,
        }));
    }
    println!("{}", t.render());
    println!("detection fires well before the drain on violating runs, and the live");
    println!("state stays linear in the completed-message count (arity x messages");
    println!("candidates + one clock per stamped user event).");
    json!({ "rows": rows })
}

/// EXP-TR1 — tracing and metrics overhead on the EXP-O1 workload: the
/// kernel wall time of plain streaming runs vs the same runs with the
/// trace recorder (wire journal + event buffering), recorder + JSONL
/// serialization, and the metrics collector riding along. The
/// acceptance bar for the tracing layer is recorder overhead under 10%
/// of kernel wall time.
fn exp_tr1() -> Value {
    println!("The trace recorder taps the kernel's observer hook; wire records are");
    println!("journaled only when an observer opts in, so a plain streaming run pays");
    println!("nothing. This measures what opting in costs, on EXP-O1's workload grid");
    println!("(n=3, seeds 0..12, 20/40/80 messages, async protocol).\n");
    let n = 3;
    let seeds = 12u64;
    let reps = 5;
    let grid: Vec<(usize, u64)> = [20usize, 40, 80]
        .iter()
        .flat_map(|&m| (0..seeds).map(move |s| (m, s)))
        .collect();
    let config = |seed| SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed);

    // Each variant runs the identical grid; reported time is the best of
    // `reps` sweeps (minimum filters scheduler noise).
    let time_sweep = |run_one: &dyn Fn(usize, u64)| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let started = std::time::Instant::now();
            for &(msgs, seed) in &grid {
                run_one(msgs, seed);
            }
            best = best.min(started.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    struct Noop;
    impl msgorder_simnet::RunObserver for Noop {
        fn on_event(
            &mut self,
            _view: &msgorder_runs::StreamingRun,
            _ev: SystemEvent,
            _index: usize,
            _time: u64,
        ) -> bool {
            true
        }
    }

    let baseline = time_sweep(&|msgs, seed| {
        let w = Workload::uniform_random(n, msgs, seed);
        let mut obs = Noop;
        Simulation::new(config(seed), w, |_| {
            msgorder_protocols::AsyncProtocol::new()
        })
        .run_streaming(&mut obs)
        .expect("async has no protocol bugs");
    });

    // The in-run recording overhead: same kernel run, with the recorder
    // journaling wire records and buffering the event stream. This is
    // the number the < 10% acceptance bar governs — everything below the
    // kernel runs identically, only the observer differs.
    let recorder_hook = time_sweep(&|msgs, seed| {
        let w = Workload::uniform_random(n, msgs, seed);
        let mut obs = msgorder_trace::Recorder::with_capacity(msgs * 8);
        Simulation::new(config(seed), w, |_| {
            msgorder_protocols::AsyncProtocol::new()
        })
        .run_streaming(&mut obs)
        .expect("async has no protocol bugs");
        assert!(!obs.events.is_empty());
    });

    let setup = |msgs: usize, seed: u64| msgorder_trace::Setup {
        processes: n,
        latency: LatencyModel::Uniform { lo: 1, hi: 500 },
        seed,
        faults: msgorder_simnet::FaultModel::none(),
        workload: Workload::uniform_random(n, msgs, seed),
        protocol: "async".to_owned(),
        reliable: false,
        spec: None,
        step_limit: 1_000_000,
    };

    let recorded = time_sweep(&|msgs, seed| {
        let r = msgorder_trace::record(&setup(msgs, seed)).expect("records");
        assert!(r.outcome.is_ok());
    });

    let recorded_jsonl = time_sweep(&|msgs, seed| {
        let r = msgorder_trace::record(&setup(msgs, seed)).expect("records");
        assert!(!r.trace.to_jsonl().expect("serializes").is_empty());
    });

    let with_metrics = time_sweep(&|msgs, seed| {
        let w = Workload::uniform_random(n, msgs, seed);
        let mut obs = msgorder_trace::metrics::MetricsObserver::new();
        let r = Simulation::new(config(seed), w, |_| {
            msgorder_protocols::AsyncProtocol::new()
        })
        .run_streaming(&mut obs)
        .expect("async has no protocol bugs");
        let m = obs.finish(&r.stats);
        assert!(m.deliveries > 0);
    });

    let replayed = time_sweep(&|msgs, seed| {
        // Record once per call so the sweep stays self-contained; only
        // the replay half is the number of interest, but the comparison
        // to `recorded` isolates it.
        let r = msgorder_trace::record(&setup(msgs, seed)).expect("records");
        let report = msgorder_trace::replay(&r.trace).expect("replays");
        assert!(report.ok());
    });

    let pct = |t: f64| 100.0 * (t - baseline) / baseline;
    let mut t = Table::new(["pipeline", "wall ms", "vs baseline"]);
    t.row([
        "streaming run (no tracing)".to_owned(),
        format!("{baseline:.2}"),
        "—".to_owned(),
    ]);
    t.row([
        "+ recorder hook (in-run)".to_owned(),
        format!("{recorder_hook:.2}"),
        format!("{:+.1}%", pct(recorder_hook)),
    ]);
    t.row([
        "record() incl. trace assembly".to_owned(),
        format!("{recorded:.2}"),
        format!("{:+.1}%", pct(recorded)),
    ]);
    t.row([
        "+ recorder + JSONL encode".to_owned(),
        format!("{recorded_jsonl:.2}"),
        format!("{:+.1}%", pct(recorded_jsonl)),
    ]);
    t.row([
        "+ metrics collector".to_owned(),
        format!("{with_metrics:.2}"),
        format!("{:+.1}%", pct(with_metrics)),
    ]);
    t.row([
        "record + full replay check".to_owned(),
        format!("{replayed:.2}"),
        format!("{:+.1}%", pct(replayed)),
    ]);
    println!("{}", t.render());
    println!(
        "in-run recording overhead {:.1}% (bar: < 10%); fingerprint + trace",
        pct(recorder_hook)
    );
    println!("assembly and JSONL encoding happen after the kernel stops.");
    json!({
        "baseline_ms": baseline,
        "recorder_hook_ms": recorder_hook,
        "recorder_hook_overhead_pct": pct(recorder_hook),
        "recorder_ms": recorded,
        "recorder_jsonl_ms": recorded_jsonl,
        "metrics_ms": with_metrics,
        "record_replay_ms": replayed,
        "recorder_full_overhead_pct": pct(recorded),
        "bar_pct": 10.0,
    })
}

fn yn(b: bool) -> String {
    (if b { "yes" } else { "NO" }).to_owned()
}

//! Writes `BENCH_6.json` — a throughput snapshot of the schedule
//! explorer across its engine configurations:
//!
//! 1. **full search** — every interleaving, the pre-reduction baseline;
//! 2. **POR** — sleep-set partial-order reduction;
//! 3. **POR + dedup** — reduction plus the exact seen-set;
//! 4. **POR + 2 threads** — reduction over the sharded work-stealing
//!    frontier.
//!
//! Every row re-checks the FIFO spec on every terminal configuration
//! and records a commutative digest of the violating configurations, so
//! the file itself witnesses that all four engines find the *same*
//! violation set. A final bounded run demonstrates the compact
//! seen-set spilling past `max_states` while still completing.
//!
//! ```sh
//! cargo run --release -p msgorder-bench --bin snapshot_explore   # ./BENCH_6.json
//! cargo run --release -p msgorder-bench --bin snapshot_explore -- out.json
//! ```
//!
//! `SNAPSHOT_EXPLORE_BIG=0` skips the million-state bounded run (it is
//! the one long measurement, ~half a minute in release).

use msgorder_bench::snapshot::{
    cores, explore_row_json as row_json, timed_explore as run, write_report,
};
use msgorder_predicate::catalog;
use msgorder_protocols::AsyncProtocol;
use msgorder_simnet::{explore_parallel_with, DedupMode, ExploreOptions, Workload};
use serde_json::json;
use std::time::Instant;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_6.json".to_owned());
    let big = std::env::var("SNAPSHOT_EXPLORE_BIG").as_deref() != Ok("0");
    let cores = cores();
    println!(
        "[snapshot_explore: {cores} core(s), big run {}]",
        if big { "on" } else { "off" }
    );

    let procs = 3usize;
    let seed = 3u64;
    let spec = catalog::fifo();
    let mut sizes = Vec::new();
    for msgs in [4usize, 5, 6] {
        let w = Workload::uniform_random(procs, msgs, seed);
        let full = run(procs, &w, &spec, &ExploreOptions::default());
        let por = run(
            procs,
            &w,
            &spec,
            &ExploreOptions {
                por: true,
                ..ExploreOptions::default()
            },
        );
        let por_dedup = run(
            procs,
            &w,
            &spec,
            &ExploreOptions {
                por: true,
                dedup: DedupMode::Exact,
                ..ExploreOptions::default()
            },
        );
        let por_threads = run(
            procs,
            &w,
            &spec,
            &ExploreOptions {
                por: true,
                threads: 2,
                ..ExploreOptions::default()
            },
        );
        for (name, r) in [
            ("full", &full),
            ("por", &por),
            ("por+dedup", &por_dedup),
            ("por+threads2", &por_threads),
        ] {
            println!(
                "  msgs={msgs} {name:<12} {:>9} schedules in {:>8.3}s  digest {:#018x}",
                r.exploration.schedules, r.wall_s, r.digest
            );
            assert_eq!(
                (r.violating_configs, r.digest),
                (full.violating_configs, full.digest),
                "{name} at msgs={msgs} changed the violation set"
            );
        }
        sizes.push(json!({
            "workload": format!("{procs} processes, {msgs} messages, seed {seed}, async vs fifo"),
            "messages": msgs,
            "schedule_reduction_full_over_por":
                full.exploration.schedules as f64 / por.exploration.schedules as f64,
            "rows": vec![
                row_json("full", &full),
                row_json("por", &por),
                row_json("por+dedup", &por_dedup),
                row_json("por+threads2", &por_threads),
            ],
        }));
    }

    // The bounded seen-set demo: more distinct configurations than
    // `max_states`, spilled to disk, search still complete.
    let bounded = if big {
        let procs = 4usize;
        let msgs = 9usize;
        let dir =
            std::env::temp_dir().join(format!("msgorder-snapshot-spill-{}", std::process::id()));
        let w = Workload::uniform_random(procs, msgs, seed);
        let start = Instant::now();
        let e = explore_parallel_with(
            procs,
            w,
            |_| AsyncProtocol::new(),
            &ExploreOptions {
                dedup: DedupMode::Compact {
                    max_states: 400_000,
                    spill: Some(dir.clone()),
                },
                ..ExploreOptions::default()
            },
            &|_| true,
        );
        let wall_s = start.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&dir).ok();
        println!(
            "  bounded: {} distinct states (cap 400000, {} segment(s) spilled) in {wall_s:.1}s",
            e.states, e.spilled
        );
        assert!(
            e.states >= 1_000_000,
            "the demo must visit >= 10^6 distinct states"
        );
        assert!(
            !e.truncated,
            "spilling must let the bounded search complete"
        );
        json!({
            "workload": format!("{procs} processes, {msgs} messages, seed {seed}, full search"),
            "max_states": 400_000,
            "distinct_states": e.states,
            "states_per_sec": e.states as f64 / wall_s,
            "segments_spilled": e.spilled,
            "truncated": e.truncated,
            "wall_s": wall_s,
        })
    } else {
        json!(null)
    };

    let doc = json!({
        "bench": "BENCH_6",
        "generated_by": "cargo run --release -p msgorder-bench --bin snapshot_explore",
        "cores": cores,
        "note": "threaded rows only beat threads=1 when cores > 1; on a single-core \
                 machine they measure frontier overhead, not speedup. violation_digest \
                 is a commutative digest of the violating configurations — equal digests \
                 mean equal violation sets.",
        "explore": sizes,
        "bounded_seen_set": bounded,
    });
    write_report(&out_path, &doc);
}

//! Predicate-evaluation benchmarks: the ∃-instantiation search that
//! backs spec checking (EXP-L3) and the synthesized protocol (EXP-P2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_bench::Engine;
use msgorder_predicate::{catalog, eval};
use msgorder_runs::generator::{random_causal_run, random_user_run, GenParams};

fn bench_causal_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval/causal");
    for msgs in [10usize, 20, 40, 80] {
        // violating runs (early exit) and clean runs (full search)
        let dirty = random_user_run(GenParams::new(3, msgs, 7));
        let clean = random_causal_run(GenParams::new(3, msgs, 7));
        let pred = catalog::causal();
        g.bench_with_input(BenchmarkId::new("violating", msgs), &dirty, |b, run| {
            b.iter(|| eval::holds(&pred, run))
        });
        g.bench_with_input(BenchmarkId::new("clean", msgs), &clean, |b, run| {
            b.iter(|| eval::holds(&pred, run))
        });
    }
    g.finish();
}

fn bench_many_variable_predicates(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval/k-weaker");
    for k in [0usize, 1, 2, 3] {
        let pred = catalog::k_weaker_causal(k);
        let run = random_causal_run(GenParams::new(3, 20, 3));
        g.bench_with_input(BenchmarkId::new("clean-run", k), &run, |b, run| {
            b.iter(|| eval::holds(&pred, run))
        });
    }
    g.finish();
}

fn bench_counting(c: &mut Criterion) {
    let run = random_user_run(GenParams::new(3, 25, 11));
    let pred = catalog::causal();
    c.bench_function("eval/count-all-instantiations", |b| {
        b.iter(|| eval::count_instantiations(&pred, &run, usize::MAX))
    });
}

/// One predicate against a corpus of runs, batched through the engine:
/// the predicate is prepared once, the corpus is fanned across workers.
fn bench_batch_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval/batch");
    let pred = catalog::causal();
    let corpus: Vec<_> = (0..64)
        .map(|seed| random_causal_run(GenParams::new(3, 30, seed)))
        .collect();
    for threads in [1usize, 2, 4] {
        let engine = Engine::new(threads);
        g.bench_with_input(
            BenchmarkId::new("corpus-64x30/threads", threads),
            &engine,
            |b, engine| {
                let prep = eval::Prepared::new(&pred);
                b.iter(|| engine.par_map_ref(&corpus, |run| prep.holds(run)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_causal_eval,
    bench_many_variable_predicates,
    bench_counting,
    bench_batch_eval
);
criterion_main!(benches);

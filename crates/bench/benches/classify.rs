//! Classifier benchmarks (EXP-T1 / EXP-E1 / EXP-T2 / EXP-T4 code paths):
//! catalog classification, cycle enumeration vs line-graph BFS scaling,
//! witness generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_bench::Engine;
use msgorder_classifier::classify::classify;
use msgorder_classifier::cycles::min_order_by_enumeration;
use msgorder_classifier::min_order::min_cycle_order;
use msgorder_classifier::witness::separation_witnesses;
use msgorder_classifier::PredicateGraph;
use msgorder_predicate::{catalog, ForbiddenPredicate, Var};

/// A dense predicate with many cycles: complete-ish digraph on n vars.
fn dense_predicate(n: usize) -> ForbiddenPredicate {
    let mut b = ForbiddenPredicate::build(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let lhs = if (i + j) % 2 == 0 {
                    Var(i).s()
                } else {
                    Var(i).r()
                };
                let rhs = if (i * j) % 2 == 0 {
                    Var(j).s()
                } else {
                    Var(j).r()
                };
                b = b.conjunct(lhs, rhs);
            }
        }
    }
    b.finish()
}

fn bench_catalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify/full-catalog");
    let entries = catalog::all();
    // Per-entry classification is independent: batch it through the
    // engine at several widths (threads=1 is the sequential baseline).
    for threads in [1usize, 2, 4] {
        let engine = Engine::new(threads);
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine.par_map_ref(&entries, |e| {
                        classify(&e.predicate).classification.protocol_class()
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_min_order_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("min-order");
    for k in [3usize, 5, 7, 9] {
        let crown = catalog::sync_crown(k);
        let pg = PredicateGraph::of(&crown);
        g.bench_with_input(BenchmarkId::new("bfs/crown", k), &pg, |b, pg| {
            b.iter(|| min_cycle_order(pg).map(|c| c.order()))
        });
        g.bench_with_input(BenchmarkId::new("enum/crown", k), &pg, |b, pg| {
            b.iter(|| min_order_by_enumeration(pg, 1_000_000).map(|c| c.order()))
        });
    }
    for n in [3usize, 4, 5, 6] {
        let dense = dense_predicate(n);
        let pg = PredicateGraph::of(&dense);
        g.bench_with_input(BenchmarkId::new("bfs/dense", n), &pg, |b, pg| {
            b.iter(|| min_cycle_order(pg).map(|c| c.order()))
        });
        g.bench_with_input(BenchmarkId::new("enum/dense", n), &pg, |b, pg| {
            b.iter(|| min_order_by_enumeration(pg, 1_000_000).map(|c| c.order()))
        });
    }
    g.finish();
}

fn bench_witnesses(c: &mut Criterion) {
    c.bench_function("witnesses/catalog", |b| {
        let entries = catalog::all();
        b.iter(|| {
            entries
                .iter()
                .map(|e| separation_witnesses(&e.predicate).len())
                .sum::<usize>()
        })
    });
}

criterion_group!(
    benches,
    bench_catalog,
    bench_min_order_scaling,
    bench_witnesses
);
criterion_main!(benches);

//! Limit-set membership benchmarks (EXP-S1 code paths): `X_co` and
//! `X_sync` checks as runs grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_runs::generator::{random_user_run, GenParams};
use msgorder_runs::limit_sets;

fn bench_memberships(c: &mut Criterion) {
    let mut g = c.benchmark_group("limit-sets");
    for msgs in [10usize, 25, 50, 100] {
        let run = random_user_run(GenParams::new(4, msgs, 13));
        g.bench_with_input(BenchmarkId::new("x_co", msgs), &run, |b, run| {
            b.iter(|| limit_sets::in_x_co(run))
        });
        g.bench_with_input(BenchmarkId::new("x_sync", msgs), &run, |b, run| {
            b.iter(|| limit_sets::in_x_sync(run))
        });
        g.bench_with_input(BenchmarkId::new("sync_numbering", msgs), &run, |b, run| {
            b.iter(|| limit_sets::sync_numbering(run))
        });
    }
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    for msgs in [10usize, 50, 100] {
        g.bench_with_input(BenchmarkId::new("random-run", msgs), &msgs, |b, &m| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                random_user_run(GenParams::new(4, m, seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_memberships, bench_generation);
criterion_main!(benches);

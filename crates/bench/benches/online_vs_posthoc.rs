//! Online monitoring vs post-hoc evaluation (EXP-O1 code paths).
//!
//! Three ways to decide whether a simulated run violates a forbidden
//! predicate:
//!
//! 1. **post-hoc** — run to drain, build the `SystemRun` transitive
//!    closure, project the user's view, search for an instantiation;
//! 2. **online** — feed every run event to the streaming `Monitor`
//!    while the simulation executes, never building the closure;
//! 3. **online + halt** — same, but stop the simulation at the
//!    violating delivery (the early-exit payoff on unsafe runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_predicate::{catalog, eval};
use msgorder_protocols::{AsyncProtocol, OnlineMonitor};
use msgorder_simnet::{LatencyModel, SimConfig, Simulation, Workload};

fn config(n: usize, seed: u64) -> SimConfig {
    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed)
}

/// The async protocol against the FIFO spec: violating runs, so the
/// halting pipeline gets to exit early while post-hoc pays full price.
fn bench_online_vs_posthoc(c: &mut Criterion) {
    let n = 3;
    let seed = 3u64;
    let spec = catalog::fifo();
    for msgs in [20usize, 40, 80] {
        let w = Workload::uniform_random(n, msgs, seed);
        let mut g = c.benchmark_group(format!("online-vs-posthoc/{msgs}-messages"));
        g.bench_with_input(BenchmarkId::from_parameter("posthoc"), &w, |b, w| {
            b.iter(|| {
                let r =
                    Simulation::run_uniform(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                        .expect("no protocol bug");
                eval::find_instantiation(&spec, &r.run.users_view())
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter("online"), &w, |b, w| {
            b.iter(|| {
                let mut mon = OnlineMonitor::new(&spec);
                Simulation::new(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                    .run_streaming(&mut mon)
                    .expect("no protocol bug");
                mon.violated()
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter("online-halt"), &w, |b, w| {
            b.iter(|| {
                let mut mon = OnlineMonitor::halting(&spec);
                Simulation::new(config(n, seed), w.clone(), |_| AsyncProtocol::new())
                    .run_streaming(&mut mon)
                    .expect("no protocol bug");
                mon.violated()
            })
        });
        g.finish();
    }
}

/// Safe runs (FIFO protocol, FIFO spec): both pipelines must search the
/// whole run — this isolates the closure-vs-streaming overhead with no
/// early-exit advantage.
fn bench_safe_run_overhead(c: &mut Criterion) {
    let n = 3;
    let seed = 11u64;
    let spec = catalog::fifo();
    let mut g = c.benchmark_group("online-vs-posthoc/safe-40-messages");
    let w = Workload::uniform_random(n, 40, seed);
    g.bench_with_input(BenchmarkId::from_parameter("posthoc"), &w, |b, w| {
        b.iter(|| {
            let r = Simulation::run_uniform(config(n, seed), w.clone(), |_| {
                msgorder_protocols::FifoProtocol::new()
            })
            .expect("no protocol bug");
            eval::find_instantiation(&spec, &r.run.users_view())
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("online"), &w, |b, w| {
        b.iter(|| {
            let mut mon = OnlineMonitor::new(&spec);
            Simulation::new(config(n, seed), w.clone(), |_| {
                msgorder_protocols::FifoProtocol::new()
            })
            .run_streaming(&mut mon)
            .expect("no protocol bug");
            mon.violated()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_online_vs_posthoc, bench_safe_run_overhead);
criterion_main!(benches);

//! Consistent-cut and order-ideal benchmarks (the §2-related substrate
//! used by the snapshot example).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_poset::{ideals, Poset};
use msgorder_runs::cuts;
use msgorder_runs::generator::{random_system_run, GenParams};
use msgorder_runs::{EventKind, MessageId, SystemEvent};

fn bench_ideal_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ideals/count");
    // grid posets: 2 x k chains, ideal count = C(2k, k)-ish growth
    for k in [4usize, 6, 8] {
        let mut pairs = Vec::new();
        for i in 0..k - 1 {
            pairs.push((i, i + 1));
            pairs.push((k + i, k + i + 1));
        }
        for i in 0..k {
            pairs.push((i, k + i));
        }
        let p = Poset::from_pairs(2 * k, pairs).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| ideals::ideal_count(p))
        });
    }
    g.finish();
}

fn bench_width_height(c: &mut Criterion) {
    let mut g = c.benchmark_group("ideals/width-height");
    for n in [10usize, 20, 40] {
        // layered random-ish poset: i < j if i + n/4 <= j
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + n / 4)..n).map(move |j| (i, j)))
            .collect();
        let p = Poset::from_pairs(n, pairs).unwrap();
        g.bench_with_input(BenchmarkId::new("width", n), &p, |b, p| {
            b.iter(|| ideals::width(p))
        });
        g.bench_with_input(BenchmarkId::new("height", n), &p, |b, p| {
            b.iter(|| ideals::height(p))
        });
    }
    g.finish();
}

fn bench_cut_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuts");
    for msgs in [5usize, 10, 20] {
        let run = random_system_run(GenParams::new(3, msgs, 3));
        // a nontrivial consistent cut: everything up to message 0's send
        let cut = cuts::earliest_consistent_including(
            &run,
            &[SystemEvent::new(MessageId(0), EventKind::Send)],
        );
        g.bench_with_input(BenchmarkId::new("is_consistent", msgs), &run, |b, run| {
            b.iter(|| cuts::is_consistent(run, &cut))
        });
        g.bench_with_input(BenchmarkId::new("earliest", msgs), &run, |b, run| {
            b.iter(|| {
                cuts::earliest_consistent_including(
                    run,
                    &[SystemEvent::new(MessageId(0), EventKind::Deliver)],
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ideal_count,
    bench_width_height,
    bench_cut_checks
);
criterion_main!(benches);

//! Run-model benchmarks (EXP-F1 / F4 / F5 code paths): projection,
//! causal past, and the Figure 5 construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_runs::construct;
use msgorder_runs::generator::{random_system_run, GenParams};
use msgorder_runs::ProcessId;

fn bench_users_view(c: &mut Criterion) {
    let mut g = c.benchmark_group("runs/users-view");
    for msgs in [10usize, 50, 100, 200] {
        let run = random_system_run(GenParams::new(4, msgs, 5));
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &run, |b, run| {
            b.iter(|| run.users_view())
        });
    }
    g.finish();
}

fn bench_causal_past(c: &mut Criterion) {
    let mut g = c.benchmark_group("runs/causal-past");
    for msgs in [10usize, 50, 100] {
        let run = random_system_run(GenParams::new(4, msgs, 9));
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &run, |b, run| {
            b.iter(|| run.causal_past(ProcessId(0)))
        });
    }
    g.finish();
}

fn bench_figure5_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("runs/figure5-construct");
    for msgs in [10usize, 50, 100] {
        let user = random_system_run(GenParams::new(4, msgs, 2)).users_view();
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &user, |b, user| {
            b.iter(|| construct::system_from_user(user).expect("valid"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_users_view,
    bench_causal_past,
    bench_figure5_construction
);
criterion_main!(benches);

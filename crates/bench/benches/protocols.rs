//! Protocol benchmarks (EXP-P1 / EXP-P2 / EXP-F2 / EXP-F3 code paths):
//! whole-simulation throughput per protocol and scaling in message count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgorder_predicate::catalog;
use msgorder_protocols::ProtocolKind;
use msgorder_simnet::{LatencyModel, SimConfig, Simulation, Workload};

fn config(n: usize, seed: u64) -> SimConfig {
    SimConfig::new(n, LatencyModel::Uniform { lo: 1, hi: 500 }, seed)
}

fn bench_protocol_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/30-messages");
    let n = 4;
    let w = Workload::uniform_random(n, 30, 17);
    let mut kinds = ProtocolKind::fixed();
    kinds.push(ProtocolKind::Synthesized(catalog::causal()));
    for kind in kinds {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let r = Simulation::run_uniform(config(n, 17), w.clone(), |node| {
                        kind.instantiate(n, node)
                    })
                    .expect("no protocol bug");
                    assert!(r.run.is_quiescent());
                    r.stats
                })
            },
        );
    }
    g.finish();
}

fn bench_causal_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/causal-rst-scaling");
    let n = 4;
    for msgs in [20usize, 50, 100] {
        let w = Workload::uniform_random(n, msgs, 23);
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &w, |b, w| {
            b.iter(|| {
                Simulation::run_uniform(config(n, 23), w.clone(), |_| {
                    ProtocolKind::CausalRst.instantiate(n, 0)
                })
                .expect("no protocol bug")
                .stats
            })
        });
    }
    g.finish();
}

fn bench_sync_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/sync-contention");
    let n = 4;
    for burst in [2usize, 4, 8] {
        let w = Workload::client_server(n, 3, burst, 31);
        g.bench_with_input(BenchmarkId::from_parameter(burst), &w, |b, w| {
            b.iter(|| {
                Simulation::run_uniform(config(n, 31), w.clone(), |node| {
                    ProtocolKind::Sync.instantiate(n, node)
                })
                .expect("no protocol bug")
                .stats
            })
        });
    }
    g.finish();
}

fn bench_synthesized_scaling(c: &mut Criterion) {
    // The synthesized protocol's tag is its full causal history; this
    // bench tracks how simulation cost grows with the message count —
    // the motivation for the pruning future-work noted in its docs.
    let mut g = c.benchmark_group("protocols/synthesized-scaling");
    g.sample_size(10);
    let n = 3;
    for msgs in [10usize, 20, 40] {
        let w = Workload::uniform_random(n, msgs, 29);
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &w, |b, w| {
            b.iter(|| {
                Simulation::run_uniform(config(n, 29), w.clone(), |_| {
                    ProtocolKind::Synthesized(catalog::causal()).instantiate(n, 0)
                })
                .expect("no protocol bug")
                .stats
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_protocol_comparison,
    bench_causal_scaling,
    bench_sync_contention,
    bench_synthesized_scaling
);
criterion_main!(benches);

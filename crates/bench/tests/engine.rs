//! The engine must be a pure re-scheduling of work: batch results are
//! identical to the sequential loop at every thread count.

use msgorder_bench::Engine;
use msgorder_predicate::{catalog, eval};
use msgorder_runs::generator::{random_causal_run, random_user_run, GenParams};

#[test]
fn batch_predicate_eval_identical_to_sequential() {
    let pred = catalog::causal();
    let prep = eval::Prepared::new(&pred);
    let mut corpus: Vec<_> = (0..24)
        .map(|seed| random_user_run(GenParams::new(3, 12, seed)))
        .collect();
    corpus.extend((0..24).map(|seed| random_causal_run(GenParams::new(3, 12, seed))));
    let sequential: Vec<bool> = corpus.iter().map(|run| prep.holds(run)).collect();
    for threads in [1usize, 2, 4, 8] {
        let batched = Engine::new(threads).par_map_ref(&corpus, |run| prep.holds(run));
        assert_eq!(sequential, batched, "threads = {threads}");
    }
}

#[test]
fn batch_counting_identical_to_sequential() {
    let pred = catalog::causal();
    let prep = eval::Prepared::new(&pred);
    let corpus: Vec<_> = (0..16)
        .map(|seed| random_user_run(GenParams::new(3, 10, seed)))
        .collect();
    let sequential: Vec<usize> = corpus
        .iter()
        .map(|run| prep.count_instantiations(run, usize::MAX))
        .collect();
    let batched =
        Engine::new(4).par_map_ref(&corpus, |run| prep.count_instantiations(run, usize::MAX));
    assert_eq!(sequential, batched);
}

#[test]
fn prepared_agrees_with_free_functions() {
    // The plan-hoisted evaluator is a pure refactoring of the free
    // functions — same verdict on every run.
    for entry in catalog::all() {
        let prep = eval::Prepared::new(&entry.predicate);
        for seed in 0..8 {
            let run = random_user_run(GenParams::new(3, 10, seed));
            assert_eq!(
                prep.holds(&run),
                eval::holds(&entry.predicate, &run),
                "{} seed {seed}",
                entry.name
            );
        }
    }
}

//! Real-transport runtime for the ordering protocols: the simulator's
//! verified protocol objects running over real OS sockets.
//!
//! The simnet kernel drives protocols through the transport-agnostic
//! [`ProtocolHost`] boundary (DESIGN.md §13): framed events in, framed
//! actions plus delivery decisions out. This crate supplies the *real*
//! host for that boundary:
//!
//! - [`frame`] — length-prefixed framing with per-channel multiplexing,
//!   decoded incrementally from arbitrary read splits;
//! - [`endpoint`] — TCP and Unix-domain sockets behind one address
//!   syntax (`tcp:HOST:PORT`, `unix:PATH`);
//! - [`wire`] — the JSON message protocol: `Hello`/`Welcome`/`Bye`
//!   handshake, sequence-numbered [`EventMsg`](wire::EventMsg) /
//!   [`ActionMsg`](wire::ActionMsg) round-trips;
//! - [`supervisor`] — dialing with the reliable-link exponential
//!   backoff curve;
//! - [`server`] — [`SocketHost`], a
//!   [`HostDriver`](msgorder_simnet::HostDriver) whose protocol
//!   instances live in other OS processes, and [`serve`], which runs a
//!   whole session under the wall-clock
//!   [`RealtimeKernel`](msgorder_simnet::RealtimeKernel) and assembles
//!   the recorded trace;
//! - [`client`] — the peer process: dial, learn the
//!   [`Setup`](msgorder_trace::Setup), instantiate a registry protocol,
//!   answer events until `Bye`;
//! - [`metrics_http`] — a minimal blocking HTTP endpoint serving a
//!   [`SharedRegistry`](msgorder_trace::SharedRegistry) in the
//!   Prometheus text format, for `msgorder serve --metrics-addr` and
//!   the soak harness.
//!
//! Because the realtime kernel fixes every frame's arrival time at
//! transmit time and records through the standard trace pipeline, a
//! trace captured from a live socket run replays **bit-exact** in the
//! discrete-event simulator — same fingerprint, same event stream, same
//! verdict — and rides the verify/shrink tooling unchanged.
//!
//! [`ProtocolHost`]: msgorder_simnet::ProtocolHost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod endpoint;
pub mod frame;
pub mod metrics_http;
pub mod server;
pub mod supervisor;
pub mod wire;

pub use client::{run_client, ClientOptions, ClientReport};
pub use endpoint::{Conn, Endpoint, Listener};
pub use frame::{crc32, Decoder, Frame, FrameError, CRC_LEN, MAX_FRAME};
pub use metrics_http::{scrape, MetricsExporter};
pub use server::{
    serve, serve_on, serve_on_observed, ServeOptions, ServeOutcome, SocketHost, TransportError,
};
pub use supervisor::{connect_with_retry, Backoff};
pub use wire::{FramedConn, WIRE_VERSION};

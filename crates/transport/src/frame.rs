//! Length-prefixed framing with per-channel multiplexing.
//!
//! Wire format of one frame:
//!
//! ```text
//! [len: u32 LE][channel: u8][payload: len-1 bytes]
//! ```
//!
//! `len` counts the channel byte plus the payload, so a well-formed
//! frame occupies `4 + len` bytes and `len >= 1` always. The channel
//! byte multiplexes independent message streams (control, events,
//! actions) over one connection; see [`crate::wire`] for the channel
//! assignments.
//!
//! Decoding is incremental: a [`Decoder`] accepts bytes in arbitrary
//! split positions (as TCP delivers them) and yields complete frames as
//! they materialize, rejecting oversized or malformed length prefixes
//! *before* buffering their payload.

/// Upper bound on `len` (channel byte + payload). A peer announcing a
/// larger frame is faulty or hostile; the decoder rejects the length
/// prefix without allocating.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One decoded frame: a channel id and its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Which multiplexed stream the payload belongs to.
    pub channel: u8,
    /// The payload bytes (everything after the channel byte).
    pub payload: Vec<u8>,
}

/// A malformed byte stream. Framing errors are not recoverable: the
/// stream position is lost, so the connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The announced length.
        len: usize,
    },
    /// The length prefix is zero (a frame always has a channel byte).
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Empty => write!(f, "zero-length frame (missing channel byte)"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame.
///
/// # Errors
/// [`FrameError::Oversized`] if the payload (plus channel byte) exceeds
/// [`MAX_FRAME`].
pub fn encode(channel: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = payload.len() + 1;
    let prefix = match u32::try_from(len) {
        Ok(prefix) if len <= MAX_FRAME => prefix,
        _ => return Err(FrameError::Oversized { len }),
    };
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&prefix.to_le_bytes());
    out.push(channel);
    out.extend_from_slice(payload);
    Ok(out)
}

/// An incremental frame decoder: push bytes in as they arrive, pull
/// complete frames out.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    start: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends newly received bytes to the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is consumed.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame, `None` if more bytes are needed.
    ///
    /// # Errors
    /// A [`FrameError`] on a malformed length prefix; the stream is
    /// unrecoverable afterwards and the connection should be dropped.
    pub fn try_next(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len == 0 {
            return Err(FrameError::Empty);
        }
        if len > MAX_FRAME {
            return Err(FrameError::Oversized { len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let channel = avail[4];
        let payload = avail[5..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(Frame { channel, payload }))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_one_frame() {
        let bytes = encode(3, b"hello").expect("fits");
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let f = dec.try_next().expect("well-formed").expect("complete");
        assert_eq!(
            f,
            Frame {
                channel: 3,
                payload: b"hello".to_vec()
            }
        );
        assert_eq!(dec.try_next(), Ok(None));
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let bytes = encode(0, b"").expect("fits");
        assert_eq!(bytes.len(), 5);
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let f = dec.try_next().expect("well-formed").expect("complete");
        assert_eq!(f.payload, Vec::<u8>::new());
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut dec = Decoder::new();
        let len = (MAX_FRAME as u32 + 1).to_le_bytes();
        dec.push(&len);
        assert_eq!(
            dec.try_next(),
            Err(FrameError::Oversized { len: MAX_FRAME + 1 })
        );
        assert!(encode(0, &vec![0u8; MAX_FRAME]).is_err(), "encode agrees");
    }

    #[test]
    fn zero_length_is_rejected() {
        let mut dec = Decoder::new();
        dec.push(&0u32.to_le_bytes());
        assert_eq!(dec.try_next(), Err(FrameError::Empty));
    }
}

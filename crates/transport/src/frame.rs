//! Length-prefixed framing with per-channel multiplexing.
//!
//! Wire format of one frame:
//!
//! ```text
//! [len: u32 LE][channel: u8][payload: len-1 bytes]
//! ```
//!
//! `len` counts the channel byte plus the payload, so a well-formed
//! frame occupies `4 + len` bytes and `len >= 1` always. The channel
//! byte multiplexes independent message streams (control, events,
//! actions) over one connection; see [`crate::wire`] for the channel
//! assignments.
//!
//! Decoding is incremental: a [`Decoder`] accepts bytes in arbitrary
//! split positions (as TCP delivers them) and yields complete frames as
//! they materialize, rejecting oversized or malformed length prefixes
//! *before* buffering their payload.
//!
//! # Wire version 2: checksummed frames
//!
//! Version 2 of the handshake (see [`crate::wire`]) appends a CRC-32
//! (IEEE) of `channel ‖ payload` to every frame:
//!
//! ```text
//! [len: u32 LE][channel: u8][payload][crc: u32 LE]
//! ```
//!
//! with `len` counting channel byte + payload + checksum. Corruption
//! *inside* a frame leaves the length prefix intact, so — unlike a
//! framing violation — a checksum mismatch is recoverable: the decoder
//! skips the damaged frame, counts it, and resynchronizes at the next
//! length prefix instead of killing the connection. CRC-32 detects
//! every single-bit flip (and any burst ≤ 32 bits) by construction.

/// Upper bound on `len` (channel byte + payload). A peer announcing a
/// larger frame is faulty or hostile; the decoder rejects the length
/// prefix without allocating.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of the trailing CRC-32 in a version-2 frame.
pub const CRC_LEN: usize = 4;

/// The CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, built at compile time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One decoded frame: a channel id and its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Which multiplexed stream the payload belongs to.
    pub channel: u8,
    /// The payload bytes (everything after the channel byte).
    pub payload: Vec<u8>,
}

/// A malformed byte stream. Framing errors are not recoverable: the
/// stream position is lost, so the connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The announced length.
        len: usize,
    },
    /// The length prefix is zero (a frame always has a channel byte).
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Empty => write!(f, "zero-length frame (missing channel byte)"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame.
///
/// # Errors
/// [`FrameError::Oversized`] if the payload (plus channel byte) exceeds
/// [`MAX_FRAME`].
pub fn encode(channel: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = payload.len() + 1;
    let prefix = match u32::try_from(len) {
        Ok(prefix) if len <= MAX_FRAME => prefix,
        _ => return Err(FrameError::Oversized { len }),
    };
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&prefix.to_le_bytes());
    out.push(channel);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Encodes one version-2 (checksummed) frame: the CRC-32 of
/// `channel ‖ payload` is appended and counted in the length prefix.
///
/// # Errors
/// [`FrameError::Oversized`] if channel byte + payload + checksum
/// exceeds [`MAX_FRAME`].
pub fn encode_crc(channel: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = payload.len() + 1 + CRC_LEN;
    let prefix = match u32::try_from(len) {
        Ok(prefix) if len <= MAX_FRAME => prefix,
        _ => return Err(FrameError::Oversized { len }),
    };
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&prefix.to_le_bytes());
    out.push(channel);
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// An incremental frame decoder: push bytes in as they arrive, pull
/// complete frames out.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    start: usize,
    crc: bool,
    rejected: u64,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends newly received bytes to the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is consumed.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Switches the decoder to wire-version-2 mode: every frame must
    /// carry a trailing CRC-32 over `channel ‖ payload`. Frames whose
    /// checksum does not verify are skipped and counted, not fatal.
    pub fn enable_crc(&mut self) {
        self.crc = true;
    }

    /// Whether the decoder is verifying per-frame checksums.
    pub fn crc_enabled(&self) -> bool {
        self.crc
    }

    /// Frames discarded for checksum mismatch since construction.
    pub fn crc_rejected(&self) -> u64 {
        self.rejected
    }

    /// Yields the next complete frame, `None` if more bytes are needed.
    ///
    /// In CRC mode a frame whose checksum fails verification is
    /// silently skipped (and counted via [`Decoder::crc_rejected`]);
    /// decoding resynchronizes at the next length prefix.
    ///
    /// # Errors
    /// A [`FrameError`] on a malformed length prefix; the stream is
    /// unrecoverable afterwards and the connection should be dropped.
    pub fn try_next(&mut self) -> Result<Option<Frame>, FrameError> {
        loop {
            let avail = &self.buf[self.start..];
            if avail.len() < 4 {
                return Ok(None);
            }
            let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
            if len == 0 {
                return Err(FrameError::Empty);
            }
            if len > MAX_FRAME {
                return Err(FrameError::Oversized { len });
            }
            if avail.len() < 4 + len {
                return Ok(None);
            }
            if self.crc {
                // A v2 frame needs room for the channel byte and the
                // checksum; anything shorter is corrupt by definition.
                if len <= CRC_LEN {
                    self.rejected += 1;
                    self.start += 4 + len;
                    continue;
                }
                let body = &avail[4..4 + len - CRC_LEN];
                let tail = &avail[4 + len - CRC_LEN..4 + len];
                let want = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
                if crc32(body) != want {
                    self.rejected += 1;
                    self.start += 4 + len;
                    continue;
                }
                let channel = body[0];
                let payload = body[1..].to_vec();
                self.start += 4 + len;
                return Ok(Some(Frame { channel, payload }));
            }
            let channel = avail[4];
            let payload = avail[5..4 + len].to_vec();
            self.start += 4 + len;
            return Ok(Some(Frame { channel, payload }));
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_one_frame() {
        let bytes = encode(3, b"hello").expect("fits");
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let f = dec.try_next().expect("well-formed").expect("complete");
        assert_eq!(
            f,
            Frame {
                channel: 3,
                payload: b"hello".to_vec()
            }
        );
        assert_eq!(dec.try_next(), Ok(None));
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let bytes = encode(0, b"").expect("fits");
        assert_eq!(bytes.len(), 5);
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let f = dec.try_next().expect("well-formed").expect("complete");
        assert_eq!(f.payload, Vec::<u8>::new());
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut dec = Decoder::new();
        let len = (MAX_FRAME as u32 + 1).to_le_bytes();
        dec.push(&len);
        assert_eq!(
            dec.try_next(),
            Err(FrameError::Oversized { len: MAX_FRAME + 1 })
        );
        assert!(encode(0, &vec![0u8; MAX_FRAME]).is_err(), "encode agrees");
    }

    #[test]
    fn zero_length_is_rejected() {
        let mut dec = Decoder::new();
        dec.push(&0u32.to_le_bytes());
        assert_eq!(dec.try_next(), Err(FrameError::Empty));
    }

    #[test]
    fn crc_round_trips_one_frame() {
        let bytes = encode_crc(2, b"payload").expect("fits");
        assert_eq!(bytes.len(), 4 + 1 + 7 + CRC_LEN);
        let mut dec = Decoder::new();
        dec.enable_crc();
        dec.push(&bytes);
        let f = dec.try_next().expect("well-formed").expect("complete");
        assert_eq!(
            f,
            Frame {
                channel: 2,
                payload: b"payload".to_vec()
            }
        );
        assert_eq!(dec.crc_rejected(), 0);
    }

    #[test]
    fn crc_rejects_every_single_bit_flip() {
        let clean = encode_crc(1, b"ordering").expect("fits");
        // Flip each bit of the frame body (channel + payload + crc);
        // the length prefix is excluded because damaging it is a
        // framing-level fault, not a payload-corruption fault.
        for byte in 4..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                let mut dec = Decoder::new();
                dec.enable_crc();
                dec.push(&dirty);
                assert_eq!(
                    dec.try_next(),
                    Ok(None),
                    "flip at byte {byte} bit {bit} must be rejected"
                );
                assert_eq!(dec.crc_rejected(), 1);
            }
        }
    }

    #[test]
    fn crc_mismatch_resyncs_to_the_next_frame() {
        let mut dirty = encode_crc(0, b"first").expect("fits");
        let last = dirty.len() - 1;
        dirty[last] ^= 0x80;
        let clean = encode_crc(0, b"second").expect("fits");
        let mut dec = Decoder::new();
        dec.enable_crc();
        dec.push(&dirty);
        dec.push(&clean);
        let f = dec.try_next().expect("recoverable").expect("complete");
        assert_eq!(f.payload, b"second".to_vec());
        assert_eq!(dec.crc_rejected(), 1);
        assert_eq!(dec.try_next(), Ok(None));
    }

    #[test]
    fn crc_frame_too_short_for_checksum_is_skipped() {
        // A v1-style 5-byte frame (len = 1) read by a v2 decoder: no
        // room for the checksum, so it is counted and skipped.
        let v1 = encode(7, b"").expect("fits");
        let clean = encode_crc(7, b"ok").expect("fits");
        let mut dec = Decoder::new();
        dec.enable_crc();
        dec.push(&v1);
        dec.push(&clean);
        let f = dec.try_next().expect("recoverable").expect("complete");
        assert_eq!(f.payload, b"ok".to_vec());
        assert_eq!(dec.crc_rejected(), 1);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}

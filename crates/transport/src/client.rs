//! The peer side: one OS process hosting one protocol instance behind
//! a framed connection.
//!
//! The client is intentionally dumb about time and ordering — it is the
//! *protocol* side of the [`ProtocolHost`] split. It dials the server
//! (with supervisor backoff), learns the run's [`Setup`](msgorder_trace::Setup) from the
//! `Welcome`, instantiates its registry protocol, and then answers each
//! [`EventMsg`] with one [`ActionMsg`] until `Bye`. Reconnection keeps
//! the protocol state and the last reply, so a resent in-flight event
//! is answered from cache instead of reprocessed.
//!
//! [`ProtocolHost`]: msgorder_simnet::ProtocolHost

use crate::endpoint::Endpoint;
use crate::server::TransportError;
use crate::supervisor::{connect_with_retry, Backoff};
use crate::wire::{
    ActionMsg, ControlMsg, EventMsg, FramedConn, CH_CONTROL, CH_EVENT, WIRE_VERSION,
};
use msgorder_protocols::ProtocolKind;
use msgorder_simnet::{HostEnv, Protocol, ProtocolHost};
use std::io;
use std::time::Duration;

/// Options for [`run_client`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// The server to dial.
    pub endpoint: Endpoint,
    /// This process's id.
    pub node: usize,
    /// Reconnect policy.
    pub backoff: Backoff,
    /// Per-read socket timeout.
    pub io_timeout: Duration,
    /// When set, this client's outgoing frames inject deterministic
    /// CRC-corrupt copies (seeded per node), so the *server* exercises
    /// and counts its reject-and-resync path. Only takes effect when
    /// the handshake negotiates wire version ≥ 2.
    pub wire_chaos: Option<u64>,
}

impl ClientOptions {
    /// Defaults: standard backoff, 60 s read patience (the server may
    /// legitimately be waiting on other peers between our events), no
    /// wire chaos.
    pub fn new(endpoint: Endpoint, node: usize) -> ClientOptions {
        ClientOptions {
            endpoint,
            node,
            backoff: Backoff::default(),
            io_timeout: Duration::from_secs(60),
            wire_chaos: None,
        }
    }
}

/// Summary of one completed client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientReport {
    /// Events processed (cache hits for resent duplicates excluded).
    pub processed: u64,
    /// Connections established (1 = no reconnects were needed).
    pub connects: u32,
    /// Incoming frames discarded for CRC mismatch, across every
    /// connection of the session.
    pub crc_rejected: u64,
}

/// The client's protocol instance plus its host environment.
struct Instance {
    protocol: Box<dyn Protocol>,
    env: HostEnv,
}

/// Dials the server and serves one protocol instance until the server
/// says `Bye`.
///
/// # Errors
/// Dial/handshake failures, an unknown protocol in the announced setup,
/// or a connection loss the backoff budget could not outlast.
pub fn run_client(opts: &ClientOptions) -> Result<ClientReport, TransportError> {
    let mut instance: Option<Instance> = None;
    let mut cache: Option<ActionMsg> = None;
    let mut next_seq: u64 = 0;
    let mut report = ClientReport {
        processed: 0,
        connects: 0,
        crc_rejected: 0,
    };
    loop {
        let conn = connect_with_retry(&opts.endpoint, &opts.backoff)?;
        conn.set_read_timeout(Some(opts.io_timeout))?;
        report.connects += 1;
        let mut framed = FramedConn::new(conn);
        framed.send(
            CH_CONTROL,
            &ControlMsg::Hello {
                node: opts.node,
                resume: next_seq,
                version: WIRE_VERSION,
            },
        )?;
        let welcome: ControlMsg = framed.recv_on(CH_CONTROL)?;
        let ControlMsg::Welcome { setup, version } = welcome else {
            return Err(TransportError::Handshake(format!(
                "expected Welcome, got {welcome:?}"
            )));
        };
        if version >= 2 {
            framed.enable_crc();
            if let Some(seed) = opts.wire_chaos {
                framed.enable_chaos(seed ^ opts.node as u64);
            }
        }
        if instance.is_none() {
            let spec = setup.spec_predicate()?;
            let kind = ProtocolKind::by_name(&setup.protocol, spec.as_ref()).ok_or_else(|| {
                TransportError::Handshake(format!(
                    "setup names unknown protocol {:?}",
                    setup.protocol
                ))
            })?;
            if opts.node >= setup.processes {
                return Err(TransportError::Handshake(format!(
                    "node {} out of range for a {}-process run",
                    opts.node, setup.processes
                )));
            }
            instance = Some(Instance {
                protocol: kind.instantiate_with(setup.processes, opts.node, setup.reliable),
                env: HostEnv::new(opts.node, setup.processes, &setup.workload),
            });
        }
        let Some(inst) = instance.as_mut() else {
            return Err(TransportError::Handshake(
                "protocol instance missing after Welcome".to_string(),
            ));
        };
        // A redial is the wire-level analogue of a crash/restart
        // window: bump the environment's epoch so control frames sent
        // after the reconnect carry a generation tag and pre-drop
        // stragglers are rejectable as stale (see `protocols::epoch`).
        inst.env.set_epoch(u64::from(report.connects - 1));
        let served = serve_events(
            &mut framed,
            inst,
            &mut cache,
            &mut next_seq,
            &mut report.processed,
        );
        report.crc_rejected += framed.crc_rejected();
        match served {
            Ok(()) => return Ok(report),
            Err(e) if recoverable(&e) => continue, // redial via the supervisor
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

/// Whether a session error is worth a reconnect attempt (the server may
/// still be running and will resend the in-flight event).
fn recoverable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// The event loop on one established connection; `Ok(())` means the
/// server said `Bye`.
fn serve_events(
    framed: &mut FramedConn,
    instance: &mut Instance,
    cache: &mut Option<ActionMsg>,
    next_seq: &mut u64,
    processed: &mut u64,
) -> io::Result<()> {
    loop {
        let frame = framed.recv()?;
        match frame.channel {
            CH_CONTROL => {
                let msg: ControlMsg = serde_json::from_slice(&frame.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                match msg {
                    ControlMsg::Bye => return Ok(()),
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected control message mid-run: {other:?}"),
                        ))
                    }
                }
            }
            CH_EVENT => {
                let msg: EventMsg = serde_json::from_slice(&frame.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                if msg.seq < *next_seq {
                    // The reply to this event was lost in a reconnect:
                    // answer from the cache, never reprocess.
                    if let Some(reply) = cache.as_ref().filter(|c| c.seq == msg.seq) {
                        framed.send(crate::wire::CH_ACTION, reply)?;
                        continue;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate event seq {} without a cached reply", msg.seq),
                    ));
                }
                instance.env.set_now(msg.now);
                instance.protocol.process_event(&mut instance.env, msg.ev);
                let reply = ActionMsg {
                    seq: msg.seq,
                    actions: instance.env.take_actions(),
                };
                *next_seq = msg.seq + 1;
                *processed += 1;
                framed.send(crate::wire::CH_ACTION, &reply)?;
                *cache = Some(reply);
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected channel {other}"),
                ))
            }
        }
    }
}

//! The serving side: a [`SocketHost`] that drives remote protocol
//! instances over framed connections, and [`serve`], which runs a whole
//! live session under the realtime kernel and assembles the recorded
//! trace.
//!
//! The server is the *kernel* side of the [`ProtocolHost`] split: it
//! owns time, scheduling, journaling, and fault accounting; each peer
//! process owns exactly one protocol instance's ordering state. A
//! dispatch is one blocking round-trip — [`EventMsg`] out,
//! [`ActionMsg`] back — which preserves the atomicity the realtime
//! kernel needs for bit-exact replay.
//!
//! Reconnection: when a connection drops mid-round-trip, the server
//! keeps the in-flight event and waits (bounded) for the peer's
//! supervisor to dial back in with a [`ControlMsg::Hello`]; the event
//! is resent and the peer's one-deep reply cache answers duplicates
//! without reprocessing. A peer that lost its protocol state (fresh
//! `resume: 0` against a mid-run sequence number) cannot resume and is
//! rejected.
//!
//! [`ProtocolHost`]: msgorder_simnet::ProtocolHost

use crate::endpoint::{Endpoint, Listener};
use crate::wire::{
    ActionMsg, ControlMsg, EventMsg, FramedConn, CH_ACTION, CH_CONTROL, WIRE_VERSION,
};
use msgorder_simnet::{
    DriftStats, HostAction, HostDriver, HostError, HostEvent, RealtimeKernel, SimError,
    StreamResult,
};
use msgorder_trace::{assemble_trace, Recorder, Setup, Trace, TraceError};
use std::io;
use std::time::{Duration, Instant};

/// What can go wrong running a live session.
#[derive(Debug)]
pub enum TransportError {
    /// A socket-level failure (bind, accept, handshake I/O).
    Io(io::Error),
    /// A peer broke the handshake protocol.
    Handshake(String),
    /// Trace assembly or setup validation failed.
    Trace(TraceError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Handshake(m) => write!(f, "handshake: {m}"),
            TransportError::Trace(e) => write!(f, "trace: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<TraceError> for TransportError {
    fn from(e: TraceError) -> TransportError {
        TransportError::Trace(e)
    }
}

/// Options for [`serve`].
#[derive(Debug)]
pub struct ServeOptions {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// The run to execute: workload, protocol, spec, seed, step limit.
    /// Becomes the recorded trace's header verbatim, so the trace
    /// replays in the simulator with no extra context.
    pub setup: Setup,
    /// Wall-clock duration of one virtual tick; `ZERO` free-runs.
    pub tick: Duration,
    /// How long to wait for all peers to dial in (and to dial back in
    /// after a connection drop).
    pub handshake_timeout: Duration,
    /// Per-connection read timeout for one round-trip.
    pub io_timeout: Duration,
    /// When set, the server's outgoing links inject deterministic
    /// CRC-corrupt frame copies (seeded per node from this value) so a
    /// loopback run exercises the reject-and-resync path over real
    /// sockets. Requires the peers to negotiate wire version ≥ 2.
    pub wire_chaos: Option<u64>,
}

impl ServeOptions {
    /// Defaults: free-running tick, 30 s handshake patience, 30 s
    /// round-trip timeout, no wire chaos.
    pub fn new(endpoint: Endpoint, setup: Setup) -> ServeOptions {
        ServeOptions {
            endpoint,
            setup,
            tick: Duration::ZERO,
            handshake_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
            wire_chaos: None,
        }
    }
}

/// The outcome of one live session.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The assembled trace — replayable in the simulator bit-exact.
    pub trace: Trace,
    /// The raw streaming outcome, exactly as the simulator would
    /// return it.
    pub outcome: Result<StreamResult, SimError>,
    /// Wall-clock pacing accounting.
    pub drift: DriftStats,
    /// Incoming frames the server discarded for CRC mismatch (summed
    /// over all links, including ones replaced by a reconnect).
    pub crc_rejected: u64,
    /// Corrupt frame copies injected by [`ServeOptions::wire_chaos`].
    pub chaos_injected: u64,
}

/// A [`HostDriver`] whose protocol instances live in other OS
/// processes, one framed connection per process.
pub struct SocketHost {
    listener: Listener,
    setup: Setup,
    links: Vec<Option<FramedConn>>,
    seqs: Vec<u64>,
    handshake_timeout: Duration,
    io_timeout: Duration,
    wire_chaos: Option<u64>,
    // Counters carried over from links torn down by a reconnect, so
    // the session totals survive connection churn.
    retired_crc_rejected: u64,
    retired_chaos_injected: u64,
}

impl SocketHost {
    /// A host for `setup.processes` peers on `listener`. Call
    /// [`await_peers`](SocketHost::await_peers) before running the
    /// kernel.
    pub fn new(listener: Listener, opts: &ServeOptions) -> io::Result<SocketHost> {
        listener.set_nonblocking(true)?;
        let n = opts.setup.processes;
        Ok(SocketHost {
            listener,
            setup: opts.setup.clone(),
            links: (0..n).map(|_| None).collect(),
            seqs: vec![0; n],
            handshake_timeout: opts.handshake_timeout,
            io_timeout: opts.io_timeout,
            wire_chaos: opts.wire_chaos,
            retired_crc_rejected: 0,
            retired_chaos_injected: 0,
        })
    }

    /// Total incoming frames discarded for CRC mismatch, across every
    /// link this host has held.
    pub fn crc_rejected(&self) -> u64 {
        self.retired_crc_rejected
            + self
                .links
                .iter()
                .flatten()
                .map(FramedConn::crc_rejected)
                .sum::<u64>()
    }

    /// Total corrupt frame copies injected by wire chaos.
    pub fn chaos_injected(&self) -> u64 {
        self.retired_chaos_injected
            + self
                .links
                .iter()
                .flatten()
                .map(FramedConn::chaos_injected)
                .sum::<u64>()
    }

    /// Accepts and handshakes connections until every process has one.
    ///
    /// # Errors
    /// [`TransportError::Handshake`] when the timeout passes first or a
    /// peer announces an out-of-range node or a stale resume point.
    pub fn await_peers(&mut self) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.handshake_timeout;
        while self.links.iter().any(Option::is_none) {
            self.accept_one(deadline)?;
        }
        Ok(())
    }

    /// Accepts one connection and completes its handshake, filling
    /// `self.links` at whichever node dialed in.
    fn accept_one(&mut self, deadline: Instant) -> Result<(), TransportError> {
        let conn = loop {
            match self.listener.accept() {
                Ok(conn) => break conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let missing: Vec<usize> = self
                            .links
                            .iter()
                            .enumerate()
                            .filter_map(|(i, l)| l.is_none().then_some(i))
                            .collect();
                        return Err(TransportError::Handshake(format!(
                            "timed out waiting for processes {missing:?} to connect"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        };
        conn.set_read_timeout(Some(self.io_timeout))?;
        let mut framed = FramedConn::new(conn);
        let hello: ControlMsg = framed.recv_on(CH_CONTROL)?;
        let ControlMsg::Hello {
            node,
            resume,
            version,
        } = hello
        else {
            return Err(TransportError::Handshake(format!(
                "expected Hello, got {hello:?}"
            )));
        };
        if version == 0 {
            return Err(TransportError::Handshake(format!(
                "process {node} announced wire version 0"
            )));
        }
        if node >= self.links.len() {
            return Err(TransportError::Handshake(format!(
                "process id {node} out of range (expected < {})",
                self.links.len()
            )));
        }
        // A surviving peer resumes at the in-flight event (reply lost:
        // one past it). Anything older means the peer lost its protocol
        // state and the run cannot continue correctly.
        if resume != self.seqs[node] && resume != self.seqs[node] + 1 {
            return Err(TransportError::Handshake(format!(
                "process {node} resumed at seq {resume}, expected {} — protocol state lost",
                self.seqs[node]
            )));
        }
        // The handshake runs in version-1 framing; only frames after
        // the Welcome use the negotiated version.
        let negotiated = version.min(WIRE_VERSION);
        framed.send(
            CH_CONTROL,
            &ControlMsg::Welcome {
                setup: self.setup.clone(),
                version: negotiated,
            },
        )?;
        if negotiated >= 2 {
            framed.enable_crc();
            if let Some(seed) = self.wire_chaos {
                framed.enable_chaos(seed ^ node as u64);
            }
        }
        self.links[node] = Some(framed);
        Ok(())
    }

    /// Tells every connected peer the run is over.
    pub fn farewell(&mut self) {
        for link in self.links.iter_mut().flatten() {
            let _ = link.send(CH_CONTROL, &ControlMsg::Bye);
        }
    }

    /// One blocking round-trip on an established link.
    fn round_trip(link: &mut FramedConn, msg: &EventMsg) -> io::Result<Vec<HostAction>> {
        link.send(crate::wire::CH_EVENT, msg)?;
        loop {
            let reply: ActionMsg = link.recv_on(CH_ACTION)?;
            if reply.seq == msg.seq {
                return Ok(reply.actions);
            }
            // A stale reply from before a reconnect: drain and re-read.
        }
    }
}

impl HostDriver for SocketHost {
    fn dispatch(
        &mut self,
        node: usize,
        ev: HostEvent,
        now: u64,
    ) -> Result<Vec<HostAction>, HostError> {
        if node >= self.links.len() {
            return Err(HostError::new(node, "process id out of range"));
        }
        let seq = self.seqs[node];
        let msg = EventMsg { seq, now, ev };
        let mut last_io: Option<io::Error> = None;
        // One reconnect window per dispatch: a dropped connection gets
        // the full handshake timeout for the peer's supervisor to dial
        // back; a second failure on the fresh link fails the node.
        for _ in 0..2 {
            if self.links[node].is_none() {
                let deadline = Instant::now() + self.handshake_timeout;
                while self.links[node].is_none() {
                    if let Err(e) = self.accept_one(deadline) {
                        return Err(HostError::new(
                            node,
                            format!("reconnect failed after {last_io:?}: {e}"),
                        ));
                    }
                }
            }
            let Some(link) = self.links[node].as_mut() else {
                return Err(HostError::new(node, "connection lost during reconnect"));
            };
            match SocketHost::round_trip(link, &msg) {
                Ok(actions) => {
                    self.seqs[node] = seq + 1;
                    return Ok(actions);
                }
                Err(e) => {
                    if let Some(dead) = self.links[node].take() {
                        self.retired_crc_rejected += dead.crc_rejected();
                        self.retired_chaos_injected += dead.chaos_injected();
                    }
                    last_io = Some(e);
                }
            }
        }
        let detail = last_io.map_or_else(|| "no i/o error recorded".to_string(), |e| e.to_string());
        Err(HostError::new(
            node,
            format!("round-trip failed twice: {detail}"),
        ))
    }
}

/// Runs one live session end to end: listen, handshake all peers, run
/// the workload under the realtime kernel, record every kernel event,
/// and assemble the replayable trace.
///
/// # Errors
/// Bind/handshake failures and trace assembly errors. A *protocol*
/// failure (or a peer dying mid-run) is not an error here — it is the
/// structured counterexample in [`ServeOutcome::outcome`], recorded in
/// the trace like any simulated failure.
pub fn serve(opts: &ServeOptions) -> Result<ServeOutcome, TransportError> {
    let spec = opts.setup.spec_predicate()?;
    let listener = opts.endpoint.listen()?;
    serve_on(listener, opts, spec.as_ref())
}

/// [`serve`] on an already-bound listener (lets callers bind port 0 and
/// learn the real address before peers dial in).
pub fn serve_on(
    listener: Listener,
    opts: &ServeOptions,
    spec: Option<&msgorder_predicate::ForbiddenPredicate>,
) -> Result<ServeOutcome, TransportError> {
    serve_on_observed(listener, opts, spec, None)
}

/// [`serve_on`], additionally fanning the live kernel event stream out
/// to `extra` (a metrics feed, an online monitor, …). The recorder
/// always sees the full run; if the extra observer halts the run, the
/// trace captures the halted prefix.
pub fn serve_on_observed(
    listener: Listener,
    opts: &ServeOptions,
    spec: Option<&msgorder_predicate::ForbiddenPredicate>,
    extra: Option<&mut dyn msgorder_simnet::RunObserver>,
) -> Result<ServeOutcome, TransportError> {
    let mut host = SocketHost::new(listener, opts)?;
    host.await_peers()?;
    let kernel = RealtimeKernel::new(opts.setup.config(), &opts.setup.workload)
        .with_step_limit(opts.setup.step_limit)
        .with_tick(opts.tick);
    let mut recorder = Recorder::with_capacity(opts.setup.workload.len() * 8);
    let out = match extra {
        Some(x) => {
            let mut fan = msgorder_trace::Fanout(vec![&mut recorder, x]);
            kernel.run(&mut host, &mut fan)
        }
        None => kernel.run(&mut host, &mut recorder),
    };
    host.farewell();
    let trace = assemble_trace(&opts.setup, recorder.events, &out.outcome, spec)?;
    Ok(ServeOutcome {
        trace,
        outcome: out.outcome,
        drift: out.drift,
        crc_rejected: host.crc_rejected(),
        chaos_injected: host.chaos_injected(),
    })
}

//! Transport endpoints: TCP sockets and Unix domain sockets behind one
//! address syntax.
//!
//! ```text
//! tcp:127.0.0.1:4400      a TCP host:port
//! unix:/tmp/msgorder.sock a Unix domain socket path
//! ```

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A listen/dial address: TCP or Unix domain socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP `host:port` address.
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    /// A human-readable message when the scheme is unknown or the
    /// address is empty/malformed.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr
                .rsplit_once(':')
                .is_none_or(|(host, _)| host.is_empty())
            {
                return Err(format!("tcp endpoint {addr:?} is not HOST:PORT"));
            }
            Ok(Endpoint::Tcp(addr.to_owned()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint has an empty path".to_owned());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else {
            Err(format!("endpoint {s:?} must start with `tcp:` or `unix:`"))
        }
    }

    /// Binds a listener at this endpoint. A stale Unix socket file from
    /// a previous run is removed first.
    ///
    /// # Errors
    /// The underlying bind error.
    pub fn listen(&self) -> io::Result<Listener> {
        match self {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// Dials this endpoint once.
    ///
    /// # Errors
    /// The underlying connect error.
    pub fn connect(&self) -> io::Result<Conn> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listener (either family). The Unix variant unlinks its
/// socket file on drop.
#[derive(Debug)]
pub enum Listener {
    /// A bound TCP listener.
    Tcp(TcpListener),
    /// A bound Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Accepts one connection (blocking unless
    /// [`set_nonblocking`](Listener::set_nonblocking) was called).
    ///
    /// # Errors
    /// The underlying accept error (`WouldBlock` when non-blocking and
    /// no peer is waiting).
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }

    /// Toggles non-blocking accept.
    ///
    /// # Errors
    /// The underlying socket error.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The endpoint this listener is bound to (TCP reports the actual
    /// local address, so port 0 resolves to the assigned port).
    ///
    /// # Errors
    /// The underlying socket error.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix listener"))?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(l) = self {
            if let Ok(addr) = l.local_addr() {
                if let Some(path) = addr.as_pathname() {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// One established connection (either family).
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    Unix(UnixStream),
}

impl Conn {
    /// Sets the read timeout (`None` blocks forever).
    ///
    /// # Errors
    /// The underlying socket error.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_schemes_and_rejects_garbage() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:4400"),
            Ok(Endpoint::Tcp("127.0.0.1:4400".into()))
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert!(Endpoint::parse("udp:1.2.3.4:1").is_err());
        assert!(Endpoint::parse("tcp:no-port").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["tcp:127.0.0.1:80", "unix:/tmp/a.sock"] {
            assert_eq!(Endpoint::parse(s).expect("parses").to_string(), s);
        }
    }
}

//! The connection supervisor: dialing with exponential backoff.
//!
//! The backoff schedule is the [`RetryConfig`] exponential curve from
//! the reliable-link retransmission machinery — `unit · 2^attempt`,
//! saturating — applied to wall-clock durations instead of virtual
//! ticks, so the transport and the protocol layer age their retries on
//! the same curve.

use crate::endpoint::{Conn, Endpoint};
use msgorder_protocols::RetryConfig;
use std::io;
use std::time::Duration;

/// A reconnect/backoff policy for one dialing side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    retry: RetryConfig,
    unit: Duration,
}

impl Backoff {
    /// Waits `unit` before the second attempt, doubling per further
    /// attempt, for at most `max_attempts` total attempts.
    pub fn new(unit: Duration, max_attempts: u32) -> Backoff {
        Backoff {
            // base_timeout 1 makes `RetryConfig::backoff(n)` the pure
            // saturating 2^n curve; `unit` scales it to wall time.
            retry: RetryConfig {
                base_timeout: 1,
                max_attempts,
            },
            unit,
        }
    }

    /// The pause after failed attempt number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let ticks = self.retry.backoff(attempt);
        self.unit
            .checked_mul(u32::try_from(ticks).unwrap_or(u32::MAX))
            .unwrap_or(Duration::MAX)
    }

    /// Total dial attempts before giving up.
    pub fn max_attempts(&self) -> u32 {
        self.retry.max_attempts
    }
}

impl Default for Backoff {
    /// 50 ms base, 8 attempts — ~6.4 s of total patience.
    fn default() -> Backoff {
        Backoff::new(Duration::from_millis(50), 8)
    }
}

/// Dials `endpoint`, retrying on the backoff schedule until it answers
/// or the attempt budget is spent.
///
/// # Errors
/// The last connect error once `backoff.max_attempts()` attempts all
/// failed.
pub fn connect_with_retry(endpoint: &Endpoint, backoff: &Backoff) -> io::Result<Conn> {
    let attempts = backoff.max_attempts().max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match endpoint.connect() {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts {
                    std::thread::sleep(backoff.delay(attempt));
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let b = Backoff::new(Duration::from_millis(10), 40);
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(3), Duration::from_millis(80));
        // Far past the cap the delay saturates instead of wrapping.
        assert!(b.delay(38) >= b.delay(20));
    }

    #[test]
    fn retry_gives_up_with_the_last_error() {
        let dead = Endpoint::Unix("/nonexistent/msgorder-test.sock".into());
        let err = connect_with_retry(&dead, &Backoff::new(Duration::from_millis(1), 3))
            .expect_err("nothing listens there");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}

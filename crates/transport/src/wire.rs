//! The wire protocol spoken over a framed connection.
//!
//! Three multiplexed channels:
//!
//! - [`CH_CONTROL`] — JSON [`ControlMsg`]: handshake and shutdown;
//! - [`CH_EVENT`] — JSON [`EventMsg`]: kernel → protocol, one framed
//!   [`HostEvent`] per sequence number;
//! - [`CH_ACTION`] — JSON [`ActionMsg`]: protocol → kernel, the action
//!   batch answering one event.
//!
//! Every event carries a per-node sequence number and every action
//! batch echoes it, which is what makes reconnection safe: after a
//! connection drop the kernel resends its in-flight event, and a client
//! that already processed it answers from its one-deep reply cache
//! instead of reprocessing (at-least-once delivery, exactly-once
//! processing).

use crate::endpoint::Conn;
use crate::frame::{self, Decoder, Frame};
use msgorder_simnet::{HostAction, HostEvent};
use msgorder_trace::Setup;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Channel id for [`ControlMsg`] frames.
pub const CH_CONTROL: u8 = 0;
/// Channel id for [`EventMsg`] frames (kernel → protocol).
pub const CH_EVENT: u8 = 1;
/// Channel id for [`ActionMsg`] frames (protocol → kernel).
pub const CH_ACTION: u8 = 2;

/// The highest wire version this build speaks. Version history:
///
/// - `1` — plain length-prefixed frames;
/// - `2` — every post-handshake frame carries a trailing CRC-32 over
///   `channel ‖ payload` (see [`crate::frame`]); corrupt frames are
///   skipped and counted instead of killing the connection.
///
/// Both handshake messages state the speaker's version and the
/// connection runs at the minimum of the two; the handshake itself is
/// always exchanged in version-1 framing so that negotiation works
/// before either side knows the outcome.
pub const WIRE_VERSION: u16 = 2;

/// Handshake and lifecycle messages on [`CH_CONTROL`].
// `Welcome` dwarfs the other variants because it carries the full run
// `Setup`, but handshake messages are exchanged once per connection and
// never stored in bulk, so boxing would complicate serde for no win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Client → server, first message on every (re)connection: which
    /// process this is, and the sequence number of the next event it
    /// expects (`0` on a fresh start).
    Hello {
        /// The client's process id.
        node: usize,
        /// Sequence number of the next unprocessed event.
        resume: u64,
        /// The highest wire version the client speaks.
        version: u16,
    },
    /// Server → client, answering a `Hello`: the run's full setup, from
    /// which the client instantiates its protocol and environment.
    Welcome {
        /// The run setup (also the header of the recorded trace).
        setup: Setup,
        /// The negotiated wire version (min of both sides); frames
        /// after this message use it.
        version: u16,
    },
    /// Server → client: the run is over, disconnect.
    Bye,
}

/// One framed kernel event on [`CH_EVENT`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventMsg {
    /// Per-node sequence number, starting at 0.
    pub seq: u64,
    /// The virtual time the event executes at.
    pub now: u64,
    /// The event itself.
    pub ev: HostEvent,
}

/// The action batch answering one [`EventMsg`], on [`CH_ACTION`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionMsg {
    /// Echo of the answered event's sequence number.
    pub seq: u64,
    /// The emitted actions, in emission order.
    pub actions: Vec<HostAction>,
}

/// A connection plus its incremental frame decoder: typed send/receive
/// of the wire messages.
#[derive(Debug)]
pub struct FramedConn {
    conn: Conn,
    decoder: Decoder,
    crc: bool,
    chaos: Option<WireChaos>,
}

/// Deterministic corruption injector for loopback chaos runs: before
/// selected frames, an extra copy with one bit flipped inside the CRC-
/// covered region is written, exercising the receiver's reject-and-
/// resync path without disturbing the genuine traffic.
#[derive(Debug)]
struct WireChaos {
    state: u64,
    injected: u64,
}

impl WireChaos {
    fn next(&mut self) -> u64 {
        // SplitMix64, same generator the chaos sweep uses.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn bad_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl FramedConn {
    /// Wraps an established connection.
    pub fn new(conn: Conn) -> FramedConn {
        FramedConn {
            conn,
            decoder: Decoder::new(),
            crc: false,
            chaos: None,
        }
    }

    /// The underlying connection (for socket options).
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// Switches both directions to wire-version-2 framing: outgoing
    /// frames gain a CRC-32, incoming frames are verified (mismatches
    /// skipped and counted). Call after the handshake negotiates
    /// version ≥ 2.
    pub fn enable_crc(&mut self) {
        self.crc = true;
        self.decoder.enable_crc();
    }

    /// Incoming frames discarded for checksum mismatch.
    pub fn crc_rejected(&self) -> u64 {
        self.decoder.crc_rejected()
    }

    /// Arms deterministic wire chaos (requires CRC framing): the first
    /// outgoing frame, and roughly a quarter of later ones, is preceded
    /// by a copy with one bit flipped in its CRC-covered region.
    pub fn enable_chaos(&mut self, seed: u64) {
        self.chaos = Some(WireChaos {
            state: seed,
            injected: 0,
        });
    }

    /// Corrupt frame copies injected so far by wire chaos.
    pub fn chaos_injected(&self) -> u64 {
        self.chaos.as_ref().map_or(0, |c| c.injected)
    }

    /// Serializes `msg` as JSON and writes it as one frame on
    /// `channel`.
    ///
    /// # Errors
    /// Serialization failures surface as `InvalidData`; otherwise the
    /// underlying write error.
    pub fn send<T: Serialize>(&mut self, channel: u8, msg: &T) -> io::Result<()> {
        let payload = serde_json::to_vec(msg).map_err(bad_data)?;
        let bytes = if self.crc {
            frame::encode_crc(channel, &payload).map_err(bad_data)?
        } else {
            frame::encode(channel, &payload).map_err(bad_data)?
        };
        if self.crc {
            if let Some(chaos) = self.chaos.as_mut() {
                let roll = chaos.next();
                if chaos.injected == 0 || roll & 3 == 0 {
                    // Flip one bit past the length prefix so the copy
                    // stays a well-framed, checksum-invalid frame.
                    let body = bytes.len() - 4;
                    let bit = chaos.next() as usize % (body * 8);
                    let mut dirty = bytes.clone();
                    dirty[4 + bit / 8] ^= 1 << (bit % 8);
                    chaos.injected += 1;
                    self.conn.write_all(&dirty)?;
                }
            }
        }
        self.conn.write_all(&bytes)?;
        self.conn.flush()
    }

    /// Blocks until one complete frame arrives.
    ///
    /// # Errors
    /// `UnexpectedEof` when the peer closed mid-stream; `InvalidData`
    /// on a framing violation; otherwise the underlying read error.
    pub fn recv(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.decoder.try_next().map_err(bad_data)? {
                return Ok(frame);
            }
            let mut buf = [0u8; 8192];
            let n = self.conn.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Receives one frame and decodes it as a `T`, requiring it to be
    /// on `channel`.
    ///
    /// # Errors
    /// `InvalidData` on a channel mismatch or a JSON decode failure;
    /// otherwise as [`recv`](FramedConn::recv).
    pub fn recv_on<T: Deserialize>(&mut self, channel: u8) -> io::Result<T> {
        let frame = self.recv()?;
        if frame.channel != channel {
            return Err(bad_data(format!(
                "expected channel {channel}, got {}",
                frame.channel
            )));
        }
        serde_json::from_slice(&frame.payload).map_err(bad_data)
    }
}

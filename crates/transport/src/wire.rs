//! The wire protocol spoken over a framed connection.
//!
//! Three multiplexed channels:
//!
//! - [`CH_CONTROL`] — JSON [`ControlMsg`]: handshake and shutdown;
//! - [`CH_EVENT`] — JSON [`EventMsg`]: kernel → protocol, one framed
//!   [`HostEvent`] per sequence number;
//! - [`CH_ACTION`] — JSON [`ActionMsg`]: protocol → kernel, the action
//!   batch answering one event.
//!
//! Every event carries a per-node sequence number and every action
//! batch echoes it, which is what makes reconnection safe: after a
//! connection drop the kernel resends its in-flight event, and a client
//! that already processed it answers from its one-deep reply cache
//! instead of reprocessing (at-least-once delivery, exactly-once
//! processing).

use crate::endpoint::Conn;
use crate::frame::{self, Decoder, Frame};
use msgorder_simnet::{HostAction, HostEvent};
use msgorder_trace::Setup;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Channel id for [`ControlMsg`] frames.
pub const CH_CONTROL: u8 = 0;
/// Channel id for [`EventMsg`] frames (kernel → protocol).
pub const CH_EVENT: u8 = 1;
/// Channel id for [`ActionMsg`] frames (protocol → kernel).
pub const CH_ACTION: u8 = 2;

/// Handshake and lifecycle messages on [`CH_CONTROL`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Client → server, first message on every (re)connection: which
    /// process this is, and the sequence number of the next event it
    /// expects (`0` on a fresh start).
    Hello {
        /// The client's process id.
        node: usize,
        /// Sequence number of the next unprocessed event.
        resume: u64,
    },
    /// Server → client, answering a `Hello`: the run's full setup, from
    /// which the client instantiates its protocol and environment.
    Welcome {
        /// The run setup (also the header of the recorded trace).
        setup: Setup,
    },
    /// Server → client: the run is over, disconnect.
    Bye,
}

/// One framed kernel event on [`CH_EVENT`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventMsg {
    /// Per-node sequence number, starting at 0.
    pub seq: u64,
    /// The virtual time the event executes at.
    pub now: u64,
    /// The event itself.
    pub ev: HostEvent,
}

/// The action batch answering one [`EventMsg`], on [`CH_ACTION`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionMsg {
    /// Echo of the answered event's sequence number.
    pub seq: u64,
    /// The emitted actions, in emission order.
    pub actions: Vec<HostAction>,
}

/// A connection plus its incremental frame decoder: typed send/receive
/// of the wire messages.
#[derive(Debug)]
pub struct FramedConn {
    conn: Conn,
    decoder: Decoder,
}

fn bad_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl FramedConn {
    /// Wraps an established connection.
    pub fn new(conn: Conn) -> FramedConn {
        FramedConn {
            conn,
            decoder: Decoder::new(),
        }
    }

    /// The underlying connection (for socket options).
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// Serializes `msg` as JSON and writes it as one frame on
    /// `channel`.
    ///
    /// # Errors
    /// Serialization failures surface as `InvalidData`; otherwise the
    /// underlying write error.
    pub fn send<T: Serialize>(&mut self, channel: u8, msg: &T) -> io::Result<()> {
        let payload = serde_json::to_vec(msg).map_err(bad_data)?;
        let bytes = frame::encode(channel, &payload).map_err(bad_data)?;
        self.conn.write_all(&bytes)?;
        self.conn.flush()
    }

    /// Blocks until one complete frame arrives.
    ///
    /// # Errors
    /// `UnexpectedEof` when the peer closed mid-stream; `InvalidData`
    /// on a framing violation; otherwise the underlying read error.
    pub fn recv(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.decoder.try_next().map_err(bad_data)? {
                return Ok(frame);
            }
            let mut buf = [0u8; 8192];
            let n = self.conn.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Receives one frame and decodes it as a `T`, requiring it to be
    /// on `channel`.
    ///
    /// # Errors
    /// `InvalidData` on a channel mismatch or a JSON decode failure;
    /// otherwise as [`recv`](FramedConn::recv).
    pub fn recv_on<T: Deserialize>(&mut self, channel: u8) -> io::Result<T> {
        let frame = self.recv()?;
        if frame.channel != channel {
            return Err(bad_data(format!(
                "expected channel {channel}, got {}",
                frame.channel
            )));
        }
        serde_json::from_slice(&frame.payload).map_err(bad_data)
    }
}

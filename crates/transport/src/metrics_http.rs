//! A tiny blocking HTTP exporter for the Prometheus text format.
//!
//! Scrapers (`curl`, Prometheus, the soak harness's own self-check)
//! GET any path on the bound endpoint and receive the current
//! [`SharedRegistry`] encoding as `text/plain; version=0.0.4`. The
//! server is deliberately minimal: one accept loop on a background
//! thread, one short-lived connection per scrape, no keep-alive, no
//! routing. It reuses the crate's [`Listener`]/[`Conn`] plumbing, so
//! `tcp:` and `unix:` endpoints both work.
//!
//! Robustness over features: a malformed, slow, or hostile client can
//! only lose its own connection — every per-connection error is
//! contained in the accept loop and never unwinds into the process
//! serving the actual protocol session.

use crate::endpoint::{Conn, Endpoint, Listener};
use msgorder_trace::SharedRegistry;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read timeout: a scraper that cannot finish its
/// request headers in this window is dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on buffered request bytes before we stop reading and
/// just answer; protects the exporter from header floods.
const MAX_REQUEST: usize = 8 * 1024;

/// A running metrics endpoint: background accept loop serving the
/// registry's current encoding to every connection.
///
/// Shut down explicitly with [`shutdown`](MetricsExporter::shutdown)
/// or implicitly on drop (both join the serving thread).
#[derive(Debug)]
pub struct MetricsExporter {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Starts serving `registry` on an already-bound listener (bind
    /// port 0 first to let the OS pick; the real address is available
    /// via [`endpoint`](MetricsExporter::endpoint)).
    ///
    /// # Errors
    /// The underlying socket error switching the listener to
    /// non-blocking accepts or resolving its local address.
    pub fn start(listener: Listener, registry: SharedRegistry) -> io::Result<MetricsExporter> {
        listener.set_nonblocking(true)?;
        let endpoint = listener.local_endpoint()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_loop(&listener, &registry, &thread_stop));
        Ok(MetricsExporter {
            endpoint,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound scrape address (port 0 resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.join();
    }
}

/// The accept loop: poll the non-blocking listener, answer each
/// connection, contain every per-connection failure.
fn serve_loop(listener: &Listener, registry: &SharedRegistry, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                // A broken scraper loses only its own scrape.
                let _ = answer(conn, registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off and keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads one request's headers (best effort) and writes the metrics
/// snapshot back. Any path and method get the same answer.
fn answer(mut conn: Conn, registry: &SharedRegistry) -> io::Result<()> {
    conn.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&chunk[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > MAX_REQUEST {
            break;
        }
    }
    let body = registry.encode();
    let header = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(header.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

/// Scrapes a running exporter once and returns the response body (the
/// Prometheus text payload). This is how the soak harness proves its
/// own endpoint answers before reporting success.
///
/// # Errors
/// Connection/read failures, or a response with no header/body split.
pub fn scrape(endpoint: &Endpoint) -> io::Result<String> {
    let mut conn = endpoint.connect()?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: msgorder\r\nConnection: close\r\n\r\n")?;
    conn.flush()?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "metrics endpoint answered {:?}",
                head.lines().next().unwrap_or("")
            ),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "metrics endpoint answered without a header/body split",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgorder_trace::registry::parse_samples;

    fn local_exporter(registry: SharedRegistry) -> MetricsExporter {
        let listener = Endpoint::parse("tcp:127.0.0.1:0")
            .expect("parses")
            .listen()
            .expect("binds");
        MetricsExporter::start(listener, registry).expect("starts")
    }

    #[test]
    fn serves_the_registry_over_http() {
        let registry = SharedRegistry::default();
        registry.with(|r| r.add_counter("msgorder_deliveries_total", &[], "deliveries", 42));
        let exporter = local_exporter(registry.clone());
        let body = scrape(exporter.endpoint()).expect("scrape succeeds");
        let samples = parse_samples(&body).expect("parseable exposition");
        assert_eq!(samples.get("msgorder_deliveries_total"), Some(&42.0));
        // A later scrape sees later values: it is a live feed, not a
        // bind-time snapshot.
        registry.with(|r| r.add_counter("msgorder_deliveries_total", &[], "deliveries", 8));
        let body = scrape(exporter.endpoint()).expect("second scrape succeeds");
        let samples = parse_samples(&body).expect("parseable exposition");
        assert_eq!(samples.get("msgorder_deliveries_total"), Some(&50.0));
        exporter.shutdown();
    }

    #[test]
    fn malformed_client_does_not_kill_the_exporter() {
        let registry = SharedRegistry::default();
        registry.with(|r| r.add_counter("msgorder_deliveries_total", &[], "deliveries", 1));
        let exporter = local_exporter(registry);
        // Garbage bytes, then immediate hangup.
        {
            let mut conn = exporter.endpoint().connect().expect("connects");
            let _ = conn.write_all(b"\x00\xff not http at all");
        }
        // An empty request (connect + close) as well.
        drop(exporter.endpoint().connect().expect("connects"));
        let body = scrape(exporter.endpoint()).expect("exporter still answers");
        assert!(body.contains("msgorder_deliveries_total 1"));
        exporter.shutdown();
    }
}

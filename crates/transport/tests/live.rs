//! End-to-end transport tests: frame-codec properties, and the PR's
//! headline guarantee — a trace recorded from a *real socket* run
//! (multiple OS threads speaking the framed wire protocol) replays
//! bit-exact in the discrete-event simulator: same fingerprint, same
//! event stream, same verdict.

use msgorder_simnet::{FaultModel, InProcessHost, LatencyModel, RealtimeKernel, Workload};
use msgorder_trace::{assemble_trace, replay, Recorder, Setup, Trace};
use msgorder_transport::wire::{ActionMsg, ControlMsg, EventMsg, FramedConn};
use msgorder_transport::{
    run_client, serve_on, ClientOptions, Decoder, Endpoint, Frame, ServeOptions,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn encode_all(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    frames
        .iter()
        .flat_map(|(ch, p)| msgorder_transport::frame::encode(*ch, p).expect("fits"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decoder reassembles any frame sequence from any split of the
    /// byte stream — TCP may deliver one byte at a time or everything
    /// at once.
    #[test]
    fn frame_codec_survives_arbitrary_split_reads(
        frames in proptest::collection::vec(
            (0u8..8, proptest::collection::vec(0u8..=255, 0..200)),
            1..8,
        ),
        chunk in 1usize..40,
    ) {
        let stream = encode_all(&frames);
        let mut dec = Decoder::new();
        let mut got: Vec<Frame> = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.try_next().expect("well-formed stream") {
                got.push(f);
            }
        }
        prop_assert_eq!(got.len(), frames.len());
        for (g, (ch, p)) in got.iter().zip(&frames) {
            prop_assert_eq!(g.channel, *ch);
            prop_assert_eq!(&g.payload, p);
        }
        prop_assert_eq!(dec.pending(), 0, "no bytes left over");
    }

    /// A truncated frame stays pending (never yields a partial frame),
    /// and completes once the remaining bytes arrive.
    #[test]
    fn partial_frames_wait_for_the_tail(
        payload in proptest::collection::vec(0u8..=255, 1..100),
        cut in 1usize..100,
    ) {
        let bytes = msgorder_transport::frame::encode(5, &payload).expect("fits");
        let cut = cut.min(bytes.len() - 1);
        let mut dec = Decoder::new();
        dec.push(&bytes[..cut]);
        prop_assert_eq!(dec.try_next().expect("prefix is well-formed"), None);
        dec.push(&bytes[cut..]);
        let f = dec.try_next().expect("well-formed").expect("complete now");
        prop_assert_eq!(f.payload, payload);
    }

    /// Length prefixes beyond the cap are rejected without waiting for
    /// (or allocating) the announced payload.
    #[test]
    fn oversized_lengths_are_rejected_up_front(
        excess in 1u32..1_000_000,
        channel in 0u8..=255,
    ) {
        let len = msgorder_transport::MAX_FRAME as u32 + excess;
        let mut dec = Decoder::new();
        dec.push(&len.to_le_bytes());
        dec.push(&[channel]);
        prop_assert!(dec.try_next().is_err());
    }

    /// A CRC-mode decoder fed arbitrary garbage, in arbitrary split
    /// positions, never panics: every well-framed-but-corrupt chunk is
    /// skipped and counted, and framing violations surface as errors.
    #[test]
    fn crc_decoder_never_panics_on_arbitrary_bytes(
        junk in proptest::collection::vec(0u8..=255, 0..600),
        chunk in 1usize..40,
    ) {
        let mut dec = Decoder::new();
        dec.enable_crc();
        'outer: for piece in junk.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.try_next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break 'outer, // framing violation: stream dead
                }
            }
        }
    }

    /// Flipping any single bit in the body of a checksummed frame makes
    /// the decoder reject it — CRC-32 detects all 1-bit errors.
    #[test]
    fn any_single_bit_flip_in_a_crc_frame_is_rejected(
        channel in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..100),
        flip in 0usize..1_000_000,
    ) {
        let clean = msgorder_transport::frame::encode_crc(channel, &payload).expect("fits");
        let body_bits = (clean.len() - 4) * 8;
        let bit = flip % body_bits;
        let mut dirty = clean;
        dirty[4 + bit / 8] ^= 1 << (bit % 8);
        let mut dec = Decoder::new();
        dec.enable_crc();
        dec.push(&dirty);
        prop_assert_eq!(dec.try_next(), Ok(None), "corrupt frame must not surface");
        prop_assert_eq!(dec.crc_rejected(), 1);
    }
}

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

fn sock_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "msgorder-live-{}-{}.sock",
        std::process::id(),
        SOCK_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

fn live_setup(protocol: &str, reliable: bool, messages: usize, spec: Option<&str>) -> Setup {
    Setup {
        processes: 3,
        latency: LatencyModel::Fixed(1),
        seed: 0xbeef,
        faults: FaultModel::none(),
        workload: Workload::uniform_random(3, messages, 0x5eed),
        protocol: protocol.to_owned(),
        reliable,
        spec: spec.map(str::to_owned),
        step_limit: 1_000_000,
    }
}

/// Runs `setup` live over real sockets: a serving thread and one client
/// thread per process, all speaking the framed wire protocol.
fn run_live(endpoint: Endpoint, setup: Setup) -> Trace {
    let opts = ServeOptions::new(endpoint.clone(), setup);
    let spec = opts.setup.spec_predicate().expect("valid spec");
    let listener = opts.endpoint.listen().expect("binds");
    let dial = listener.local_endpoint().expect("has an address");
    let clients: Vec<_> = (0..opts.setup.processes)
        .map(|node| {
            let copts = ClientOptions::new(dial.clone(), node);
            std::thread::spawn(move || run_client(&copts))
        })
        .collect();
    let outcome = serve_on(listener, &opts, spec.as_ref()).expect("live session runs");
    for (node, c) in clients.into_iter().enumerate() {
        let report = c.join().expect("client thread").expect("client succeeds");
        assert!(report.processed > 0, "node {node} processed events");
        assert_eq!(report.connects, 1, "node {node} never reconnected");
    }
    let r = outcome.outcome.expect("no protocol bug");
    assert!(r.completed && !r.halted, "live run ran to quiescence");
    assert!(outcome.drift.dispatches > 0);
    outcome.trace
}

/// The acceptance-criteria run: 3 real processes (threads speaking the
/// real wire protocol over a Unix socket), causal-rst, 200 messages —
/// the recorded trace replays bit-exact with the same verdict.
#[test]
fn unix_socket_run_replays_bit_exact() {
    let trace = run_live(
        Endpoint::Unix(sock_path()),
        live_setup("causal-rst", false, 200, Some("causal")),
    );
    assert!(
        trace.run_events().count() >= 800,
        "200 messages = 800 run events"
    );
    let report = replay(&trace).expect("replays");
    let re = report.reexecution.as_ref().expect("registry protocol");
    assert!(re.identical, "event streams match bit-exact");
    assert_eq!(re.fingerprint, trace.footer.fingerprint);
    assert_eq!(report.verdict_ok, Some(true), "verdict reproduced");
    assert!(report.ok(), "{report:?}");
    assert_eq!(
        trace.footer.verdict.as_ref().map(|v| v.violated),
        Some(false),
        "causal-rst satisfies the causal spec"
    );
}

/// Same guarantee over TCP loopback, with the reliable link layered
/// under the protocol (timers and retransmission state cross the
/// boundary too).
#[test]
fn tcp_run_replays_bit_exact() {
    let trace = run_live(
        Endpoint::Tcp("127.0.0.1:0".into()),
        live_setup("fifo", true, 40, Some("fifo")),
    );
    let report = replay(&trace).expect("replays");
    assert!(report.ok(), "{report:?}");
}

/// Every registry protocol (plus its reliable variant where supported)
/// runs unmodified behind the ProtocolHost boundary: the realtime
/// kernel + host pipeline records a trace that replays bit-exact.
#[test]
fn every_registry_protocol_replays_from_the_realtime_kernel() {
    use msgorder_protocols::ProtocolKind;
    for kind in ProtocolKind::fixed() {
        let reliabilities: &[bool] = if kind.supports_retransmission() {
            &[false, true]
        } else {
            &[false]
        };
        for &reliable in reliabilities {
            let setup = live_setup(kind.name(), reliable, 12, None);
            let n = setup.processes;
            let mut host = InProcessHost::new(n, &setup.workload, |node| {
                kind.instantiate_with(n, node, reliable)
            });
            let kernel = RealtimeKernel::new(setup.config(), &setup.workload)
                .with_step_limit(setup.step_limit);
            let mut recorder = Recorder::default();
            let out = kernel.run(&mut host, &mut recorder);
            let trace =
                assemble_trace(&setup, recorder.events, &out.outcome, None).expect("assembles");
            let report = replay(&trace).expect("replays");
            assert!(
                report.ok(),
                "{} (reliable={reliable}) diverged: {report:?}",
                kind.name()
            );
        }
    }
}

/// The adversarial acceptance criterion, over a real loopback socket:
/// with wire chaos armed on both sides of a version-2 session, every
/// injected CRC-corrupt frame is rejected and counted at the receiving
/// end, the connection resyncs instead of dying, the run completes,
/// and the recorded trace still replays bit-exact with the same
/// verdict — corruption on the wire is invisible to the kernel.
#[test]
fn wire_chaos_frames_are_rejected_counted_and_replay_survives() {
    let setup = live_setup("causal-rst", false, 60, Some("causal"));
    let mut opts = ServeOptions::new(Endpoint::Unix(sock_path()), setup);
    opts.wire_chaos = Some(0xC0FFEE);
    let spec = opts.setup.spec_predicate().expect("valid spec");
    let listener = opts.endpoint.listen().expect("binds");
    let dial = listener.local_endpoint().expect("has an address");
    let clients: Vec<_> = (0..opts.setup.processes)
        .map(|node| {
            let mut copts = ClientOptions::new(dial.clone(), node);
            copts.wire_chaos = Some(0xBAD5_EED5);
            std::thread::spawn(move || run_client(&copts))
        })
        .collect();
    let outcome = serve_on(listener, &opts, spec.as_ref()).expect("live session runs");
    let mut client_rejected = 0u64;
    for (node, c) in clients.into_iter().enumerate() {
        let report = c.join().expect("client thread").expect("client succeeds");
        assert!(report.processed > 0, "node {node} processed events");
        assert_eq!(report.connects, 1, "corruption must not kill the link");
        client_rejected += report.crc_rejected;
    }
    assert!(outcome.chaos_injected > 0, "server-side chaos really fired");
    assert!(
        client_rejected >= outcome.chaos_injected,
        "every server-injected corrupt frame was rejected client-side \
         ({client_rejected} < {})",
        outcome.chaos_injected
    );
    assert!(
        outcome.crc_rejected > 0,
        "client-injected corrupt frames were rejected server-side"
    );
    let r = outcome.outcome.expect("no protocol bug");
    assert!(r.completed && !r.halted, "chaos'd run ran to quiescence");
    let report = replay(&outcome.trace).expect("replays");
    let re = report.reexecution.as_ref().expect("registry protocol");
    assert!(re.identical, "event streams match bit-exact");
    assert_eq!(re.fingerprint, outcome.trace.footer.fingerprint);
    assert_eq!(report.verdict_ok, Some(true), "verdict reproduced");
    assert_eq!(
        outcome.trace.footer.verdict.as_ref().map(|v| v.violated),
        Some(false),
        "causal-rst still satisfies the causal spec under wire chaos"
    );
}

/// A client whose connection dies mid-run redials through the
/// supervisor, resumes at the in-flight event, and the session still
/// produces a bit-exact replayable trace: the wire protocol's sequence
/// numbers + reply cache make the drop invisible to the kernel.
#[test]
fn client_reconnects_after_a_dropped_connection() {
    let endpoint = Endpoint::Unix(sock_path());
    let setup = live_setup("fifo", false, 30, Some("fifo"));
    let opts = ServeOptions::new(endpoint.clone(), setup);
    let spec = opts.setup.spec_predicate().expect("valid spec");
    let listener = opts.endpoint.listen().expect("binds");
    let dial = listener.local_endpoint().expect("has an address");

    // Nodes 1 and 2 are ordinary clients; node 0 drops its connection
    // after a few events and relies on the supervisor to resume.
    let mut clients = Vec::new();
    for node in 1..3 {
        let copts = ClientOptions::new(dial.clone(), node);
        clients.push(std::thread::spawn(move || {
            run_client(&copts).expect("client succeeds").processed
        }));
    }
    let flaky_dial = dial.clone();
    let flaky = std::thread::spawn(move || flaky_client(&flaky_dial, 0));

    let outcome = serve_on(listener, &opts, spec.as_ref()).expect("live session runs");
    let r = outcome.outcome.expect("no protocol bug");
    assert!(r.completed, "run survived the drop");
    for c in clients {
        assert!(c.join().expect("client thread") > 0);
    }
    let reconnects = flaky.join().expect("flaky thread");
    assert!(reconnects >= 2, "the flaky client really did redial");
    let report = replay(&outcome.trace).expect("replays");
    assert!(report.ok(), "{report:?}");
}

/// A hand-rolled client that processes 5 events, drops the connection,
/// then reconnects (preserving protocol state and the reply cache) and
/// finishes normally. Returns the number of connections it made.
fn flaky_client(endpoint: &Endpoint, node: usize) -> u32 {
    use msgorder_simnet::{HostEnv, Protocol, ProtocolHost};
    use msgorder_transport::wire::{CH_ACTION, CH_CONTROL, CH_EVENT};

    let mut connects = 0u32;
    let mut state: Option<(Box<dyn Protocol>, HostEnv)> = None;
    let mut cache: Option<ActionMsg> = None;
    let mut next_seq = 0u64;
    loop {
        let conn = msgorder_transport::connect_with_retry(
            endpoint,
            &msgorder_transport::Backoff::new(Duration::from_millis(10), 10),
        )
        .expect("dials");
        connects += 1;
        let mut framed = FramedConn::new(conn);
        framed
            .send(
                CH_CONTROL,
                &ControlMsg::Hello {
                    node,
                    resume: next_seq,
                    // This hand-rolled client never enables CRC framing,
                    // so it must pin the connection at wire version 1.
                    version: 1,
                },
            )
            .expect("hello");
        let ControlMsg::Welcome { setup, version } = framed.recv_on(CH_CONTROL).expect("welcome")
        else {
            panic!("expected Welcome");
        };
        assert_eq!(version, 1, "server must honor a v1-only peer");
        if state.is_none() {
            let kind = msgorder_protocols::ProtocolKind::by_name(&setup.protocol, None)
                .expect("known protocol");
            state = Some((
                kind.instantiate_with(setup.processes, node, setup.reliable),
                HostEnv::new(node, setup.processes, &setup.workload),
            ));
        }
        let mut handled_this_conn = 0u32;
        // Not `while let`: the mid-run hang-up moves `framed` out of the loop.
        #[allow(clippy::while_let_loop)]
        loop {
            let frame = match framed.recv() {
                Ok(f) => f,
                Err(_) => break, // server closed or timed out: redial
            };
            match frame.channel {
                CH_CONTROL => return connects, // Bye
                CH_EVENT => {
                    let msg: EventMsg = serde_json::from_slice(&frame.payload).expect("decodes");
                    if msg.seq < next_seq {
                        let reply = cache.clone().expect("cached reply for duplicate");
                        framed.send(CH_ACTION, &reply).expect("resend");
                        continue;
                    }
                    let (proto, env) = state.as_mut().expect("instantiated");
                    env.set_now(msg.now);
                    proto.process_event(env, msg.ev);
                    let reply = ActionMsg {
                        seq: msg.seq,
                        actions: env.take_actions(),
                    };
                    next_seq = msg.seq + 1;
                    framed.send(CH_ACTION, &reply).expect("reply");
                    cache = Some(reply);
                    handled_this_conn += 1;
                    // First connection only: hang up mid-run to force
                    // the supervisor's resume path.
                    if connects == 1 && handled_this_conn == 5 {
                        drop(framed);
                        break;
                    }
                }
                other => panic!("unexpected channel {other}"),
            }
        }
    }
}

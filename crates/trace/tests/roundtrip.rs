//! Record → serialize → parse → replay round-trips, across protocols,
//! fault models, and seeds, plus the trace-driven regression tests for
//! the reliable-link timer audit (ISSUE satellites 1 and 5).

use msgorder_predicate::catalog;
use msgorder_runs::{MessageId, ProcessId};
use msgorder_simnet::{
    Ctx, FaultModel, KernelEvent, LatencyModel, PayloadKind, Protocol, Workload,
};
use msgorder_trace::{record, record_with, replay, Setup, SimErrorExt, Trace, TraceError};
use proptest::prelude::*;

fn setup(protocol: &str, reliable: bool, faults: FaultModel, seed: u64, msgs: usize) -> Setup {
    Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 200 },
        seed,
        faults,
        workload: Workload::uniform_random(3, msgs, seed),
        protocol: protocol.into(),
        reliable,
        spec: Some("fifo".into()),
        step_limit: 1_000_000,
    }
}

fn fault_grid() -> Vec<(FaultModel, bool)> {
    vec![
        (FaultModel::none(), false),
        (FaultModel::none().with_drop(0.3).unwrap(), true),
        (
            FaultModel::none()
                .with_drop(0.1)
                .unwrap()
                .with_duplication(0.2)
                .unwrap()
                .with_partition(0, 1, 50, 400),
            true,
        ),
        (FaultModel::none().with_crash(2, 100, Some(600)), false),
    ]
}

/// The tentpole acceptance check: for every protocol × fault model ×
/// seed, the serialized trace round-trips bit-exactly and replays with
/// an identical fingerprint, stats, and verify verdict.
#[test]
fn record_replay_round_trip_grid() {
    for protocol in ["async", "fifo", "causal-rst", "sync"] {
        for (faults, reliable) in fault_grid() {
            for seed in [1u64, 7, 42] {
                let s = setup(protocol, reliable, faults.clone(), seed, 12);
                let recorded = record(&s).expect("registry protocol records");
                let text = recorded.trace.to_jsonl().expect("serializes");
                let parsed = Trace::from_jsonl(&text).expect("jsonl parses back");
                assert_eq!(parsed, recorded.trace, "serialization round-trips");

                let report = replay(&parsed).expect("replay runs");
                assert!(report.fingerprint_ok, "{protocol}/{seed}: fingerprint");
                let re = report.reexecution.as_ref().expect("registry protocol");
                assert!(re.identical, "{protocol}/{seed}: event streams differ");
                assert!(re.stats_match, "{protocol}/{seed}: stats differ");
                assert!(re.error_match, "{protocol}/{seed}: outcome differs");
                assert_eq!(re.fingerprint, parsed.footer.fingerprint);
                assert_eq!(
                    report.verdict_ok,
                    Some(true),
                    "{protocol}/{seed}: verdict did not reproduce"
                );
            }
        }
    }
}

/// A replayed trace fed a *different* decision stream than it recorded
/// is flagged, not silently accepted.
#[test]
fn tampered_trace_fails_fingerprint() {
    let s = setup("fifo", false, FaultModel::none(), 3, 8);
    let mut trace = record(&s).expect("records").trace;
    // Flip one wire decision: the fingerprint must notice.
    let pos = trace
        .events
        .iter()
        .position(|e| matches!(e, KernelEvent::Wire(_)))
        .expect("some wire record");
    if let KernelEvent::Wire(w) = &mut trace.events[pos] {
        w.delay += 1;
    }
    let report = replay(&trace).expect("replay runs");
    assert!(
        !report.fingerprint_ok,
        "tampering must break the fingerprint"
    );
    assert!(!report.ok());
}

/// Satellite 1 regression, trace-driven: two messages in flight from the
/// same sender to *different* destinations under heavy ack loss retry
/// independently — per-message retransmission counts stay within the
/// link's attempt budget (a shared/colliding timer id would either starve
/// one message or retransmit past the budget).
#[test]
fn reliable_retries_are_per_message_across_destinations() {
    let workload = Workload {
        sends: vec![
            msgorder_simnet::SendSpec {
                at: 0,
                src: 0,
                dst: 1,
                color: None,
            },
            msgorder_simnet::SendSpec {
                at: 0,
                src: 0,
                dst: 2,
                color: None,
            },
        ],
    };
    let s = Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 20 },
        seed: 11,
        faults: FaultModel::none().with_drop(0.7).unwrap(),
        workload,
        protocol: "fifo".into(),
        reliable: true,
        spec: None,
        step_limit: 1_000_000,
    };
    let trace = record(&s).expect("records").trace;

    // Count wire frames per user message (original + retransmissions).
    let mut frames = std::collections::BTreeMap::new();
    let mut retx = std::collections::BTreeMap::new();
    for ev in &trace.events {
        if let KernelEvent::Wire(w) = ev {
            if let PayloadKind::User {
                msg, retransmit, ..
            } = w.payload
            {
                *frames.entry(msg.0).or_insert(0u32) += 1;
                if retransmit {
                    *retx.entry(msg.0).or_insert(0u32) += 1;
                }
            }
        }
    }
    assert_eq!(frames.len(), 2, "both messages hit the wire");
    // Default RetryConfig: 10 total attempts → at most 9 retransmissions
    // per message, counted independently per destination.
    for (msg, n) in &frames {
        assert!(
            *n <= 10,
            "message {msg} sent {n} frames (attempt budget is 10)"
        );
    }
    for (msg, n) in &retx {
        assert!(*n <= 9, "message {msg} retransmitted {n} times");
    }
    // Replay reproduces the same retry schedule bit-exactly.
    let report = replay(&trace).expect("replay runs");
    assert!(
        report.ok(),
        "reliable-link trace must replay deterministically"
    );
}

/// Satellite 1's second claim: once the link gives up on a frame (final
/// backoff expired), a late ack cannot resurrect the retry timer — the
/// trace shows no user retransmissions after the last scheduled attempt.
#[test]
fn no_retransmissions_after_the_attempt_budget() {
    // Partition the 0-1 link long enough to eat every attempt and the
    // acks, then heal: anything arriving afterwards must not trigger
    // more retransmissions.
    let workload = Workload {
        sends: vec![msgorder_simnet::SendSpec {
            at: 0,
            src: 0,
            dst: 1,
            color: None,
        }],
    };
    let s = Setup {
        processes: 2,
        latency: LatencyModel::Fixed(5),
        seed: 1,
        faults: FaultModel::none().with_partition(0, 1, 0, 2_000_000),
        workload,
        protocol: "fifo".into(),
        reliable: true,
        spec: None,
        step_limit: 1_000_000,
    };
    let trace = record(&s).expect("records").trace;
    let user_frames: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            KernelEvent::Wire(w) => match w.payload {
                PayloadKind::User { .. } => Some(w),
                PayloadKind::Control { .. } => None,
            },
            _ => None,
        })
        .collect();
    assert_eq!(
        user_frames.len(),
        10,
        "exactly the attempt budget, not one frame more"
    );
    assert!(
        user_frames.iter().all(|w| w.dropped.is_some()),
        "the partition ate every attempt"
    );
}

/// A protocol that delivers twice — the counterexample-producing bug
/// used to exercise `SimError::as_trace`.
struct DoubleDeliver;

impl Protocol for DoubleDeliver {
    fn on_send_request(&mut self, ctx: &mut Ctx<'_>, msg: MessageId) {
        ctx.send_user(msg, Vec::new());
    }
    fn on_user_frame(
        &mut self,
        ctx: &mut Ctx<'_>,
        _from: ProcessId,
        msg: MessageId,
        _tag: Vec<u8>,
    ) {
        ctx.deliver(msg);
        ctx.deliver(msg); // bug
    }
}

/// Satellite 5: a counterexample converts to a trace that reproduces the
/// identical error at the identical node and time, and the trace replays
/// (reconstructing the failing prefix) cleanly.
#[test]
fn sim_error_as_trace_reproduces_the_counterexample() {
    let s = Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 100 },
        seed: 5,
        faults: FaultModel::none(),
        workload: Workload::uniform_random(3, 6, 5),
        protocol: "double-deliver".into(), // not in the registry
        reliable: false,
        spec: Some("fifo".into()),
        step_limit: 1_000_000,
    };
    let recorded = record_with(&s, |_| DoubleDeliver).expect("records");
    let err = recorded
        .outcome
        .as_ref()
        .expect_err("the bug fires")
        .clone();
    let trace = err
        .as_trace_with(&s, |_| DoubleDeliver)
        .expect("as_trace reproduces");
    let summary = trace.footer.error.as_ref().expect("error captured");
    assert_eq!(summary.node, err.node.0);
    assert_eq!(summary.time, err.time);
    assert_eq!(summary.msg, err.msg.map(|m| m.0));
    assert!(
        summary.kind.contains("invalid delivery"),
        "{}",
        summary.kind
    );

    // The protocol is not in the registry: replay validates integrity and
    // re-verifies the spec over the reconstructed failing prefix.
    let report = replay(&trace).expect("replay runs");
    assert!(report.fingerprint_ok);
    assert!(report.reexecution.is_none());
    assert!(report.ok());
}

/// `as_trace` against a setup that does *not* reproduce the error is a
/// divergence, not a silently wrong trace.
#[test]
fn as_trace_flags_divergent_setups() {
    let s = Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 100 },
        seed: 5,
        faults: FaultModel::none(),
        workload: Workload::uniform_random(3, 6, 5),
        protocol: "fifo".into(),
        reliable: false,
        spec: None,
        step_limit: 1_000_000,
    };
    let err = record_with(&s, |_| DoubleDeliver)
        .expect("records")
        .outcome
        .expect_err("bug fires");
    // Re-recording with the *healthy* registry fifo protocol cannot
    // reproduce the counterexample.
    match err.as_trace(&s) {
        Err(TraceError::Divergence(_)) => {}
        other => panic!("expected divergence, got {other:?}"),
    }
}

/// Online-halted runs record the halted prefix and still replay: the
/// re-executed stream extends the recording, and the verdict reproduces.
#[test]
fn halted_recording_replays_as_a_prefix() {
    let pred = catalog::by_name("fifo").expect("catalog fifo").predicate;
    let s = Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 500 },
        seed: 2,
        faults: FaultModel::none(),
        workload: Workload::uniform_random(3, 30, 2),
        protocol: "async".into(),
        reliable: false,
        spec: Some("fifo".into()),
        step_limit: 1_000_000,
    };
    // Find a seed where async actually violates fifo.
    let mut s = s;
    let mut chosen = None;
    for seed in 0..50u64 {
        s.seed = seed;
        s.workload = Workload::uniform_random(3, 30, seed);
        let recorded = record(&s).expect("records");
        if recorded
            .trace
            .footer
            .verdict
            .as_ref()
            .is_some_and(|v| v.violated)
        {
            chosen = Some(seed);
            break;
        }
    }
    let seed = chosen.expect("async violates fifo on some small seed");
    s.seed = seed;
    s.workload = Workload::uniform_random(3, 30, seed);

    let mut monitor = msgorder_protocols::OnlineMonitor::halting(&pred);
    let kind = msgorder_protocols::ProtocolKind::by_name("async", None).unwrap();
    let recorded = msgorder_trace::record_with_extra(
        &s,
        |node| kind.instantiate_with(3, node, false),
        Some(&mut monitor),
    )
    .expect("records");
    assert!(monitor.violated());
    let trace = recorded.trace;
    assert!(trace.footer.halted, "the monitor halted the run");
    let verdict = trace.footer.verdict.as_ref().expect("spec verdict");
    assert!(verdict.violated);

    let report = replay(&trace).expect("replay runs");
    assert!(report.ok(), "halted trace replays as a prefix: {report:?}");
}

/// Malformed trace files are structured errors, not panics.
#[test]
fn malformed_jsonl_is_rejected_with_structure() {
    assert!(matches!(Trace::from_jsonl(""), Err(TraceError::Schema(_))));
    assert!(matches!(
        Trace::from_jsonl("{\"nonsense\":1}\n"),
        Err(TraceError::Parse(_))
    ));
    let s = setup("fifo", false, FaultModel::none(), 1, 4);
    let good = record(&s)
        .expect("records")
        .trace
        .to_jsonl()
        .expect("serializes");
    // Drop the footer line.
    let truncated: String = good
        .lines()
        .filter(|l| !l.contains("Footer"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(matches!(
        Trace::from_jsonl(&truncated),
        Err(TraceError::Schema(_))
    ));
    // Future schema versions are refused, not misread.
    let bumped = good.replacen("\"version\":1", "\"version\":999", 1);
    assert!(matches!(
        Trace::from_jsonl(&bumped),
        Err(TraceError::Schema(_))
    ));
}

#[test]
fn unknown_protocol_is_a_structured_error() {
    let s = setup("no-such-protocol", false, FaultModel::none(), 1, 4);
    assert!(matches!(record(&s), Err(TraceError::UnknownProtocol(_))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of the round-trip: arbitrary (protocol, faults,
    /// seed, size) → identical fingerprint, stats, and verdict under
    /// replay.
    #[test]
    fn round_trip_property(
        seed in 0u64..500,
        msgs in 2usize..20,
        proto_ix in 0usize..4,
        fault_ix in 0usize..4,
    ) {
        let protocol = ["async", "fifo", "causal-rst", "sync"][proto_ix];
        let (faults, reliable) = fault_grid().swap_remove(fault_ix);
        let mut s = setup(protocol, reliable, faults, seed, msgs);
        s.workload = Workload::uniform_random(3, msgs, seed);
        let recorded = record(&s).expect("records");
        let parsed = Trace::from_jsonl(&recorded.trace.to_jsonl().expect("serializes")).expect("parses");
        prop_assert_eq!(&parsed, &recorded.trace);
        let report = replay(&parsed).expect("replays");
        prop_assert!(report.ok(), "replay diverged: {:?}", report);
    }
}

//! Adversarial fault-model guarantees at the trace layer.
//!
//! Two invariants anchor this PR:
//!
//! 1. **Quiet means bit-identical.** A [`FaultModel`] whose adversarial
//!    knobs are all zero must produce *exactly* the event stream the
//!    pre-adversarial kernel produced — same RNG draws, same schedule,
//!    same fingerprint. The pinned fingerprints below were captured
//!    from the kernel before the adversarial machinery existed; if one
//!    moves, benign runs are paying for faults nobody injected.
//! 2. **Noisy still replays.** Runs with corruption, forgery, stale
//!    replay, and reordering enabled record every injected fault as a
//!    trace decision, so the recording replays bit-exact and the
//!    verdict reproduces.

use msgorder_simnet::{CrashSchedule, FaultModel, LatencyModel, Workload};
use msgorder_trace::{record, replay, Setup, Trace};
use std::path::PathBuf;

/// The CLI's `simulate` setup for 3 processes, 10 messages, drop 0.2,
/// dup 0.1, reliable link — the configuration the baselines were
/// captured under.
fn baseline_setup(protocol: &str, seed: u64) -> Setup {
    Setup {
        processes: 3,
        latency: LatencyModel::Uniform { lo: 1, hi: 800 },
        seed,
        faults: FaultModel::none()
            .with_drop(0.2)
            .and_then(|f| f.with_duplication(0.1))
            .expect("valid probabilities"),
        workload: Workload::uniform_random(3, 10, seed),
        protocol: protocol.to_owned(),
        reliable: true,
        spec: None,
        step_limit: 1_000_000,
    }
}

/// Fingerprints captured from the kernel *before* the adversarial
/// fault model existed. A quiet `AdversarialModel` must not perturb a
/// single RNG draw, so these are equality pins, not golden updates.
#[test]
fn quiet_adversarial_model_keeps_preadversarial_fingerprints() {
    let pins: &[(&str, u64, u64)] = &[
        ("fifo", 3, 10447233090107869491),
        ("fifo", 11, 560338282453771713),
        ("causal-rst", 3, 8103374360421895925),
        ("causal-rst", 11, 3189633879455296089),
        ("sync", 3, 3858905718874074982),
        ("sync", 11, 14865458837620922709),
    ];
    for &(protocol, seed, want) in pins {
        let recorded = record(&baseline_setup(protocol, seed)).expect("records");
        assert_eq!(
            recorded.trace.footer.fingerprint, want,
            "{protocol} seed={seed}: quiet adversarial model changed the run"
        );
    }
}

/// Same pin through a crash/restart schedule (epoch machinery present
/// but every epoch stays 0 until a restart completes — and even then,
/// only *control* frames change, so a crash-free protocol layer keeps
/// its bytes).
#[test]
fn quiet_adversarial_model_keeps_crash_schedule_fingerprint() {
    let mut faults = FaultModel::none().with_drop(0.1).expect("valid");
    faults.crashes = vec![CrashSchedule {
        process: 1,
        at: 200,
        restart: Some(900),
    }];
    let setup = Setup {
        processes: 4,
        latency: LatencyModel::Uniform { lo: 1, hi: 800 },
        seed: 7,
        faults,
        workload: Workload::uniform_random(4, 12, 7),
        protocol: "flush".to_owned(),
        reliable: false,
        spec: None,
        step_limit: 1_000_000,
    };
    let recorded = record(&setup).expect("records");
    assert_eq!(recorded.trace.footer.fingerprint, 14055127132968614344);
}

/// Explicitly setting every adversarial knob to `0.0` is
/// indistinguishable from never touching them: a zero knob must not
/// consume a single draw from the fault RNG stream.
#[test]
fn explicit_zero_knobs_are_bit_identical_to_untouched_model() {
    for protocol in ["fifo", "causal-rst", "sync"] {
        let plain = record(&baseline_setup(protocol, 5)).expect("records");
        let mut setup = baseline_setup(protocol, 5);
        setup.faults = setup
            .faults
            .with_corruption(0.0)
            .and_then(|f| f.with_forgery(0.0))
            .and_then(|f| f.with_stale_replay(0.0))
            .and_then(|f| f.with_reordering(0.0))
            .expect("zero is a valid probability");
        let zeroed = record(&setup).expect("records");
        assert_eq!(
            plain.trace.footer.fingerprint, zeroed.trace.footer.fingerprint,
            "{protocol}: zeroed adversarial knobs perturbed the run"
        );
    }
}

/// Noisy adversarial runs record their injections as decisions: the
/// trace replays bit-exact and reproduces the recorded outcome, for
/// every registry protocol that can take the full fault cocktail.
#[test]
fn adversarial_runs_replay_bit_exact() {
    for protocol in ["async", "fifo", "causal-rst", "causal-ses", "flush", "sync"] {
        for seed in [2u64, 9, 23] {
            let mut setup = baseline_setup(protocol, seed);
            setup.reliable = false;
            setup.faults = setup
                .faults
                .with_corruption(0.15)
                .and_then(|f| f.with_forgery(0.1))
                .and_then(|f| f.with_stale_replay(0.1))
                .and_then(|f| f.with_reordering(0.2))
                .expect("valid probabilities");
            let recorded = record(&setup).expect("records");
            let report = replay(&recorded.trace).expect("replays");
            assert!(
                report.ok(),
                "{protocol} seed={seed}: adversarial trace diverged: {report:?}"
            );
        }
    }
}

/// The checked-in golden adversarial counterexample (shrunk from a
/// chaos finding) replays bit-exact: its wire records carry corrupt
/// decisions and a structured rejection, so this pins the extended
/// trace schema and fingerprint mix.
#[test]
fn golden_adversarial_trace_replays() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/shrunk-adversarial-v1.jsonl");
    let trace = Trace::read(path.to_str().expect("utf-8 path")).expect("reads");
    assert!(
        !trace.header.setup.faults.adversarial.is_quiet(),
        "golden trace must carry a noisy adversarial model"
    );
    let report = replay(&trace).expect("replays");
    assert!(report.ok(), "golden adversarial trace diverged: {report:?}");
}

//! Observability invariants (PR 9): the Prometheus text encoding
//! round-trips exactly, delta draining is merge-associative across
//! observers, and the latency tracker's memory stays bounded under
//! loss — the property behind the soak harness's multi-hour honesty.

use msgorder_runs::{EventKind, MessageId, SystemEvent};
use msgorder_simnet::{DropReason, FaultModel, KernelEvent, PayloadKind, WireRecord};
use msgorder_trace::registry::{declare_run_families, names, parse_samples};
use msgorder_trace::{Histogram, MetricsObserver, MetricsRegistry};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// splitmix64 — cheap, well-mixed, and dependency-free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn get(parsed: &BTreeMap<String, f64>, key: &str) -> Option<f64> {
    parsed.get(key).copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → parse → de-cumulate reproduces every histogram bucket,
    /// the count, and the sum. Samples are capped below 2^40 so sums
    /// stay integer-exact through the f64 of `parse_samples`.
    #[test]
    fn prometheus_text_round_trips_histograms(seed in 0u64..10_000, samples in 1usize..300) {
        let mut h = Histogram::new();
        let mut s = seed;
        for _ in 0..samples {
            s = mix(s);
            // Spread magnitudes across many buckets, max < 2^40.
            h.record((s >> 24) >> (s % 37));
        }

        let mut reg = MetricsRegistry::new();
        reg.merge_histogram(
            names::DELIVERY_LATENCY,
            &[],
            names::HELP_DELIVERY_LATENCY,
            &h,
        );
        let text = reg.encode();
        let parsed = parse_samples(&text);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed);
        let parsed = parsed.unwrap();

        let name = names::DELIVERY_LATENCY;
        prop_assert_eq!(get(&parsed, &format!("{name}_count")), Some(h.count as f64));
        prop_assert_eq!(get(&parsed, &format!("{name}_sum")), Some(h.sum as f64));
        prop_assert_eq!(
            get(&parsed, &format!("{name}_bucket{{le=\"+Inf\"}}")),
            Some(h.count as f64)
        );

        // De-cumulate the `le` series back into per-bucket counts.
        let mut prev = 0.0;
        for (i, &b) in h.buckets.iter().enumerate() {
            let le = (1u128 << (i + 1)) - 1;
            match get(&parsed, &format!("{name}_bucket{{le=\"{le}\"}}")) {
                Some(cum) => {
                    prop_assert_eq!(cum - prev, b as f64, "bucket {} disagrees", i);
                    prev = cum;
                }
                // Buckets past the highest occupied one are elided —
                // they must be empty.
                None => prop_assert_eq!(b, 0, "bucket {} dropped despite samples", i),
            }
        }
        prop_assert_eq!(prev, h.count as f64);
    }

    /// Two observers over interleaved halves of a stream, drained into
    /// one registry, report exactly what one observer over the merged
    /// stream reports — the associativity the soak harness leans on
    /// when episodes drain concurrently-accumulated deltas.
    #[test]
    fn split_observers_merge_to_the_whole(seed in 0u64..5_000, msgs in 2usize..60) {
        let stream = synthetic_stream(seed, msgs);
        let faults = FaultModel::none();

        // One observer over everything.
        let mut whole = MetricsObserver::new().with_terminal_eviction(false, &faults);
        whole.consume(&stream);
        let mut reg_whole = MetricsRegistry::new();
        declare_run_families(&mut reg_whole);
        whole.drain_into(&mut reg_whole);

        // Two observers, each seeing the complete story of half the
        // messages (split by id parity, order preserved), draining —
        // including once mid-stream — into one shared registry.
        let by_parity = |want: usize| -> Vec<KernelEvent> {
            stream
                .iter()
                // Message-less events (control frames) go to half 0.
                .filter(|ev| message_of(ev).map_or(want == 0, |m| m % 2 == want))
                .cloned()
                .collect()
        };
        let (a, b) = (by_parity(0), by_parity(1));
        let mut reg_split = MetricsRegistry::new();
        declare_run_families(&mut reg_split);
        let mut obs_a = MetricsObserver::new().with_terminal_eviction(false, &faults);
        let mut obs_b = MetricsObserver::new().with_terminal_eviction(false, &faults);
        obs_a.consume(&a[..a.len() / 2]);
        obs_a.drain_into(&mut reg_split); // mid-stream drain: deltas must still sum
        obs_a.consume(&a[a.len() / 2..]);
        obs_b.consume(&b);
        obs_a.drain_into(&mut reg_split);
        obs_b.drain_into(&mut reg_split);

        // Every message's story is terminal (delivered or abandoned),
        // so the in-flight gauges agree at 0 and the comparison is
        // exact across counters, gauges, and histogram series.
        prop_assert_eq!(whole.in_flight(), 0);
        prop_assert_eq!(obs_a.in_flight() + obs_b.in_flight(), 0);
        let whole_samples = parse_samples(&reg_whole.encode());
        let split_samples = parse_samples(&reg_split.encode());
        prop_assert_eq!(whole_samples, split_samples);
    }
}

/// The message id an event concerns, if any.
fn message_of(ev: &KernelEvent) -> Option<usize> {
    match ev {
        KernelEvent::Run { ev, .. } => Some(ev.msg.0),
        KernelEvent::Wire(w) => match w.payload {
            PayloadKind::User { msg, .. } => Some(msg.0),
            PayloadKind::Control { .. } => None,
        },
        KernelEvent::Fault(_) => None,
    }
}

/// A deterministic stream where every message reaches a terminal
/// state: invoked, framed (sometimes lost, sometimes duplicated,
/// sometimes retransmitted), and — unless lost — received and
/// delivered. Message lifetimes overlap so the pending map is
/// genuinely exercised.
fn synthetic_stream(seed: u64, msgs: usize) -> Vec<KernelEvent> {
    let mut out = Vec::new();
    let run = |m: usize, kind: EventKind, time: u64| KernelEvent::Run {
        ev: SystemEvent::new(MessageId(m), kind),
        time,
    };
    for m in 0..msgs {
        out.push(run(m, EventKind::Invoke, 3 * m as u64));
    }
    for m in 0..msgs {
        let r = mix(seed ^ m as u64);
        let lost = r.is_multiple_of(10);
        out.push(KernelEvent::Wire(WireRecord {
            from: m % 4,
            to: (m + 1) % 4,
            time: 3 * m as u64 + 1,
            payload: PayloadKind::User {
                msg: MessageId(m),
                bytes: (r % 32) as usize,
                retransmit: r.is_multiple_of(7),
            },
            delay: 1 + r % 50,
            dropped: lost.then_some(if r.is_multiple_of(2) {
                DropReason::Loss
            } else {
                DropReason::Partition
            }),
            // Duplicates only on surviving frames: a lost frame with a
            // surviving copy would stay pending, and this stream keeps
            // every message terminal.
            dup_delay: (!lost && r.is_multiple_of(5)).then_some(2),
            corrupt: None,
            forge: None,
            replay_delay: None,
            reorder_extra: 0,
        }));
        if m.is_multiple_of(6) {
            out.push(KernelEvent::Wire(WireRecord {
                from: m % 4,
                to: (m + 2) % 4,
                time: 3 * m as u64 + 1,
                payload: PayloadKind::Control {
                    bytes: 4,
                    retransmit: false,
                },
                delay: 2,
                dropped: None,
                dup_delay: None,
                corrupt: None,
                forge: None,
                replay_delay: None,
                reorder_extra: 0,
            }));
        }
        if !lost {
            let t = 3 * m as u64 + 2 + r % 50;
            out.push(run(m, EventKind::Receive, t));
            out.push(run(m, EventKind::Deliver, t + r % 9));
        }
    }
    out
}

/// Satellite (a)'s proof: one million messages with 5% loss flow
/// through the observer while at most `WINDOW` are ever in flight, and
/// the pending map tracks the *in-flight* population — not run length.
/// Before the eviction fix, every lost message leaked a pending entry
/// and this test's peak would grow with the message count.
#[test]
fn latency_tracker_memory_stays_bounded_over_a_million_messages() {
    const TOTAL: usize = 1_000_000;
    const WINDOW: usize = 512;
    let lost = |m: usize| mix(0x50AC ^ m as u64).is_multiple_of(20);

    let faults = FaultModel::none();
    let mut obs = MetricsObserver::new().with_terminal_eviction(false, &faults);
    let mut reg = MetricsRegistry::new();
    declare_run_families(&mut reg);

    let (mut dropped, mut delivered, mut peak) = (0u64, 0u64, 0usize);
    for i in 0..TOTAL + WINDOW {
        // Open message `i`: invoke it and put its frame on the wire.
        if i < TOTAL {
            let t = 4 * i as u64;
            obs.consume(&[
                KernelEvent::Run {
                    ev: SystemEvent::new(MessageId(i), EventKind::Invoke),
                    time: t,
                },
                KernelEvent::Wire(WireRecord {
                    from: i % 4,
                    to: (i + 1) % 4,
                    time: t,
                    payload: PayloadKind::User {
                        msg: MessageId(i),
                        bytes: 8,
                        retransmit: false,
                    },
                    delay: 3,
                    dropped: lost(i).then_some(DropReason::Loss),
                    dup_delay: None,
                    corrupt: None,
                    forge: None,
                    replay_delay: None,
                    reorder_extra: 0,
                }),
            ]);
            if lost(i) {
                dropped += 1;
            }
        }
        // Close message `i - WINDOW`, keeping `WINDOW` messages open.
        if i >= WINDOW {
            let m = i - WINDOW;
            if !lost(m) {
                let t = 4 * m as u64 + 3;
                obs.consume(&[
                    KernelEvent::Run {
                        ev: SystemEvent::new(MessageId(m), EventKind::Receive),
                        time: t,
                    },
                    KernelEvent::Run {
                        ev: SystemEvent::new(MessageId(m), EventKind::Deliver),
                        time: t + 1,
                    },
                ]);
                delivered += 1;
            }
        }
        peak = peak.max(obs.in_flight());
        if i.is_multiple_of(65_536) {
            obs.drain_into(&mut reg); // periodic drains must not lose deltas
        }
    }
    obs.drain_into(&mut reg);

    assert!(
        peak <= WINDOW,
        "pending map grew past the in-flight window: peak {peak} > {WINDOW}"
    );
    assert_eq!(
        obs.in_flight(),
        0,
        "messages leaked past their terminal events"
    );
    assert_eq!(delivered + dropped, TOTAL as u64);
    assert_eq!(reg.counter(names::DELIVERIES, &[]), delivered);
    assert_eq!(reg.counter(names::ABANDONED, &[]), dropped);
    assert_eq!(
        reg.counter(names::DROPS, &[("reason", "loss")]),
        dropped,
        "every abandonment should trace back to a recorded loss"
    );
    assert_eq!(reg.gauge(names::IN_FLIGHT, &[]), Some(0.0));
}

//! Counterexample shrinker: per-pass unit tests, the end-to-end
//! acceptance scenario (reliable FIFO under drop+crash), and property
//! tests (never grows, verdict-preserving, idempotent).

use msgorder_simnet::{FaultModel, LatencyModel, Workload};
use msgorder_trace::chaos::{sweep, ChaosConfig};
use msgorder_trace::shrink::{shrink, ShrinkError, VerdictClass};
use msgorder_trace::{record, replay, Setup};
use proptest::prelude::*;

/// An async protocol checked against the FIFO spec: latency reordering
/// violates it without any faults, so these runs shrink toward the
/// minimal two-message witness.
fn fifo_violation_setup(msgs: usize, seed: u64, faults: FaultModel) -> Setup {
    Setup {
        processes: 2,
        latency: LatencyModel::Uniform { lo: 1, hi: 100 },
        seed,
        faults,
        workload: Workload {
            sends: (0..msgs)
                .map(|i| msgorder_simnet::SendSpec {
                    at: i as u64 * 10,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        },
        protocol: "async".into(),
        reliable: false,
        spec: Some("fifo".into()),
        step_limit: 100_000,
    }
}

/// Reliable FIFO wedged by a permanent crash (the liveness scenario).
fn crash_stall_setup(processes: usize, msgs: usize, seed: u64, faults: FaultModel) -> Setup {
    Setup {
        processes,
        latency: LatencyModel::Uniform { lo: 1, hi: 100 },
        seed,
        faults,
        workload: Workload::uniform_random(processes, msgs, seed),
        protocol: "fifo".into(),
        reliable: true,
        spec: None,
        step_limit: 200_000,
    }
}

fn find_violating_seed(make: impl Fn(u64) -> Setup) -> (Setup, VerdictClass) {
    for seed in 0..64 {
        let setup = make(seed);
        let recorded = record(&setup).expect("registry protocol records");
        if let Some(class) =
            msgorder_trace::shrink::classify_trace(&recorded.trace).expect("trace classifies")
        {
            return (setup, class);
        }
    }
    panic!("no violating seed in 0..64");
}

#[test]
fn message_pass_reduces_to_minimal_fifo_witness() {
    let (setup, class) = find_violating_seed(|s| fifo_violation_setup(12, s, FaultModel::none()));
    assert_eq!(class, VerdictClass::SpecViolated);
    let recorded = record(&setup).unwrap();
    let shrunk = shrink(&recorded.trace).expect("violation shrinks");
    // A FIFO violation needs exactly two messages; ddmin must find them.
    assert_eq!(shrunk.report.messages_after, 2, "{:?}", shrunk.report);
    assert!(shrunk.report.events_after < shrunk.report.events_before);
    assert!(
        msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap(),
        "minimized trace must still violate the spec"
    );
}

#[test]
fn decision_pass_cancels_irrelevant_duplication() {
    let faults = FaultModel::none().with_duplication(0.8).unwrap();
    let (setup, class) = find_violating_seed(|s| fifo_violation_setup(8, s, faults.clone()));
    let recorded = record(&setup).unwrap();
    assert!(
        recorded
            .trace
            .decisions()
            .iter()
            .any(|d| d.dup_delay.is_some()),
        "scenario must actually duplicate frames"
    );
    let shrunk = shrink(&recorded.trace).expect("violation shrinks");
    // Without drops, duplicate copies are suppressed at the destination
    // and can never carry the violation: the pruning pass removes all.
    assert!(
        shrunk
            .trace
            .decisions()
            .iter()
            .all(|d| d.dup_delay.is_none()),
        "all duplications should be pruned"
    );
    assert!(msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap());
}

#[test]
fn fault_pass_drops_irrelevant_partition_but_keeps_loadbearing_crash() {
    // The crash wedges the run; the partition windows long after
    // quiescence would have been reached and carries nothing.
    let faults = FaultModel::none()
        .with_crash(1, 1, None)
        .with_partition(0, 1, 5_000_000, 5_000_001);
    let (setup, class) = find_violating_seed(|s| crash_stall_setup(3, 12, s, faults.clone()));
    assert!(matches!(class, VerdictClass::NonLive { .. }), "{class:?}");
    let recorded = record(&setup).unwrap();
    let shrunk = shrink(&recorded.trace).expect("stall shrinks");
    let final_faults = &shrunk.trace.header.setup.faults;
    assert!(
        final_faults.partitions.is_empty(),
        "irrelevant partition should be removed"
    );
    assert_eq!(
        final_faults.crashes.len(),
        1,
        "the crash carries the verdict and must survive"
    );
    assert!(msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap());
}

#[test]
fn process_pass_drops_untouched_processes() {
    // Four processes, but the workload only exercises 0 -> 1 and the
    // crash hits 1: processes 2 and 3 are dead weight.
    let faults = FaultModel::none().with_crash(1, 1, None);
    let make = |seed| Setup {
        workload: Workload {
            sends: (0..8)
                .map(|i| msgorder_simnet::SendSpec {
                    at: i * 15,
                    src: 0,
                    dst: 1,
                    color: None,
                })
                .collect(),
        },
        ..crash_stall_setup(4, 8, seed, faults.clone())
    };
    let (setup, class) = find_violating_seed(make);
    let recorded = record(&setup).unwrap();
    let shrunk = shrink(&recorded.trace).expect("stall shrinks");
    assert_eq!(shrunk.report.processes_before, 4);
    assert_eq!(shrunk.report.processes_after, 2, "{:?}", shrunk.report);
    assert!(msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap());
}

/// The ISSUE acceptance scenario: a seeded run on reliable FIFO under
/// drop + permanent crash finds a violation, the shrinker cuts the
/// trace by at least half, and replay of the minimized artifact
/// reproduces the same verdict class end to end.
#[test]
fn acceptance_reliable_fifo_drop_crash_shrinks_by_half_and_replays() {
    let faults = FaultModel::none()
        .with_drop(0.15)
        .unwrap()
        .with_crash(1, 1, None);
    let (setup, class) = find_violating_seed(|s| crash_stall_setup(3, 12, s, faults.clone()));
    let recorded = record(&setup).unwrap();
    let shrunk = shrink(&recorded.trace).expect("violation shrinks");
    assert_eq!(shrunk.report.class, class);
    assert!(
        shrunk.report.reduction() >= 0.5,
        "expected >=50% event reduction, got {:.0}% ({} -> {} events)",
        shrunk.report.reduction() * 100.0,
        shrunk.report.events_before,
        shrunk.report.events_after
    );
    // The minimized artifact is a first-class trace: bit-exact replay
    // plus verdict-class reproduction.
    let report = replay(&shrunk.trace).expect("minimized trace replays");
    assert!(report.ok(), "{report:?}");
    assert!(
        msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap(),
        "replayed minimized trace must reproduce {class}"
    );
}

#[test]
fn clean_traces_refuse_to_shrink() {
    let setup = Setup {
        faults: FaultModel::none(),
        ..crash_stall_setup(3, 6, 7, FaultModel::none())
    };
    let recorded = record(&setup).unwrap();
    assert!(recorded.trace.footer.completed);
    assert!(matches!(
        shrink(&recorded.trace),
        Err(ShrinkError::NothingToShrink)
    ));
}

#[test]
fn chaos_sweep_finds_dedups_and_shrinks_violations() {
    let mut config = ChaosConfig::new(24, 0xC0FFEE);
    config.step_limit = 100_000;
    let report = sweep(&config).expect("sweep runs");
    assert_eq!(report.trials, 24);
    assert!(report.violations >= 1, "sweep should find violations");
    assert!(!report.findings.is_empty());
    // Findings are deduplicated by (protocol, class)...
    for (i, a) in report.findings.iter().enumerate() {
        for b in &report.findings[i + 1..] {
            assert!(
                a.protocol != b.protocol || a.class != b.class,
                "duplicate failure mode in report"
            );
        }
    }
    // ...and each carries a replayable reproducer of its class.
    for f in &report.findings {
        assert!(
            msgorder_trace::shrink::reproduces(&f.trace, &f.class).unwrap(),
            "finding {} / {} must reproduce",
            f.protocol,
            f.class
        );
    }
    let table = report.table();
    assert!(table.contains("distinct failure mode"));
}

/// The fault-free exhaustive cross-check is honest in both directions:
/// an `async`-protocol FIFO violation is *inherent* (the protocol
/// reorders without any fault's help), a `fifo`-protocol one can only
/// be fault-induced, and oversized workloads are declined rather than
/// guessed at.
#[test]
fn chaos_confirm_separates_inherent_from_fault_induced() {
    use msgorder_trace::chaos::confirm_ordering_inherent;
    let base = |protocol: &str, msgs: usize| Setup {
        processes: 2,
        latency: LatencyModel::Uniform { lo: 1, hi: 50 },
        seed: 7,
        faults: FaultModel::none().with_duplication(0.2).unwrap(),
        workload: Workload::uniform_random(2, msgs, 7),
        protocol: protocol.into(),
        reliable: false,
        spec: Some("fifo".into()),
        step_limit: 100_000,
    };
    assert_eq!(
        confirm_ordering_inherent(&base("async", 5)),
        Some(true),
        "async reorders fault-free; the cross-check must confirm it"
    );
    assert_eq!(
        confirm_ordering_inherent(&base("fifo", 5)),
        Some(false),
        "a FIFO-protocol FIFO violation can only be fault-induced"
    );
    assert_eq!(
        confirm_ordering_inherent(&base("async", 40)),
        None,
        "oversized workloads are declined, not guessed at"
    );
    let mut no_spec = base("async", 5);
    no_spec.spec = None;
    assert_eq!(confirm_ordering_inherent(&no_spec), None);
}

/// With confirmation on, spec-violation findings carry a cross-check
/// verdict that is never a false "fault-induced" for `async`, and
/// non-spec findings stay unchecked.
#[test]
fn chaos_confirm_annotates_sweep_findings() {
    let mut config = ChaosConfig::new(24, 0xC0FFEE);
    config.step_limit = 100_000;
    config.shrink = false;
    config.confirm = true;
    // async only: its violations confirm quickly (the reduced search
    // hits a fault-free violation long before the schedule cap), which
    // keeps this debug-mode sweep fast while still exercising both the
    // checked and the unchecked branch.
    config.protocols = vec!["async".into()];
    let report = sweep(&config).expect("sweep runs");
    let mut spec_findings = 0usize;
    for f in &report.findings {
        if f.class == VerdictClass::SpecViolated {
            spec_findings += 1;
            if f.protocol == "async" {
                assert_ne!(
                    f.ordering_inherent,
                    Some(false),
                    "async reordering must never be blamed on the faults"
                );
            }
        } else {
            assert_eq!(
                f.ordering_inherent, None,
                "only spec violations are checked"
            );
        }
    }
    assert!(
        spec_findings > 0,
        "sweep seed no longer produces a spec violation"
    );
}

#[test]
fn chaos_sweep_is_deterministic() {
    let mut config = ChaosConfig::new(10, 42);
    config.step_limit = 100_000;
    let a = sweep(&config).expect("sweep runs");
    let b = sweep(&config).expect("sweep runs");
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.findings.len(), b.findings.len());
    for (x, y) in a.findings.iter().zip(&b.findings) {
        assert_eq!(x.protocol, y.protocol);
        assert_eq!(x.trial, y.trial);
        assert_eq!(x.class, y.class);
        assert_eq!(x.trace.footer.fingerprint, y.trace.footer.fingerprint);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shrinking never grows any dimension and always preserves the
    /// verdict class.
    #[test]
    fn shrinking_never_grows_and_preserves_verdict(
        seed in 0u64..1000,
        msgs in 4usize..10,
        dup in 0u32..2,
    ) {
        let faults = if dup == 1 {
            FaultModel::none().with_duplication(0.3).unwrap()
        } else {
            FaultModel::none()
        };
        let setup = fifo_violation_setup(msgs, seed, faults);
        let recorded = record(&setup).unwrap();
        let Some(class) = msgorder_trace::shrink::classify_trace(&recorded.trace).unwrap() else {
            return Ok(()); // quiet seed: nothing to shrink, nothing to check
        };
        let shrunk = shrink(&recorded.trace).unwrap();
        prop_assert_eq!(&shrunk.report.class, &class);
        prop_assert!(shrunk.report.events_after <= shrunk.report.events_before);
        prop_assert!(shrunk.report.messages_after <= shrunk.report.messages_before);
        prop_assert!(shrunk.report.processes_after <= shrunk.report.processes_before);
        prop_assert!(msgorder_trace::shrink::reproduces(&shrunk.trace, &class).unwrap());
    }

    /// Re-shrinking a minimized trace is a no-op (the first shrink ran
    /// to a fixpoint).
    #[test]
    fn shrinking_is_idempotent(seed in 0u64..500) {
        let setup = fifo_violation_setup(8, seed, FaultModel::none());
        let recorded = record(&setup).unwrap();
        if msgorder_trace::shrink::classify_trace(&recorded.trace).unwrap().is_none() {
            return Ok(());
        }
        let first = shrink(&recorded.trace).unwrap();
        let second = shrink(&first.trace).unwrap();
        prop_assert_eq!(&second.report.class, &first.report.class);
        prop_assert_eq!(second.report.events_after, first.report.events_after);
        prop_assert_eq!(second.report.messages_after, first.report.messages_after);
        prop_assert_eq!(second.report.processes_after, first.report.processes_after);
    }
}

//! Chaos sweep: seeded randomized search over protocol × fault model ×
//! workload, funneling every violation through the counterexample
//! shrinker.
//!
//! Each trial derives its own seed from the sweep seed (SplitMix64, so
//! trial `i` of sweep seed `s` is reproducible in isolation), samples a
//! small scenario — protocol, process count, workload, drop/duplication
//! probabilities, an optional partition, an optional crash — records
//! one run, and triages the outcome into a
//! [`crate::shrink::VerdictClass`]. Findings are
//! deduplicated by `(protocol, fault family, verdict class)` so the
//! report is a table of *distinct* failure modes, each carried by its
//! minimal (shrunk) reproducer rather than the raw noisy trace that
//! first exposed it. The fault family separates schedule-level faults
//! (loss, duplication, partitions, crashes) from adversarial wire
//! faults (corruption, forgery, stale replay, reordering) — the same
//! verdict class under the two regimes is two different failure modes,
//! and before the family joined the key an `--adversarial` sweep would
//! silently swallow whichever regime lost the race.
//!
//! The sweep is fully deterministic: no wall clock, no global RNG —
//! same [`ChaosConfig`], same findings.

use crate::shrink::{self, ShrinkReport, VerdictClass};
use crate::{record, Setup, Trace, TraceError};
use msgorder_protocols::{verify_exhaustive, ProtocolKind};
use msgorder_simnet::{DedupMode, ExploreOptions, FaultModel, LatencyModel, Workload};

/// SplitMix64 — the trace crate carries no RNG dependency, and the
/// sweep (and the soak harness's rotating fault schedules) only need a
/// fast, well-mixed deterministic stream.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub(crate) fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    /// True with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Extends `faults` with a randomly drawn partition (probability
/// `p_partition`) and crash schedule (probability `p_crash`) — the
/// timed-schedule half of fault sampling, shared between the chaos
/// sweep and `msgorder soak`'s per-episode rotation. Requires
/// `processes >= 2`.
pub(crate) fn sample_schedule_faults(
    rng: &mut SplitMix64,
    processes: usize,
    mut faults: FaultModel,
    p_partition: f64,
    p_crash: f64,
) -> FaultModel {
    if rng.chance(p_partition) {
        let a = rng.range(0, processes as u64 - 1) as usize;
        let b = (a + 1 + rng.range(0, processes as u64 - 2) as usize) % processes;
        let from = rng.range(0, 500);
        faults = faults.with_partition(a, b, from, from + rng.range(100, 4000));
    }
    if rng.chance(p_crash) {
        let at = rng.range(1, 800);
        let restart = if rng.chance(0.5) {
            Some(at + rng.range(100, 3000))
        } else {
            None // permanent crash
        };
        faults = faults.with_crash(rng.range(0, processes as u64 - 1) as usize, at, restart);
    }
    faults
}

/// Extends `faults` with randomly drawn adversarial wire knobs —
/// corruption, forgery, stale replay, reordering — each present with
/// its own probability and drawn from a modest range, so a typical
/// adversarial scenario mixes two of the four. Shared between the chaos
/// sweep and `msgorder soak --adversarial`.
pub(crate) fn sample_adversarial_faults(
    rng: &mut SplitMix64,
    mut faults: FaultModel,
) -> Result<FaultModel, TraceError> {
    let err = |what: &str, e| TraceError::Internal(format!("sampled {what} rate rejected: {e}"));
    if rng.chance(0.5) {
        let p = rng.range(5, 25) as f64 / 100.0;
        faults = faults
            .with_corruption(p)
            .map_err(|e| err("corruption", e))?;
    }
    if rng.chance(0.5) {
        let p = rng.range(5, 25) as f64 / 100.0;
        faults = faults.with_forgery(p).map_err(|e| err("forgery", e))?;
    }
    if rng.chance(0.4) {
        let p = rng.range(5, 20) as f64 / 100.0;
        faults = faults
            .with_stale_replay(p)
            .map_err(|e| err("stale-replay", e))?;
    }
    if rng.chance(0.4) {
        let p = rng.range(10, 40) as f64 / 100.0;
        faults = faults
            .with_reordering(p)
            .map_err(|e| err("reordering", e))?;
    }
    Ok(faults)
}

/// Parameters of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of trials to run.
    pub trials: usize,
    /// Sweep seed; every trial's scenario and kernel seed derive from
    /// it.
    pub seed: u64,
    /// Protocols to sample from (registry names). Empty = the full
    /// fixed-membership registry.
    pub protocols: Vec<String>,
    /// Kernel step limit per trial — deliberately small so livelocks
    /// trip fast.
    pub step_limit: usize,
    /// Whether to shrink each finding to a minimal reproducer.
    pub shrink: bool,
    /// Whether to cross-check each spec violation against a fault-free
    /// *exhaustive* exploration of the same scenario, deciding whether
    /// the ordering violation is inherent to the protocol or an
    /// artifact of the injected faults.
    pub confirm: bool,
    /// Whether trials may additionally sample adversarial wire faults
    /// (payload corruption, control forgery, stale replay, reordering
    /// bursts) on top of the schedule-level fault model.
    pub adversarial: bool,
}

impl ChaosConfig {
    /// A sweep of `trials` trials from `seed` over the whole registry,
    /// with shrinking on and a 200k-step budget.
    pub fn new(trials: usize, seed: u64) -> ChaosConfig {
        ChaosConfig {
            trials,
            seed,
            protocols: Vec::new(),
            step_limit: 200_000,
            shrink: true,
            confirm: false,
            adversarial: false,
        }
    }
}

/// One distinct failure mode a sweep found.
#[derive(Debug)]
pub struct ChaosFinding {
    /// Protocol the scenario ran.
    pub protocol: String,
    /// Fault family the scenario drew from: `"adversarial"` when the
    /// sampled model injects wire faults, `"schedule"` otherwise. Part
    /// of the deduplication key — the same verdict class under the two
    /// regimes is two distinct failure modes.
    pub family: &'static str,
    /// Index of the trial that first exposed this mode.
    pub trial: usize,
    /// The preserved verdict class.
    pub class: VerdictClass,
    /// The reproducer: shrunk when shrinking is on, else the raw trace.
    pub trace: Trace,
    /// The shrink accounting, when shrinking ran.
    pub shrink: Option<ShrinkReport>,
    /// Confirmation verdict, when [`ChaosConfig::confirm`] ran on a
    /// spec violation: `Some(true)` — a *fault-free* schedule of the
    /// same scenario also violates the spec (the ordering failure is
    /// inherent to the protocol); `Some(false)` — no fault-free
    /// schedule violates it (fault-induced); `None` — not checked
    /// (confirmation off, not a spec violation, the protocol is not
    /// explorable, or the capped exhaustive search was truncated).
    pub ordering_inherent: Option<bool>,
}

/// The outcome of a chaos sweep.
#[derive(Debug)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: usize,
    /// Trials whose outcome classified as a violation (before
    /// deduplication).
    pub violations: usize,
    /// Distinct failure modes, in discovery order.
    pub findings: Vec<ChaosFinding>,
}

impl ChaosReport {
    /// Renders the findings as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{} trial(s), {} violation(s), {} distinct failure mode(s)\n",
            self.trials,
            self.violations,
            self.findings.len()
        );
        if self.findings.is_empty() {
            return out;
        }
        out.push_str(&format!(
            "{:<12} {:<11} {:>5}  {:<40} {:>7} {:>9} {:>8}\n",
            "protocol", "family", "trial", "class", "events", "shrunk-by", "inherent"
        ));
        for f in &self.findings {
            let (events, by) = match &f.shrink {
                Some(r) => (
                    r.events_after.to_string(),
                    format!("{:.0}%", r.reduction() * 100.0),
                ),
                None => (f.trace.events.len().to_string(), "-".into()),
            };
            let inherent = match f.ordering_inherent {
                Some(true) => "yes",
                Some(false) => "no",
                None => "-",
            };
            out.push_str(&format!(
                "{:<12} {:<11} {:>5}  {:<40} {:>7} {:>9} {:>8}\n",
                f.protocol,
                f.family,
                f.trial,
                f.class.to_string(),
                events,
                by,
                inherent
            ));
        }
        out
    }
}

/// Samples one trial scenario from the trial's private RNG stream.
///
/// # Errors
/// [`TraceError::Internal`] if a sampled fault probability is rejected
/// by [`FaultModel`] — impossible for the ranges drawn here, but
/// surfaced as an error so a sweep never panics.
fn sample_setup(
    rng: &mut SplitMix64,
    protocols: &[String],
    adversarial: bool,
) -> Result<Setup, TraceError> {
    let protocol = rng.pick(protocols).clone();
    let processes = rng.range(2, 4) as usize;
    let messages = rng.range(4, 16) as usize;
    let workload = Workload::uniform_random(processes, messages, rng.next());
    let mut faults = FaultModel::none();
    if rng.chance(0.7) {
        faults = faults
            .with_drop(rng.range(5, 30) as f64 / 100.0)
            .map_err(|e| TraceError::Internal(format!("sampled drop rate rejected: {e}")))?;
    }
    if rng.chance(0.3) {
        faults = faults
            .with_duplication(rng.range(5, 20) as f64 / 100.0)
            .map_err(|e| TraceError::Internal(format!("sampled dup rate rejected: {e}")))?;
    }
    faults = sample_schedule_faults(rng, processes, faults, 0.4, 0.4);
    if adversarial {
        faults = sample_adversarial_faults(rng, faults)?;
    }
    let spec = match rng.range(0, 2) {
        0 => None,
        1 => Some("fifo".to_owned()),
        _ => Some("causal".to_owned()),
    };
    Ok(Setup {
        processes,
        latency: LatencyModel::Uniform {
            lo: 1,
            hi: rng.range(50, 200),
        },
        seed: rng.next(),
        faults,
        workload,
        protocol,
        reliable: rng.chance(0.6),
        spec,
        step_limit: 0, // filled by the sweep from the config
    })
}

/// Fault-free exhaustive cross-check of a spec-violation finding: does
/// *some* schedule of the same protocol/workload violate the spec with
/// no faults injected at all? Rides the sleep-set-reduced, deduplicated
/// explorer with a schedule cap so a single confirmation stays cheap;
/// returns `None` when the scenario cannot be checked (no catalog
/// predicate, protocol not explorable, workload too large, or the
/// capped search truncated without finding a violation).
pub fn confirm_ordering_inherent(setup: &Setup) -> Option<bool> {
    // Best effort: beyond ~10 messages even the reduced fault-free
    // state space dwarfs the schedule cap, so the check could only ever
    // answer "inconclusive" slowly — skip it outright.
    if setup.workload.sends.len() > 10 {
        return None;
    }
    let spec = setup.spec_predicate().ok().flatten()?;
    let kind = ProtocolKind::by_name(&setup.protocol, Some(&spec))?;
    let n = setup.processes;
    let protos: Vec<_> = (0..n)
        .map(|node| kind.explorable(n, node))
        .collect::<Option<Vec<_>>>()?;
    let opts = ExploreOptions {
        cap: 25_000,
        por: true,
        dedup: DedupMode::Exact,
        ..ExploreOptions::default()
    };
    let out = verify_exhaustive(
        n,
        setup.workload.clone(),
        |node| protos[node].clone(),
        &spec,
        &opts,
    );
    if out.safe && out.exploration.truncated {
        return None; // inconclusive: the violation may live beyond the cap
    }
    Some(!out.safe)
}

/// Runs a chaos sweep. Deterministic in `config`; every violation is
/// triaged by verdict class, shrunk (when enabled), and deduplicated by
/// `(protocol, family, class)`.
///
/// # Errors
/// Only on internal inconsistencies (a sampled setup failing to record);
/// individual trial *violations* are findings, not errors.
pub fn sweep(config: &ChaosConfig) -> Result<ChaosReport, TraceError> {
    let protocols: Vec<String> = if config.protocols.is_empty() {
        ProtocolKind::fixed()
            .iter()
            .map(|k| k.name().to_owned())
            .collect()
    } else {
        config.protocols.clone()
    };
    let mut master = SplitMix64(config.seed);
    let mut violations = 0usize;
    let mut findings: Vec<ChaosFinding> = Vec::new();
    for trial in 0..config.trials {
        let mut rng = SplitMix64(master.next());
        let mut setup = sample_setup(&mut rng, &protocols, config.adversarial)?;
        setup.step_limit = config.step_limit;
        let family = if setup.faults.adversarial.is_quiet() {
            "schedule"
        } else {
            "adversarial"
        };
        let recorded = record(&setup)?;
        let violated = recorded
            .trace
            .footer
            .verdict
            .as_ref()
            .is_some_and(|v| v.violated);
        let Some(class) = shrink::classify_outcome(&recorded.outcome, violated) else {
            continue;
        };
        violations += 1;
        if findings
            .iter()
            .any(|f| f.protocol == setup.protocol && f.family == family && f.class == class)
        {
            continue;
        }
        let (trace, report) = if config.shrink {
            match shrink::shrink(&recorded.trace) {
                Ok(sh) => (sh.trace, Some(sh.report)),
                // A finding that resists shrinking is still a finding.
                Err(_) => (recorded.trace, None),
            }
        } else {
            (recorded.trace, None)
        };
        // Confirm against the (possibly shrunk) trace's own setup: the
        // minimized workload is the scenario the finding reports, and
        // it is far more likely to fit under the confirmation gate.
        let ordering_inherent = if config.confirm && class == VerdictClass::SpecViolated {
            confirm_ordering_inherent(&trace.header.setup)
        } else {
            None
        };
        findings.push(ChaosFinding {
            protocol: setup.protocol.clone(),
            family,
            trial,
            class,
            trace,
            shrink: report,
            ordering_inherent,
        });
    }
    Ok(ChaosReport {
        trials: config.trials,
        violations,
        findings,
    })
}

//! A process-wide metrics registry with a Prometheus text-format face.
//!
//! [`Metrics`](crate::Metrics) reports describe one finished run; a
//! [`MetricsRegistry`] is the always-on accumulator those reports (and
//! the live [`LiveMetrics`](crate::LiveMetrics) observer) snapshot
//! into. It holds three kinds of series — monotone counters, gauges,
//! and the crate's log₂ [`Histogram`]s — keyed by metric name plus an
//! optional label set, and renders them in the Prometheus text
//! exposition format (`# HELP` / `# TYPE` headers, cumulative `le`
//! buckets derived from the log₂ buckets).
//!
//! Naming scheme (see DESIGN.md §15): every metric is prefixed
//! `msgorder_`, counters end in `_total`, histograms carry their unit
//! as a suffix (`_ticks`, `_nanos`). Metric families render in sorted
//! name order and label sets in sorted key order, so the encoding of a
//! given registry state is stable byte for byte.

use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The standard `msgorder_*` metric names and help strings — one
/// place, so the observer, the `Metrics` snapshot path, the soak
/// harness, and the tests can never drift apart on spelling.
pub mod names {
    /// User messages delivered.
    pub const DELIVERIES: &str = "msgorder_deliveries_total";
    /// Help for [`DELIVERIES`].
    pub const HELP_DELIVERIES: &str = "User messages delivered.";
    /// User frames on the wire.
    pub const USER_FRAMES: &str = "msgorder_user_frames_total";
    /// Help for [`USER_FRAMES`].
    pub const HELP_USER_FRAMES: &str = "User frames put on the wire, retransmissions included.";
    /// Control frames on the wire.
    pub const CONTROL_FRAMES: &str = "msgorder_control_frames_total";
    /// Help for [`CONTROL_FRAMES`].
    pub const HELP_CONTROL_FRAMES: &str =
        "Control frames put on the wire, retransmissions included.";
    /// User-frame tag bytes.
    pub const USER_BYTES: &str = "msgorder_user_bytes_total";
    /// Help for [`USER_BYTES`].
    pub const HELP_USER_BYTES: &str = "User-frame tag bytes on the wire.";
    /// Control-frame bytes.
    pub const CONTROL_BYTES: &str = "msgorder_control_bytes_total";
    /// Help for [`CONTROL_BYTES`].
    pub const HELP_CONTROL_BYTES: &str = "Control-frame bytes on the wire.";
    /// Retransmitted frames.
    pub const RETRANSMISSIONS: &str = "msgorder_retransmissions_total";
    /// Help for [`RETRANSMISSIONS`].
    pub const HELP_RETRANSMISSIONS: &str = "Frames marked as retransmissions.";
    /// Dropped frames, labeled by `reason` (`partition` / `loss`).
    pub const DROPS: &str = "msgorder_drops_total";
    /// Help for [`DROPS`].
    pub const HELP_DROPS: &str = "Frames eaten by the network, by reason.";
    /// Frames rejected by a protocol or transport guard, labeled by
    /// `reason` (`malformed` / `stale-epoch` / `replayed` /
    /// `unexpected` in simulation, `crc` on the real wire).
    pub const REJECTED: &str = "msgorder_frames_rejected_total";
    /// Help for [`REJECTED`].
    pub const HELP_REJECTED: &str = "Frames rejected by validation, by reason.";
    /// Duplicated frame copies.
    pub const DUPLICATES: &str = "msgorder_duplicate_frames_total";
    /// Help for [`DUPLICATES`].
    pub const HELP_DUPLICATES: &str = "Duplicate frame copies created by the network.";
    /// Crash-window effects.
    pub const CRASH_EFFECTS: &str = "msgorder_crash_effects_total";
    /// Help for [`CRASH_EFFECTS`].
    pub const HELP_CRASH_EFFECTS: &str = "Frames lost to (or deferred by) crash windows.";
    /// Messages abandoned before delivery.
    pub const ABANDONED: &str = "msgorder_messages_abandoned_total";
    /// Help for [`ABANDONED`].
    pub const HELP_ABANDONED: &str =
        "Messages evicted from latency tracking on a terminal outcome (never delivered).";
    /// Messages currently awaiting delivery.
    pub const IN_FLIGHT: &str = "msgorder_in_flight_messages";
    /// Help for [`IN_FLIGHT`].
    pub const HELP_IN_FLIGHT: &str = "Messages invoked or received but not yet delivered.";
    /// Delivery latency histogram (sim ticks).
    pub const DELIVERY_LATENCY: &str = "msgorder_delivery_latency_ticks";
    /// Help for [`DELIVERY_LATENCY`].
    pub const HELP_DELIVERY_LATENCY: &str =
        "End-to-end delivery latency (deliver - invoke), sim ticks.";
    /// Inhibition histogram (sim ticks).
    pub const INHIBITION: &str = "msgorder_inhibition_ticks";
    /// Help for [`INHIBITION`].
    pub const HELP_INHIBITION: &str = "Protocol inhibition (deliver - receive), sim ticks.";
    /// Online-monitor delta-search timings (host nanoseconds).
    pub const MONITOR_SEARCH: &str = "msgorder_monitor_search_nanos";
    /// Help for [`MONITOR_SEARCH`].
    pub const HELP_MONITOR_SEARCH: &str =
        "Online monitor delta-search durations, host nanoseconds.";
    /// Realtime kernel dispatches.
    pub const RT_DISPATCHES: &str = "msgorder_realtime_dispatches_total";
    /// Help for [`RT_DISPATCHES`].
    pub const HELP_RT_DISPATCHES: &str = "Events dispatched by the realtime kernel.";
    /// Realtime dispatches that ran behind the wall clock.
    pub const RT_LATE: &str = "msgorder_realtime_late_dispatches_total";
    /// Help for [`RT_LATE`].
    pub const HELP_RT_LATE: &str = "Realtime dispatches that ran later than their virtual time.";
    /// Worst positive drift seen (ticks).
    pub const RT_MAX_DRIFT: &str = "msgorder_realtime_max_drift_ticks";
    /// Help for [`RT_MAX_DRIFT`].
    pub const HELP_RT_MAX_DRIFT: &str =
        "Largest wall-behind-schedule drift observed, virtual ticks.";
    /// Most negative drift seen (ticks; negative means the wall clock
    /// read earlier than the virtual schedule).
    pub const RT_MIN_DRIFT: &str = "msgorder_realtime_min_drift_ticks";
    /// Help for [`RT_MIN_DRIFT`].
    pub const HELP_RT_MIN_DRIFT: &str =
        "Most negative drift observed (wall ahead of schedule), virtual ticks.";
    /// Backwards wall-clock steps.
    pub const RT_CLOCK_BACKWARDS: &str = "msgorder_clock_backwards_total";
    /// Help for [`RT_CLOCK_BACKWARDS`].
    pub const HELP_RT_CLOCK_BACKWARDS: &str =
        "Times the wall clock read earlier than a previous reading.";
    /// Soak episodes completed.
    pub const SOAK_EPISODES: &str = "msgorder_soak_episodes_total";
    /// Help for [`SOAK_EPISODES`].
    pub const HELP_SOAK_EPISODES: &str = "Soak episodes completed.";
    /// Soak messages injected.
    pub const SOAK_MESSAGES: &str = "msgorder_soak_messages_total";
    /// Help for [`SOAK_MESSAGES`].
    pub const HELP_SOAK_MESSAGES: &str = "User messages injected across soak episodes.";
    /// Soak episodes whose online monitor saw a spec violation.
    pub const SOAK_VIOLATIONS: &str = "msgorder_soak_spec_violations_total";
    /// Help for [`SOAK_VIOLATIONS`].
    pub const HELP_SOAK_VIOLATIONS: &str =
        "Soak episodes where the online monitor flagged a specification violation.";
    /// Soak episodes that ended in a structured protocol bug.
    pub const SOAK_PROTOCOL_BUGS: &str = "msgorder_soak_protocol_bugs_total";
    /// Help for [`SOAK_PROTOCOL_BUGS`].
    pub const HELP_SOAK_PROTOCOL_BUGS: &str =
        "Soak episodes that ended in a structured protocol bug (SimError).";
    /// Soak episodes with a non-live verdict.
    pub const SOAK_NONLIVE: &str = "msgorder_soak_nonlive_episodes_total";
    /// Help for [`SOAK_NONLIVE`].
    pub const HELP_SOAK_NONLIVE: &str =
        "Soak episodes whose liveness verdict reported stuck messages.";
    /// Stuck messages by blame class.
    pub const SOAK_STUCK: &str = "msgorder_soak_stuck_messages_total";
    /// Help for [`SOAK_STUCK`].
    pub const HELP_SOAK_STUCK: &str =
        "Stuck messages reported by liveness blame analysis, by class.";
    /// Soak wall-clock uptime.
    pub const SOAK_UPTIME: &str = "msgorder_soak_uptime_seconds";
    /// Help for [`SOAK_UPTIME`].
    pub const HELP_SOAK_UPTIME: &str = "Wall-clock seconds since the soak started.";
}

/// What a metric family measures: its Prometheus `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A log₂ [`Histogram`] rendered with cumulative `le` buckets.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Sample {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the canonical rendered label set (`""` for none).
    series: BTreeMap<String, Sample>,
}

/// The metric accumulator behind the Prometheus endpoint.
///
/// All mutating entry points take the family's help text so call sites
/// stay self-documenting; the first registration of a name fixes its
/// kind and help, and later calls with a conflicting kind are ignored
/// (debug builds assert — that is a programming error, not data).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Renders a label set in canonical form: sorted by key, values
/// escaped per the Prometheus text format.
fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// True when no family has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> Option<&mut Family> {
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        if fam.kind != kind {
            debug_assert!(
                false,
                "metric {name} re-registered as {kind:?}, was {:?}",
                fam.kind
            );
            return None;
        }
        Some(fam)
    }

    /// Adds `delta` to a counter series, creating it at zero first.
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], help: &str, delta: u64) {
        let key = label_string(labels);
        if let Some(fam) = self.family(name, MetricKind::Counter, help) {
            match fam.series.entry(key).or_insert(Sample::Counter(0)) {
                Sample::Counter(c) => *c += delta,
                _ => debug_assert!(false, "series kind mismatch for {name}"),
            }
        }
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], help: &str, value: f64) {
        let key = label_string(labels);
        if let Some(fam) = self.family(name, MetricKind::Gauge, help) {
            fam.series.insert(key, Sample::Gauge(value));
        }
    }

    /// Sets a gauge from a signed integer (drift extrema are signed).
    pub fn set_gauge_i64(&mut self, name: &str, labels: &[(&str, &str)], help: &str, value: i64) {
        self.set_gauge(name, labels, help, value as f64);
    }

    /// Merges `h` into a histogram series (bucket-wise addition).
    pub fn merge_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        h: &Histogram,
    ) {
        if h.count == 0 {
            // Still register the family so the endpoint shows it.
            self.family(name, MetricKind::Histogram, help);
            return;
        }
        let key = label_string(labels);
        if let Some(fam) = self.family(name, MetricKind::Histogram, help) {
            match fam
                .series
                .entry(key)
                .or_insert_with(|| Sample::Histogram(Histogram::new()))
            {
                Sample::Histogram(mine) => mine.merge(h),
                _ => debug_assert!(false, "series kind mismatch for {name}"),
            }
        }
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&label_string(labels)))
        {
            Some(Sample::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge series, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&label_string(labels)))
        {
            Some(Sample::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The accumulated histogram behind a series, if any samples landed.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&label_string(labels)))
        {
            Some(Sample::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds every series of `other` into this registry: counters add,
    /// gauges take `other`'s value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, fam) in &other.families {
            // Register even series-less families so they carry over.
            let Some(target) = self.family(name, fam.kind, &fam.help) else {
                continue;
            };
            for (key, sample) in &fam.series {
                match sample {
                    Sample::Counter(c) => {
                        if let Sample::Counter(mine) = target
                            .series
                            .entry(key.clone())
                            .or_insert(Sample::Counter(0))
                        {
                            *mine += c;
                        }
                    }
                    Sample::Gauge(g) => {
                        target.series.insert(key.clone(), Sample::Gauge(*g));
                    }
                    Sample::Histogram(h) => {
                        if let Sample::Histogram(mine) = target
                            .series
                            .entry(key.clone())
                            .or_insert_with(|| Sample::Histogram(Histogram::new()))
                        {
                            mine.merge(h);
                        }
                    }
                }
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Families render in name order, series in canonical label order;
    /// histogram buckets become cumulative `le` series whose bounds are
    /// the inclusive upper edges `2^(i+1) - 1` of the log₂ buckets,
    /// closed by `+Inf`, `_sum`, and `_count`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (key, sample) in &fam.series {
                match sample {
                    Sample::Counter(c) => {
                        out.push_str(&render_line(name, key, &c.to_string()));
                    }
                    Sample::Gauge(g) => {
                        out.push_str(&render_line(name, key, &format_f64(*g)));
                    }
                    Sample::Histogram(h) => {
                        encode_histogram(&mut out, name, key, h);
                    }
                }
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_line(name: &str, key: &str, value: &str) -> String {
    if key.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{key}}} {value}\n")
    }
}

/// The inclusive upper bound of log₂ bucket `i` (`[2^i, 2^(i+1))` over
/// integers, so `2^(i+1) - 1`), rendered in decimal.
fn bucket_le(i: usize) -> String {
    ((1u128 << (i + 1)) - 1).to_string()
}

fn encode_histogram(out: &mut String, name: &str, key: &str, h: &Histogram) {
    let highest = h.buckets.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(hi) = highest {
        for (i, &c) in h.buckets.iter().enumerate().take(hi + 1) {
            cumulative += c;
            let le = bucket_le(i);
            let labels = if key.is_empty() {
                format!("le=\"{le}\"")
            } else {
                format!("{key},le=\"{le}\"")
            };
            out.push_str(&format!("{name}_bucket{{{labels}}} {cumulative}\n"));
        }
    }
    let inf = if key.is_empty() {
        "le=\"+Inf\"".to_string()
    } else {
        format!("{key},le=\"+Inf\"")
    };
    out.push_str(&format!("{name}_bucket{{{inf}}} {}\n", h.count));
    out.push_str(&render_line(
        &format!("{name}_sum"),
        key,
        &h.sum.to_string(),
    ));
    out.push_str(&render_line(
        &format!("{name}_count"),
        key,
        &h.count.to_string(),
    ));
}

/// Pre-registers every run-level metric family at zero so scrapers see
/// the full schema from the first scrape, before any traffic flows.
/// Called once per [`LiveMetrics`](crate::LiveMetrics); the observer's
/// delta flushes can then skip zero counters without hiding families.
pub fn declare_run_families(reg: &mut MetricsRegistry) {
    reg.add_counter(names::DELIVERIES, &[], names::HELP_DELIVERIES, 0);
    reg.add_counter(names::USER_FRAMES, &[], names::HELP_USER_FRAMES, 0);
    reg.add_counter(names::CONTROL_FRAMES, &[], names::HELP_CONTROL_FRAMES, 0);
    reg.add_counter(names::USER_BYTES, &[], names::HELP_USER_BYTES, 0);
    reg.add_counter(names::CONTROL_BYTES, &[], names::HELP_CONTROL_BYTES, 0);
    reg.add_counter(names::RETRANSMISSIONS, &[], names::HELP_RETRANSMISSIONS, 0);
    reg.add_counter(
        names::DROPS,
        &[("reason", "partition")],
        names::HELP_DROPS,
        0,
    );
    reg.add_counter(names::DROPS, &[("reason", "loss")], names::HELP_DROPS, 0);
    for reason in ["malformed", "stale-epoch", "replayed", "unexpected", "crc"] {
        reg.add_counter(
            names::REJECTED,
            &[("reason", reason)],
            names::HELP_REJECTED,
            0,
        );
    }
    reg.add_counter(names::DUPLICATES, &[], names::HELP_DUPLICATES, 0);
    reg.add_counter(names::CRASH_EFFECTS, &[], names::HELP_CRASH_EFFECTS, 0);
    reg.add_counter(names::ABANDONED, &[], names::HELP_ABANDONED, 0);
    reg.set_gauge(names::IN_FLIGHT, &[], names::HELP_IN_FLIGHT, 0.0);
    let empty = Histogram::new();
    reg.merge_histogram(
        names::DELIVERY_LATENCY,
        &[],
        names::HELP_DELIVERY_LATENCY,
        &empty,
    );
    reg.merge_histogram(names::INHIBITION, &[], names::HELP_INHIBITION, &empty);
}

/// Folds one realtime run's [`DriftStats`](msgorder_simnet::DriftStats)
/// into the registry: dispatch/late/backwards counts accumulate,
/// drift extrema land as gauges (widened, not overwritten, so a soak of
/// many runs keeps its worst excursions).
pub fn observe_drift(reg: &mut MetricsRegistry, drift: &msgorder_simnet::DriftStats) {
    reg.add_counter(
        names::RT_DISPATCHES,
        &[],
        names::HELP_RT_DISPATCHES,
        drift.dispatches,
    );
    reg.add_counter(names::RT_LATE, &[], names::HELP_RT_LATE, drift.late);
    reg.add_counter(
        names::RT_CLOCK_BACKWARDS,
        &[],
        names::HELP_RT_CLOCK_BACKWARDS,
        drift.clock_went_backwards,
    );
    let worst_min = reg
        .gauge(names::RT_MIN_DRIFT, &[])
        .unwrap_or(0.0)
        .min(drift.min_drift as f64);
    reg.set_gauge_i64(
        names::RT_MIN_DRIFT,
        &[],
        names::HELP_RT_MIN_DRIFT,
        worst_min as i64,
    );
    let worst_max = reg
        .gauge(names::RT_MAX_DRIFT, &[])
        .unwrap_or(0.0)
        .max(drift.max_drift as f64);
    reg.set_gauge_i64(
        names::RT_MAX_DRIFT,
        &[],
        names::HELP_RT_MAX_DRIFT,
        worst_max as i64,
    );
}

/// Parses a Prometheus text exposition into `series line -> value`,
/// keyed by the full sample name including labels (exactly as encoded).
///
/// This is the consumer side of [`MetricsRegistry::encode`], used by
/// the round-trip tests and by `msgorder soak`'s endpoint self-check.
/// Returns an error naming the first malformed line.
pub fn parse_samples(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(space) = line.rfind(' ') else {
            return Err(format!("line {}: no value separator: {line:?}", lineno + 1));
        };
        let (series, value) = line.split_at(space);
        let series = series.trim_end();
        if series.is_empty() {
            return Err(format!("line {}: empty series name", lineno + 1));
        }
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad value: {line:?}", lineno + 1))?;
        out.insert(series.to_string(), value);
    }
    Ok(out)
}

/// A [`MetricsRegistry`] behind an `Arc<Mutex<..>>`: the shape the live
/// observer, the HTTP endpoint, and the file exporter share.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry(Arc<Mutex<MetricsRegistry>>);

impl SharedRegistry {
    /// Creates an empty shared registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    /// Runs `f` with the registry locked. A poisoned lock (a panicking
    /// holder) is recovered — the registry holds plain counters that
    /// stay internally consistent.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Encodes the current registry state as Prometheus text.
    pub fn encode(&self) -> String {
        self.with(|reg| reg.encode())
    }
}

/// Periodically writes the registry's Prometheus text rendering to a
/// file — the `--metrics-out` headless-CI mode. Snapshots are written
/// to a sibling temp file and renamed into place so readers never see
/// a torn write. Dropping the exporter (or calling
/// [`stop`](FileExporter::stop)) performs one final snapshot.
#[derive(Debug)]
pub struct FileExporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Counter bumped (in the exported registry itself) when a snapshot
/// write fails — the exporter has no caller to report errors to.
pub const EXPORT_ERRORS: &str = "msgorder_metrics_export_errors_total";

fn write_snapshot(path: &PathBuf, registry: &SharedRegistry) {
    let text = registry.encode();
    let tmp = path.with_extension("prom.tmp");
    let result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        registry.with(|reg| {
            reg.add_counter(
                EXPORT_ERRORS,
                &[],
                "Metrics snapshot writes that failed.",
                1,
            );
        });
    }
}

impl FileExporter {
    /// Starts the exporter thread, snapshotting every `period`.
    pub fn start(path: PathBuf, registry: SharedRegistry, period: Duration) -> FileExporter {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(50).min(period.max(Duration::from_millis(1)));
            let mut since_write = Duration::ZERO;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_write += tick;
                if since_write >= period {
                    write_snapshot(&path, &registry);
                    since_write = Duration::ZERO;
                }
            }
            write_snapshot(&path, &registry);
        });
        FileExporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread, waits for it, and leaves a final snapshot.
    pub fn stop(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FileExporter {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_encode_stably() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("msgorder_b_total", &[], "b", 2);
        reg.add_counter("msgorder_a_total", &[("reason", "loss")], "a", 3);
        reg.add_counter("msgorder_a_total", &[("reason", "partition")], "a", 1);
        reg.set_gauge("msgorder_g", &[], "g", 1.5);
        let text = reg.encode();
        let expected = "\
# HELP msgorder_a_total a
# TYPE msgorder_a_total counter
msgorder_a_total{reason=\"loss\"} 3
msgorder_a_total{reason=\"partition\"} 1
# HELP msgorder_b_total b
# TYPE msgorder_b_total counter
msgorder_b_total 2
# HELP msgorder_g g
# TYPE msgorder_g gauge
msgorder_g 1.5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new();
        for v in [0, 1, 2, 5] {
            h.record(v);
        }
        reg.merge_histogram("msgorder_lat_ticks", &[], "latency", &h);
        let text = reg.encode();
        assert!(
            text.contains("# TYPE msgorder_lat_ticks histogram"),
            "{text}"
        );
        assert!(
            text.contains("msgorder_lat_ticks_bucket{le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("msgorder_lat_ticks_bucket{le=\"3\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("msgorder_lat_ticks_bucket{le=\"7\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("msgorder_lat_ticks_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("msgorder_lat_ticks_sum 8\n"), "{text}");
        assert!(text.contains("msgorder_lat_ticks_count 4\n"), "{text}");
    }

    #[test]
    fn parse_round_trips_encode() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("msgorder_x_total", &[("k", "v")], "x", 7);
        reg.set_gauge("msgorder_y", &[], "y", -2.0);
        let samples = parse_samples(&reg.encode()).expect("parses");
        assert_eq!(samples["msgorder_x_total{k=\"v\"}"], 7.0);
        assert_eq!(samples["msgorder_y"], -2.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_samples("not prometheus at all").is_err());
        assert!(parse_samples("name nonnumeric").is_err());
        assert!(parse_samples("# a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add_counter("msgorder_c_total", &[], "c", 1);
        b.add_counter("msgorder_c_total", &[], "c", 2);
        let mut h = Histogram::new();
        h.record(4);
        a.merge_histogram("msgorder_h_ticks", &[], "h", &h);
        b.merge_histogram("msgorder_h_ticks", &[], "h", &h);
        a.merge(&b);
        assert_eq!(a.counter("msgorder_c_total", &[]), 3);
        assert_eq!(
            a.histogram("msgorder_h_ticks", &[]).expect("merged").count,
            2
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("msgorder_e_total", &[("k", "a\"b\\c\nd")], "e", 1);
        let text = reg.encode();
        assert!(text.contains("k=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn file_exporter_writes_on_stop() {
        let dir = std::env::temp_dir().join(format!("msgorder-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.prom");
        let shared = SharedRegistry::new();
        shared.with(|r| r.add_counter("msgorder_t_total", &[], "t", 5));
        let exporter = FileExporter::start(path.clone(), shared.clone(), Duration::from_secs(3600));
        exporter.stop();
        let text = std::fs::read_to_string(&path).expect("snapshot written");
        assert!(text.contains("msgorder_t_total 5"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
